//! The static traffic oracle: interpreter counters predicted from the
//! plan alone.
//!
//! [`predict_stats`] walks a lowered [`StagePlan`]'s op stream with no
//! grid data at all — just the buffer-dims table and the block tile
//! geometry — and reproduces every [`ExecStats`] counter the
//! instrumented interpreter would report, cell for cell: staging is
//! clipped with [`inplane_core::plan::PlanRect::clipped_area`] exactly where the
//! interpreter skips out-of-grid cells, `planes_staged` follows the
//! same per-block restage trigger, halo volumes use the source
//! buffer's *current* dims (swaps replayed). The
//! `static_dynamic_traffic` differential suite asserts exact equality
//! over the full method × precision × config matrix, which turns the
//! IR into a verified performance-model artifact: the paper's traffic
//! terms (Eqns 6–14) can be evaluated on the plan without running it.
//!
//! [`predict_traffic`] adds the byte- and transaction-level figures a
//! word width implies: global-load cells split from register-publish
//! staging, per-row coalesced transaction counts over
//! [`COALESCE_SEGMENT_BYTES`] segments, and byte volumes for stores,
//! halo moves and gathers. The `_on` variants
//! ([`predict_traffic_on`], [`predict_kernel_traffic_on`]) take the
//! segment size from a [`gpu_sim::DeviceSpec`]'s
//! `coalesce_segment_bytes` instead, so wave64/GCN parts with 64-byte
//! segments get exact per-architecture transaction figures; the
//! counters and byte volumes are segment-independent by construction.

use inplane_core::plan::{PipelineFeed, PipelineKind, PlanOp, StagePlan, StageSource, OUTPUT_BUF};
use inplane_core::resources::vector_width;
use inplane_core::routine::LoadPattern;
use inplane_core::{ExecStats, KernelSpec};
use std::collections::BTreeMap;
use stencil_grid::Precision;

/// Memory-segment size the legacy entry points assume: the 128-byte
/// global-memory transaction of the paper's target devices. Device-
/// aware callers should go through [`predict_traffic_on`] /
/// [`predict_kernel_traffic_on`] with the spec's
/// `coalesce_segment_bytes` instead.
pub const COALESCE_SEGMENT_BYTES: u64 = gpu_sim::LEGACY_COALESCE_SEGMENT_BYTES;

/// Byte/transaction figures derived from the predicted counters for
/// one word width.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TrafficOracle {
    /// The predicted interpreter counters (see [`predict_stats`]).
    pub stats: ExecStats,
    /// Word width the byte figures use.
    pub word_bytes: u64,
    /// Memory-segment size the transaction figures were counted
    /// against (the device's `coalesce_segment_bytes`; see
    /// [`COALESCE_SEGMENT_BYTES`] for the legacy default).
    pub segment_bytes: u64,
    /// Cells loaded from global memory by blocks: `Global`-source
    /// staging plus pipeline preloads and `GlobalPlane` rotation feeds
    /// (register publishes excluded — they cost no global traffic).
    pub global_load_cells: u64,
    /// Coalesced transactions those loads take, row by row, against
    /// [`COALESCE_SEGMENT_BYTES`] segments of the row-major layout.
    pub load_transactions: u64,
    /// All staged cells (both sources) in bytes.
    pub staged_bytes: u64,
    /// Write-back traffic in bytes.
    pub store_bytes: u64,
    /// Interconnect halo traffic in bytes.
    pub halo_bytes: u64,
    /// Gather (copy-out) traffic in bytes.
    pub gather_bytes: u64,
}

impl TrafficOracle {
    /// Redundant-work factor implied by the predicted counters
    /// (identical to [`ExecStats::redundancy`] on the dynamic side).
    pub fn redundancy(&self) -> f64 {
        self.stats.redundancy()
    }

    /// JSON object rendering (hand-rolled; the workspace is std-only).
    pub fn to_json(&self) -> String {
        let s = &self.stats;
        let zones: Vec<String> = s
            .staged_cells_by_zone
            .iter()
            .map(|n| n.to_string())
            .collect();
        format!(
            "{{\"word_bytes\":{},\"segment_bytes\":{},\"blocks\":{},\"planes_staged\":{},\
             \"cells_staged\":{},\
             \"staged_cells_by_zone\":[{}],\"global_writes\":{},\"barriers\":{},\
             \"pipeline_rotations\":{},\"points_computed\":{},\"halo_planes_exchanged\":{},\
             \"halo_cells_exchanged\":{},\"cells_copied_out\":{},\"global_load_cells\":{},\
             \"load_transactions\":{},\"staged_bytes\":{},\"store_bytes\":{},\
             \"halo_bytes\":{},\"gather_bytes\":{},\"redundancy\":{}}}",
            self.word_bytes,
            self.segment_bytes,
            s.blocks,
            s.planes_staged,
            s.cells_staged,
            zones.join(","),
            s.global_writes,
            s.barriers,
            s.pipeline_rotations,
            s.points_computed,
            s.halo_planes_exchanged,
            s.halo_cells_exchanged,
            s.cells_copied_out,
            self.global_load_cells,
            self.load_transactions,
            self.staged_bytes,
            self.store_bytes,
            self.halo_bytes,
            self.gather_bytes,
            self.redundancy(),
        )
    }
}

/// Per-block geometry the walk needs.
struct BlockGeom {
    input: usize,
    x0: usize,
    y0: usize,
    w: usize,
    h: usize,
    cur_plane: Option<usize>,
}

/// Transactions one row of `len` cells takes, starting at linear cell
/// index `base` of a row-major buffer, with `b`-byte words against
/// `seg`-byte memory segments.
pub(crate) fn row_transactions(base: u64, len: u64, b: u64, seg: u64) -> u64 {
    if len == 0 {
        return 0;
    }
    let lo = base * b;
    let hi = (base + len - 1) * b + (b - 1);
    hi / seg - lo / seg + 1
}

/// One pass over the op stream computing both the counter mirror and
/// the byte/transaction extras, against `seg`-byte memory segments.
fn simulate(plan: &StagePlan, word_bytes: u64, seg: u64) -> TrafficOracle {
    let mut dims: Vec<(usize, usize, usize)> = vec![plan.dims, plan.dims];
    let mut stats = ExecStats::default();
    let mut block: Option<BlockGeom> = None;
    let mut global_load_cells = 0u64;
    let mut load_transactions = 0u64;

    // A rectangular load of `rect` rows on `plane` of buffer `buf`.
    let load_rect = |dims: &[(usize, usize, usize)],
                     buf: usize,
                     plane: usize,
                     x0: u64,
                     x1: u64,
                     y0: u64,
                     y1: u64,
                     cells: &mut u64,
                     txns: &mut u64| {
        let (nx, ny, _) = dims[buf];
        for y in y0..y1 {
            let base = (plane as u64 * ny as u64 + y) * nx as u64 + x0;
            let len = x1 - x0;
            *cells += len;
            *txns += row_transactions(base, len, word_bytes, seg);
        }
    };

    for op in &plan.ops {
        match *op {
            PlanOp::Alloc { dims: d, .. } => dims.push(d),
            PlanOp::CopyBox { dst, extent, .. } => {
                if dst == OUTPUT_BUF {
                    stats.cells_copied_out += (extent.0 * extent.1 * extent.2) as u64;
                }
            }
            PlanOp::BeginBlock {
                input,
                x0,
                y0,
                w,
                h,
                z_depth,
                ..
            } => {
                stats.blocks += 1;
                for p in 0..z_depth {
                    load_rect(
                        &dims,
                        input,
                        p,
                        x0 as u64,
                        (x0 + w) as u64,
                        y0 as u64,
                        (y0 + h) as u64,
                        &mut global_load_cells,
                        &mut load_transactions,
                    );
                }
                block = Some(BlockGeom {
                    input,
                    x0,
                    y0,
                    w,
                    h,
                    cur_plane: None,
                });
            }
            PlanOp::StageRegion {
                zone,
                rect,
                plane,
                source,
            } => {
                let blk = block.as_mut().expect("StageRegion outside a block");
                if blk.cur_plane != Some(plane) {
                    blk.cur_plane = Some(plane);
                    stats.planes_staged += 1;
                }
                let (nx, ny, _) = dims[blk.input];
                let cells = rect.clipped_area(nx, ny);
                stats.cells_staged += cells;
                stats.staged_cells_by_zone[zone.index()] += cells;
                if source == StageSource::Global {
                    let c = rect.clipped(nx, ny);
                    if c.area() > 0 {
                        load_rect(
                            &dims,
                            blk.input,
                            plane,
                            c.x0 as u64,
                            c.x1 as u64,
                            c.y0 as u64,
                            c.y1 as u64,
                            &mut global_load_cells,
                            &mut load_transactions,
                        );
                    }
                }
            }
            PlanOp::Barrier => stats.barriers += 1,
            PlanOp::ComputePoint { kind, .. } => {
                let blk = block.as_ref().expect("ComputePoint outside a block");
                if !matches!(kind, inplane_core::plan::ComputeKind::FoldCentre { .. }) {
                    stats.points_computed += (blk.w * blk.h) as u64;
                }
            }
            PlanOp::RotatePipeline { pipeline, feed } => {
                stats.pipeline_rotations += 1;
                if let (PipelineKind::ZValues, PipelineFeed::GlobalPlane(kp)) = (pipeline, feed) {
                    let blk = block.as_ref().expect("RotatePipeline outside a block");
                    load_rect(
                        &dims,
                        blk.input,
                        kp,
                        blk.x0 as u64,
                        (blk.x0 + blk.w) as u64,
                        blk.y0 as u64,
                        (blk.y0 + blk.h) as u64,
                        &mut global_load_cells,
                        &mut load_transactions,
                    );
                }
            }
            PlanOp::WriteBack { .. } => {
                let blk = block.as_ref().expect("WriteBack outside a block");
                stats.global_writes += (blk.w * blk.h) as u64;
            }
            PlanOp::ApplyBoundary { .. } => {}
            PlanOp::SwapBufs { a, b } => dims.swap(a, b),
            PlanOp::HaloExchange { src, .. } => {
                let (nx, ny, _) = dims[src];
                stats.halo_planes_exchanged += 1;
                stats.halo_cells_exchanged += (nx * ny) as u64;
            }
        }
    }

    TrafficOracle {
        word_bytes,
        segment_bytes: seg,
        global_load_cells,
        load_transactions,
        staged_bytes: stats.cells_staged * word_bytes,
        store_bytes: stats.global_writes * word_bytes,
        halo_bytes: stats.halo_cells_exchanged * word_bytes,
        gather_bytes: stats.cells_copied_out * word_bytes,
        stats,
    }
}

/// Predict the instrumented interpreter's [`ExecStats`] for `plan`
/// without running it. The `static_dynamic_traffic` suite asserts
/// exact equality (zero tolerance) against [`inplane_core`]'s
/// interpreter across every method, precision and configuration.
pub fn predict_stats(plan: &StagePlan) -> ExecStats {
    simulate(
        plan,
        Precision::Single.bytes() as u64,
        COALESCE_SEGMENT_BYTES,
    )
    .stats
}

/// Predict the full traffic picture — counters plus bytes and
/// coalesced transactions — for `plan` at `precision`, assuming the
/// legacy [`COALESCE_SEGMENT_BYTES`] segment size.
pub fn predict_traffic(plan: &StagePlan, precision: Precision) -> TrafficOracle {
    simulate(plan, precision.bytes() as u64, COALESCE_SEGMENT_BYTES)
}

/// [`predict_traffic`] against `device`'s memory-segment geometry:
/// transactions are counted over `device.coalesce_segment_bytes`
/// segments (64 bytes on GCN-class wave64 parts). Counters and byte
/// volumes are identical to the legacy entry point on every device.
pub fn predict_traffic_on(
    plan: &StagePlan,
    precision: Precision,
    device: &gpu_sim::DeviceSpec,
) -> TrafficOracle {
    simulate(
        plan,
        precision.bytes() as u64,
        device.coalesce_segment_bytes,
    )
}

/// Per-plane global-load figures of one emitted kernel.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PlaneTraffic {
    /// Cells loaded from global memory while this plane is current.
    pub cells: u64,
    /// Coalesced transactions those loads take against the *padded*
    /// host layout (see [`padded_stride_for`]), over the segment size
    /// the oracle was asked for.
    pub transactions: u64,
}

/// The kernel-side traffic oracle: per-plane global loads and
/// write-backs exactly as the *emitted* kernel issues them.
///
/// This differs from [`TrafficOracle`] in two deliberate ways: rows
/// use the generated host allocator's 128-byte padded stride (the plan
/// oracle uses the logical `nx`), and staging extents follow the
/// emitter — vector-extended slabs when `r % VW != 0`, `VW`-rounded
/// sweep spans. The kernel verifier (`LNT-K005`) re-derives the same
/// map from the kernel AST's load events and asserts exact equality,
/// proving oracle, plan and emitted text agree.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct KernelTraffic {
    /// Word width in bytes.
    pub word_bytes: u64,
    /// Per-global-plane load figures.
    pub loads: BTreeMap<u64, PlaneTraffic>,
    /// Per-global-plane write-back cell counts.
    pub stores: BTreeMap<u64, u64>,
}

impl KernelTraffic {
    /// Total cells loaded across all planes.
    pub fn total_load_cells(&self) -> u64 {
        self.loads.values().map(|p| p.cells).sum()
    }

    /// Total coalesced load transactions across all planes.
    pub fn total_load_transactions(&self) -> u64 {
        self.loads.values().map(|p| p.transactions).sum()
    }

    /// Total cells written back across all planes.
    pub fn total_store_cells(&self) -> u64 {
        self.stores.values().sum()
    }
}

/// The segment-aligned row stride (in elements) the generated host
/// code allocates for a `seg`-byte coalescing granule:
/// `ceil(nx·b / seg) · (seg / b)` — the `STRIDE` `#define` of
/// `generate_host`.
pub fn padded_stride_for(nx: usize, elem_bytes: usize, seg: u64) -> u64 {
    let b = elem_bytes as u64;
    (nx as u64 * b).div_ceil(seg) * (seg / b)
}

/// [`padded_stride_for`] at the legacy [`COALESCE_SEGMENT_BYTES`].
pub fn padded_stride(nx: usize, elem_bytes: usize) -> u64 {
    padded_stride_for(nx, elem_bytes, COALESCE_SEGMENT_BYTES)
}

/// State threaded through the kernel-oracle plan walk.
struct KernelWalk {
    out: KernelTraffic,
    stride: u64,
    pstride: u64,
    word_bytes: u64,
    segment_bytes: u64,
}

impl KernelWalk {
    /// Count the loads of a `w × h` row-aligned region at `(x_lo, y_lo)`
    /// of global plane `plane`.
    fn region(&mut self, plane: usize, x_lo: i64, w: i64, y_lo: i64, h: i64) {
        if w <= 0 || h <= 0 {
            return;
        }
        let entry = self.out.loads.entry(plane as u64).or_default();
        for y in y_lo..y_lo + h {
            let base = plane as u64 * self.pstride + y as u64 * self.stride + x_lo as u64;
            entry.cells += w as u64;
            entry.transactions +=
                row_transactions(base, w as u64, self.word_bytes, self.segment_bytes);
        }
    }
}

/// Re-derive the per-plane traffic the generated kernel issues for
/// `plan` (a single-step lowering of `spec.method`), against the
/// padded host layout.
///
/// The walk mirrors the emitters region for region: pipeline preloads
/// and `GlobalPlane` rotation feeds load the interior tile; each
/// staged plane loads the routine's pattern — scalar interior + four
/// halo arms, vertical slab + side columns, horizontal full-width rows,
/// or the corner-including full-slice sweep. Extents reproduce the
/// emitted arithmetic exactly, including the `VW`-aligned slab
/// extension when `r % VW != 0` and the `VW`-rounded sweep span.
pub fn predict_kernel_traffic(plan: &StagePlan, spec: &KernelSpec) -> KernelTraffic {
    predict_kernel_traffic_for(plan, spec, COALESCE_SEGMENT_BYTES)
}

/// [`predict_kernel_traffic`] against `device`'s
/// `coalesce_segment_bytes`: both the padded host stride and the
/// transaction counts follow the device's segment size, exactly as the
/// generated host harness allocates for it.
pub fn predict_kernel_traffic_on(
    plan: &StagePlan,
    spec: &KernelSpec,
    device: &gpu_sim::DeviceSpec,
) -> KernelTraffic {
    predict_kernel_traffic_for(plan, spec, device.coalesce_segment_bytes)
}

/// The generic kernel-side oracle, parameterized on the coalescing
/// segment size in bytes.
pub fn predict_kernel_traffic_for(plan: &StagePlan, spec: &KernelSpec, seg: u64) -> KernelTraffic {
    let r = plan.radius as i64;
    let vw = vector_width(spec).max(1) as i64;
    let routine = plan.method.routine();
    let pattern = routine.load_pattern();
    let interior_global = routine.skeleton(plan.radius).interior_source == StageSource::Global;
    let (nx, ny, _) = plan.dims;
    let stride = padded_stride_for(nx, spec.elem_bytes, seg);
    let mut walk = KernelWalk {
        out: KernelTraffic {
            word_bytes: spec.elem_bytes as u64,
            ..KernelTraffic::default()
        },
        stride,
        pstride: stride * ny as u64,
        word_bytes: spec.elem_bytes as u64,
        segment_bytes: seg,
    };

    struct Blk {
        x0: i64,
        y0: i64,
        w: i64,
        h: i64,
        cur_plane: Option<usize>,
    }
    let mut blk: Option<Blk> = None;

    for op in &plan.ops {
        match *op {
            PlanOp::BeginBlock {
                x0,
                y0,
                w,
                h,
                z_depth,
                ..
            } => {
                // Pipeline preload: the interior tile on the first
                // `z_depth` planes.
                for p in 0..z_depth {
                    walk.region(p, x0 as i64, w as i64, y0 as i64, h as i64);
                }
                blk = Some(Blk {
                    x0: x0 as i64,
                    y0: y0 as i64,
                    w: w as i64,
                    h: h as i64,
                    cur_plane: None,
                });
            }
            PlanOp::StageRegion { plane, .. } => {
                let bb = blk.as_mut().expect("StageRegion outside a block");
                if bb.cur_plane == Some(plane) {
                    continue;
                }
                bb.cur_plane = Some(plane);
                let (x0, y0, w, h) = (bb.x0, bb.y0, bb.w, bb.h);
                let xs = x0 - r;
                // Exact extents when the halo is vector-aligned; the
                // emitters fall back to VW-extended slabs otherwise.
                let (ext_lo, ext_w) = if r % vw == 0 {
                    (x0, w)
                } else {
                    ((x0 / vw) * vw, (w / vw + 1) * vw)
                };
                let span = (w + 2 * r + vw - 1) / vw * vw;
                match pattern {
                    LoadPattern::ScalarRegions => {
                        if interior_global {
                            walk.region(plane, x0, w, y0, h);
                        }
                        walk.region(plane, x0, w, y0 - r, r);
                        walk.region(plane, x0, w, y0 + h, r);
                        walk.region(plane, x0 - r, r, y0, h);
                        walk.region(plane, x0 + w, r, y0, h);
                    }
                    LoadPattern::VerticalSlab => {
                        walk.region(plane, ext_lo, ext_w, y0 - r, h + 2 * r);
                        walk.region(plane, x0 - r, r, y0, h);
                        walk.region(plane, x0 + w, r, y0, h);
                    }
                    LoadPattern::HorizontalRows => {
                        walk.region(plane, xs, span, y0, h);
                        walk.region(plane, ext_lo, ext_w, y0 - r, r);
                        walk.region(plane, ext_lo, ext_w, y0 + h, r);
                    }
                    LoadPattern::FullSliceSweep => {
                        walk.region(plane, xs, span, y0 - r, h + 2 * r);
                    }
                }
            }
            PlanOp::RotatePipeline { pipeline, feed } => {
                if let (PipelineKind::ZValues, PipelineFeed::GlobalPlane(kp)) = (pipeline, feed) {
                    let bb = blk.as_ref().expect("RotatePipeline outside a block");
                    walk.region(kp, bb.x0, bb.w, bb.y0, bb.h);
                }
            }
            PlanOp::WriteBack { plane, .. } => {
                let bb = blk.as_ref().expect("WriteBack outside a block");
                *walk.out.stores.entry(plane as u64).or_insert(0) += (bb.w * bb.h) as u64;
            }
            _ => {}
        }
    }

    walk.out
}

#[cfg(test)]
mod tests {
    use super::*;
    use inplane_core::plan::lower_step;
    use inplane_core::{interpret_plan, LaunchConfig, Method, Variant};
    use stencil_grid::{FillPattern, Grid3, StarStencil};

    #[test]
    fn row_transactions_count_touched_segments() {
        // 32 f32 words aligned on a 128-byte segment: one transaction.
        assert_eq!(row_transactions(0, 32, 4, 128), 1);
        // Misaligned by one word: spills into a second segment.
        assert_eq!(row_transactions(1, 32, 4, 128), 2);
        // f64 halves the words per segment.
        assert_eq!(row_transactions(0, 32, 8, 128), 2);
        assert_eq!(row_transactions(0, 0, 4, 128), 0);
        // Single cell: always one transaction.
        assert_eq!(row_transactions(1023, 1, 8, 128), 1);
        // 64-byte segments double the aligned figure and can never
        // need fewer transactions than 128-byte ones.
        assert_eq!(row_transactions(0, 32, 4, 64), 2);
        assert_eq!(row_transactions(1, 32, 4, 64), 3);
        assert_eq!(row_transactions(0, 16, 4, 64), 1);
    }

    #[test]
    fn oracle_matches_the_interpreter_on_a_single_step() {
        for method in [
            Method::ForwardPlane,
            Method::InPlane(Variant::FullSlice),
            Method::InPlane(Variant::Horizontal),
        ] {
            let plan = lower_step(method, &LaunchConfig::new(4, 4, 1, 1), 2, (12, 12, 10));
            let s: StarStencil<f32> = StarStencil::from_order(4);
            let input: Grid3<f32> = FillPattern::HashNoise.build(12, 12, 10);
            let mut out = Grid3::new(12, 12, 10);
            let dynamic = interpret_plan(&plan, &s, &input, &mut out);
            assert_eq!(predict_stats(&plan), dynamic, "{method}");
        }
    }

    #[test]
    fn byte_figures_scale_with_precision() {
        let plan = lower_step(
            Method::InPlane(Variant::Vertical),
            &LaunchConfig::new(4, 4, 1, 1),
            1,
            (10, 10, 8),
        );
        let sp = predict_traffic(&plan, Precision::Single);
        let dp = predict_traffic(&plan, Precision::Double);
        assert_eq!(sp.stats, dp.stats, "counters are word-width independent");
        assert_eq!(dp.staged_bytes, 2 * sp.staged_bytes);
        assert_eq!(dp.store_bytes, 2 * sp.store_bytes);
        assert!(dp.load_transactions >= sp.load_transactions);
        assert!(sp.global_load_cells > 0);
        assert!(sp.load_transactions > 0);
        let j = dp.to_json();
        assert!(j.contains("\"word_bytes\":8"));
        assert!(j.contains("\"load_transactions\":"));
    }

    #[test]
    fn padded_stride_rounds_rows_to_whole_segments() {
        // 12 f32 words = 48 bytes -> one 128-byte segment = 32 words.
        assert_eq!(padded_stride(12, 4), 32);
        // 33 f32 words = 132 bytes -> two segments = 64 words.
        assert_eq!(padded_stride(33, 4), 64);
        // 16 f64 words fill a segment exactly.
        assert_eq!(padded_stride(16, 8), 16);
        // 64-byte granules pad half as far: 12 f32 words -> 16.
        assert_eq!(padded_stride_for(12, 4, 64), 16);
        assert_eq!(padded_stride_for(33, 4, 64), 48);
        assert_eq!(padded_stride_for(16, 8, 64), 16);
    }

    #[test]
    fn device_segment_geometry_changes_transactions_only() {
        let plan = lower_step(
            Method::InPlane(Variant::FullSlice),
            &LaunchConfig::new(8, 4, 1, 1),
            2,
            (20, 12, 9),
        );
        let legacy = predict_traffic(&plan, Precision::Single);
        let wave64 = predict_traffic_on(&plan, Precision::Single, &gpu_sim::DeviceSpec::hd7970());
        let ampere = predict_traffic_on(&plan, Precision::Single, &gpu_sim::DeviceSpec::rtx3090());
        // Counters and byte volumes are segment-independent.
        assert_eq!(legacy.stats, wave64.stats);
        assert_eq!(legacy.global_load_cells, wave64.global_load_cells);
        assert_eq!(legacy.staged_bytes, wave64.staged_bytes);
        assert_eq!(legacy.store_bytes, wave64.store_bytes);
        // A 64-byte segment can only split, never merge, transactions.
        assert!(wave64.load_transactions >= legacy.load_transactions);
        assert_eq!(wave64.segment_bytes, 64);
        // Ampere keeps the legacy 128-byte padding granule.
        assert_eq!(ampere, legacy);
        assert!(wave64.to_json().contains("\"segment_bytes\":64"));
    }

    #[test]
    fn kernel_oracle_matches_plan_cells_on_aligned_configs() {
        use inplane_core::Method;
        // When the staging extents are exact (r % VW == 0), the
        // kernel-side oracle must agree with the plan oracle on total
        // load cells and stores — only the transaction figures differ
        // (padded vs logical stride).
        for (method, order, config, dims) in [
            (
                Method::ForwardPlane,
                4,
                LaunchConfig::new(4, 4, 1, 1),
                (12, 12, 9),
            ),
            (
                Method::InPlane(Variant::Vertical),
                8,
                LaunchConfig::new(8, 2, 1, 2),
                (16, 12, 10),
            ),
            (
                Method::InPlane(Variant::Horizontal),
                8,
                LaunchConfig::new(8, 2, 1, 2),
                (16, 12, 10),
            ),
            (
                Method::InPlane(Variant::FullSlice),
                8,
                LaunchConfig::new(8, 2, 1, 2),
                (16, 12, 10),
            ),
        ] {
            let spec = KernelSpec::star_order(method, order, Precision::Single);
            let plan = lower_step(method, &config, spec.radius, dims);
            let kt = predict_kernel_traffic(&plan, &spec);
            let po = predict_traffic(&plan, Precision::Single);
            assert_eq!(kt.total_load_cells(), po.global_load_cells, "{method}");
            assert_eq!(kt.total_store_cells(), po.stats.global_writes, "{method}");
            assert!(kt.total_load_transactions() > 0, "{method}");
            assert!(kt.loads.len() >= dims.2 - 2 * spec.radius, "{method}");
        }
    }
}
