//! Comment- and string-aware tokenizer for the generated C dialect.
//!
//! Two consumers share it: the kernel parser (which needs positions and
//! the collected `#define` table) and the `codegen_text` barrier
//! counter (which must not count tokens inside comments or string
//! literals — the bug the plain substring counter had).

use std::fmt;

/// A source position, 1-based.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Pos {
    /// 1-based line.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
}

impl fmt::Display for Pos {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.line, self.col)
    }
}

/// Token payload. Punctuation is normalised to a static string so
/// two-character operators (`&&`, `+=`, `++`, …) stay single tokens.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword.
    Ident(String),
    /// Decimal integer literal.
    Num(i64),
    /// A string literal (contents irrelevant to the verified subset).
    Str,
    /// Punctuation / operator.
    P(&'static str),
}

/// One token with its source position.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Token {
    /// Payload.
    pub kind: TokKind,
    /// Position of the token's first character.
    pub pos: Pos,
}

/// Lexer failure: an unrecognised character.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LexError {
    /// Where the unrecognised character sits.
    pub pos: Pos,
    /// The character.
    pub ch: char,
}

impl fmt::Display for LexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "unrecognised character {:?} at {}", self.ch, self.pos)
    }
}

/// Lexed source: the token stream (directives excluded) plus the
/// collected object-like `#define` table in declaration order.
#[derive(Clone, Debug, Default)]
pub struct LexOut {
    /// Non-directive tokens.
    pub tokens: Vec<Token>,
    /// `#define NAME body` pairs, body lexed to tokens.
    pub defines: Vec<(String, Vec<Token>)>,
}

const TWO_CHAR: &[&str] = &[
    "&&", "||", "+=", "-=", "*=", "/=", "++", "--", "<=", ">=", "==", "!=", "<<", ">>",
];
const ONE_CHAR: &str = "()[]{};,.&*+-/%<>=!~^?:";

struct Cursor<'s> {
    src: &'s [u8],
    i: usize,
    line: u32,
    col: u32,
}

impl<'s> Cursor<'s> {
    fn new(src: &'s str) -> Self {
        Cursor {
            src: src.as_bytes(),
            i: 0,
            line: 1,
            col: 1,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.src.get(self.i).copied()
    }

    fn peek2(&self) -> Option<u8> {
        self.src.get(self.i + 1).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let c = self.peek()?;
        self.i += 1;
        if c == b'\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        Some(c)
    }

    fn pos(&self) -> Pos {
        Pos {
            line: self.line,
            col: self.col,
        }
    }

    fn at_line_start(&self) -> bool {
        let mut j = self.i;
        while j > 0 {
            let c = self.src[j - 1];
            if c == b'\n' {
                return true;
            }
            if c != b' ' && c != b'\t' {
                return false;
            }
            j -= 1;
        }
        true
    }
}

fn lex_into(
    cur: &mut Cursor<'_>,
    out: &mut Vec<Token>,
    defines: Option<&mut LexOut>,
) -> Result<(), LexError> {
    let mut defines = defines;
    while let Some(c) = cur.peek() {
        match c {
            b' ' | b'\t' | b'\r' | b'\n' => {
                cur.bump();
            }
            b'/' if cur.peek2() == Some(b'/') => {
                while let Some(c) = cur.peek() {
                    if c == b'\n' {
                        break;
                    }
                    cur.bump();
                }
            }
            b'/' if cur.peek2() == Some(b'*') => {
                cur.bump();
                cur.bump();
                while let Some(c) = cur.bump() {
                    if c == b'*' && cur.peek() == Some(b'/') {
                        cur.bump();
                        break;
                    }
                }
            }
            b'#' if cur.at_line_start() => {
                // Directive: consume the line. Collect `#define NAME body`
                // when a define table was requested.
                let mut line = String::new();
                let line_no = cur.line;
                while let Some(c) = cur.peek() {
                    if c == b'\n' {
                        break;
                    }
                    line.push(cur.bump().unwrap() as char);
                }
                if let Some(defs) = defines.as_deref_mut() {
                    if let Some(rest) = line.trim().strip_prefix("#define ") {
                        let mut parts = rest.trim().splitn(2, char::is_whitespace);
                        if let (Some(name), Some(body)) = (parts.next(), parts.next()) {
                            // Object-like macros only: a '(' glued to the
                            // name would be function-like (never emitted).
                            if !name.is_empty() {
                                let mut body_cur = Cursor::new(body);
                                body_cur.line = line_no;
                                let mut body_toks = Vec::new();
                                lex_into(&mut body_cur, &mut body_toks, None)?;
                                defs.defines.push((name.to_string(), body_toks));
                            }
                        }
                    }
                }
            }
            b'"' => {
                let pos = cur.pos();
                cur.bump();
                while let Some(c) = cur.bump() {
                    if c == b'\\' {
                        cur.bump();
                    } else if c == b'"' {
                        break;
                    }
                }
                out.push(Token {
                    kind: TokKind::Str,
                    pos,
                });
            }
            b'0'..=b'9' => {
                let pos = cur.pos();
                let mut n: i64 = 0;
                while let Some(c) = cur.peek() {
                    if c.is_ascii_digit() {
                        n = n.saturating_mul(10).saturating_add((c - b'0') as i64);
                        cur.bump();
                    } else {
                        break;
                    }
                }
                // Swallow numeric suffixes (`u`, `L`, `f`) and a fractional
                // part; generated kernels use plain ints, but a tolerant
                // lexer keeps the tamper suite's mutants lexable.
                while let Some(c) = cur.peek() {
                    if c.is_ascii_alphanumeric() || c == b'.' {
                        cur.bump();
                    } else {
                        break;
                    }
                }
                out.push(Token {
                    kind: TokKind::Num(n),
                    pos,
                });
            }
            b'a'..=b'z' | b'A'..=b'Z' | b'_' => {
                let pos = cur.pos();
                let mut s = String::new();
                while let Some(c) = cur.peek() {
                    if c.is_ascii_alphanumeric() || c == b'_' {
                        s.push(cur.bump().unwrap() as char);
                    } else {
                        break;
                    }
                }
                out.push(Token {
                    kind: TokKind::Ident(s),
                    pos,
                });
            }
            _ => {
                let pos = cur.pos();
                let two = if cur.peek2().is_some() {
                    let pair = [c, cur.peek2().unwrap()];
                    TWO_CHAR.iter().find(|p| p.as_bytes() == pair).copied()
                } else {
                    None
                };
                if let Some(p) = two {
                    cur.bump();
                    cur.bump();
                    out.push(Token {
                        kind: TokKind::P(p),
                        pos,
                    });
                } else if let Some(idx) = ONE_CHAR.find(c as char) {
                    cur.bump();
                    let p = &ONE_CHAR[idx..idx + 1];
                    out.push(Token {
                        kind: TokKind::P(p),
                        pos,
                    });
                } else {
                    return Err(LexError { pos, ch: c as char });
                }
            }
        }
    }
    Ok(())
}

/// Lex `source`: comments and directives are skipped, `#define`s are
/// collected, string literals become single [`TokKind::Str`] tokens.
pub fn lex(source: &str) -> Result<LexOut, LexError> {
    let mut out = LexOut::default();
    let mut cur = Cursor::new(source);
    let mut tokens = Vec::new();
    let mut defs = LexOut::default();
    lex_into(&mut cur, &mut tokens, Some(&mut defs))?;
    out.tokens = tokens;
    out.defines = defs.defines;
    Ok(out)
}

/// Count occurrences of `needle` (itself lexed) as a contiguous token
/// subsequence of `haystack`'s token stream. Tokens inside comments,
/// string literals and preprocessor directives are never counted.
/// Returns `None` when either side fails to lex.
pub fn count_token_occurrences(haystack: &str, needle: &str) -> Option<usize> {
    let hay = lex(haystack).ok()?;
    let ned = lex(needle).ok()?;
    if ned.tokens.is_empty() {
        return Some(0);
    }
    let hk: Vec<&TokKind> = hay.tokens.iter().map(|t| &t.kind).collect();
    let nk: Vec<&TokKind> = ned.tokens.iter().map(|t| &t.kind).collect();
    let mut count = 0;
    let mut i = 0;
    while i + nk.len() <= hk.len() {
        if hk[i..i + nk.len()].iter().zip(&nk).all(|(a, b)| **a == **b) {
            count += 1;
        }
        i += 1;
    }
    Some(count)
}

/// Expand object-like macros in `tokens` using the collected define
/// table, recursively, with a depth guard. Expanded tokens inherit the
/// use-site position so diagnostics point at real source lines.
pub fn expand_macros(tokens: &[Token], defines: &[(String, Vec<Token>)]) -> Vec<Token> {
    fn expand_one(
        tok: &Token,
        defines: &[(String, Vec<Token>)],
        depth: usize,
        out: &mut Vec<Token>,
    ) {
        if depth < 32 {
            if let TokKind::Ident(name) = &tok.kind {
                if let Some((_, body)) = defines.iter().find(|(n, _)| n == name) {
                    for t in body {
                        let mut t = t.clone();
                        t.pos = tok.pos;
                        expand_one(&t, defines, depth + 1, out);
                    }
                    return;
                }
            }
        }
        out.push(tok.clone());
    }
    let mut out = Vec::with_capacity(tokens.len() * 2);
    for t in tokens {
        expand_one(t, defines, 0, &mut out);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn skips_comments_and_strings() {
        let src = "int x = 1; // __syncthreads()\n/* __syncthreads(); */\nconst char* s = \"__syncthreads()\";\n__syncthreads();\n";
        assert_eq!(count_token_occurrences(src, "__syncthreads()"), Some(1));
    }

    #[test]
    fn collects_defines() {
        let out = lex("#define TX 32\n#define WX (TX * RX)\nint a;\n").unwrap();
        assert_eq!(out.defines.len(), 2);
        assert_eq!(out.defines[0].0, "TX");
        assert_eq!(out.defines[1].0, "WX");
        assert_eq!(out.tokens.len(), 3); // int a ;
    }

    #[test]
    fn expands_derived_macros() {
        let out = lex("#define R 2\n#define D (2 * R + 1)\nD").unwrap();
        let exp = expand_macros(&out.tokens, &out.defines);
        let kinds: Vec<&TokKind> = exp.iter().map(|t| &t.kind).collect();
        // ( 2 * 2 + 1 )
        assert_eq!(kinds.len(), 7);
        assert!(matches!(kinds[1], TokKind::Num(2)));
        assert!(matches!(kinds[3], TokKind::Num(2)));
    }

    #[test]
    fn recursive_macro_is_bounded() {
        let out = lex("#define LOOP LOOP\nLOOP").unwrap();
        let exp = expand_macros(&out.tokens, &out.defines);
        assert!(exp.len() == 1, "depth guard must terminate");
    }

    #[test]
    fn two_char_operators_lex_as_one_token() {
        let out = lex("a += b && c ++ d <= e").unwrap();
        let puncts: Vec<_> = out
            .tokens
            .iter()
            .filter_map(|t| match &t.kind {
                TokKind::P(p) => Some(*p),
                _ => None,
            })
            .collect();
        assert_eq!(puncts, vec!["+=", "&&", "++", "<="]);
    }

    #[test]
    fn positions_are_one_based() {
        let out = lex("ab\n  cd").unwrap();
        assert_eq!(out.tokens[0].pos, Pos { line: 1, col: 1 });
        assert_eq!(out.tokens[1].pos, Pos { line: 2, col: 3 });
    }

    #[test]
    fn unknown_character_errors() {
        assert!(lex("int a = `b`;").is_err());
    }
}
