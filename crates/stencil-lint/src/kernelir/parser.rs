//! Recursive-descent parser lowering emitted CUDA/OpenCL into the
//! kernel AST.
//!
//! The grammar is the closed C dialect the two emitters produce —
//! nothing more. Anything outside it is a [`ParseError`], which the
//! verifier surfaces as `LNT-K006`: an unparseable kernel is an
//! unverified kernel. `#define`s are expanded at token level before
//! parsing, so a tampered `#define R 3` changes the AST exactly the way
//! it would change the compiled kernel.

use super::ast::{
    AssignOp, Base, BinOp, Builtin, Expr, Kernel, LValue, SharedDecl, Step, Stmt, Sym, SymTab,
};
use super::lexer::{expand_macros, lex, Pos, TokKind, Token};
use std::fmt;

/// Parse failure: position plus a human-readable reason.
#[derive(Clone, Debug)]
pub struct ParseError {
    /// Where parsing stopped.
    pub pos: Pos,
    /// What was expected / found.
    pub msg: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {}", self.pos, self.msg)
    }
}

const END_POS: Pos = Pos {
    line: u32::MAX,
    col: 1,
};

struct Parser {
    toks: Vec<Token>,
    i: usize,
    syms: SymTab,
    shared: Vec<SharedDecl>,
    local_arrays: Vec<(Sym, Vec<i64>)>,
}

type PResult<T> = Result<T, ParseError>;

fn is_type_name(s: &str) -> bool {
    matches!(
        s,
        "int" | "float" | "double" | "size_t" | "float2" | "float4" | "double2" | "double4"
    )
}

fn vec_lanes(ty: &str) -> Option<u8> {
    match ty {
        "float4" | "double4" => Some(4),
        "float2" | "double2" => Some(2),
        _ => None,
    }
}

impl Parser {
    fn pos(&self) -> Pos {
        self.toks.get(self.i).map(|t| t.pos).unwrap_or(END_POS)
    }

    fn peek(&self) -> Option<&TokKind> {
        self.toks.get(self.i).map(|t| &t.kind)
    }

    fn peek_at(&self, off: usize) -> Option<&TokKind> {
        self.toks.get(self.i + off).map(|t| &t.kind)
    }

    fn bump(&mut self) -> Option<Token> {
        let t = self.toks.get(self.i).cloned();
        if t.is_some() {
            self.i += 1;
        }
        t
    }

    fn err<T>(&self, msg: impl Into<String>) -> PResult<T> {
        Err(ParseError {
            pos: self.pos(),
            msg: msg.into(),
        })
    }

    fn is_p(&self, p: &str) -> bool {
        matches!(self.peek(), Some(TokKind::P(q)) if *q == p)
    }

    fn is_p_at(&self, off: usize, p: &str) -> bool {
        matches!(self.peek_at(off), Some(TokKind::P(q)) if *q == p)
    }

    fn ident_at(&self, off: usize) -> Option<&str> {
        match self.peek_at(off) {
            Some(TokKind::Ident(s)) => Some(s.as_str()),
            _ => None,
        }
    }

    fn expect_p(&mut self, p: &str) -> PResult<Pos> {
        if self.is_p(p) {
            Ok(self.bump().unwrap().pos)
        } else {
            self.err(format!("expected `{p}`, found {:?}", self.peek()))
        }
    }

    fn expect_ident(&mut self) -> PResult<(String, Pos)> {
        match self.peek() {
            Some(TokKind::Ident(_)) => {
                let t = self.bump().unwrap();
                match t.kind {
                    TokKind::Ident(s) => Ok((s, t.pos)),
                    _ => unreachable!(),
                }
            }
            other => self.err(format!("expected identifier, found {other:?}")),
        }
    }

    fn eat_ident(&mut self, name: &str) -> bool {
        if self.ident_at(0) == Some(name) {
            self.i += 1;
            true
        } else {
            false
        }
    }

    fn base_for(&mut self, name: &str) -> Base {
        match name {
            "in" => Base::GlobalIn,
            "out" => Base::GlobalOut,
            "c_coeff" | "coeff" => Base::Coeff,
            _ => Base::Named(self.syms.intern(name)),
        }
    }

    // ---- expressions -------------------------------------------------

    fn parse_expr(&mut self) -> PResult<Expr> {
        self.parse_land()
    }

    fn parse_land(&mut self) -> PResult<Expr> {
        let mut lhs = self.parse_bitand()?;
        while self.is_p("&&") {
            self.bump();
            let rhs = self.parse_bitand()?;
            lhs = Expr::Bin(BinOp::LAnd, Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn parse_bitand(&mut self) -> PResult<Expr> {
        let mut lhs = self.parse_cmp()?;
        while self.is_p("&") {
            self.bump();
            let rhs = self.parse_cmp()?;
            lhs = Expr::Bin(BinOp::And, Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn parse_cmp(&mut self) -> PResult<Expr> {
        let lhs = self.parse_add()?;
        let op = match self.peek() {
            Some(TokKind::P("<")) => BinOp::Lt,
            Some(TokKind::P("<=")) => BinOp::Le,
            Some(TokKind::P(">")) => BinOp::Gt,
            Some(TokKind::P(">=")) => BinOp::Ge,
            Some(TokKind::P("==")) => BinOp::Eq,
            Some(TokKind::P("!=")) => BinOp::Ne,
            _ => return Ok(lhs),
        };
        self.bump();
        let rhs = self.parse_add()?;
        Ok(Expr::Bin(op, Box::new(lhs), Box::new(rhs)))
    }

    fn parse_add(&mut self) -> PResult<Expr> {
        let mut lhs = self.parse_mul()?;
        loop {
            let op = match self.peek() {
                Some(TokKind::P("+")) => BinOp::Add,
                Some(TokKind::P("-")) => BinOp::Sub,
                _ => break,
            };
            self.bump();
            let rhs = self.parse_mul()?;
            lhs = Expr::Bin(op, Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn parse_mul(&mut self) -> PResult<Expr> {
        let mut lhs = self.parse_unary()?;
        loop {
            let op = match self.peek() {
                Some(TokKind::P("*")) => BinOp::Mul,
                Some(TokKind::P("/")) => BinOp::Div,
                Some(TokKind::P("%")) => BinOp::Rem,
                _ => break,
            };
            self.bump();
            let rhs = self.parse_unary()?;
            lhs = Expr::Bin(op, Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn parse_unary(&mut self) -> PResult<Expr> {
        if self.is_p("-") {
            self.bump();
            let e = self.parse_unary()?;
            return Ok(Expr::Neg(Box::new(e)));
        }
        if self.is_p("*") && self.ident_at(1) == Some("reinterpret_cast") {
            return self.parse_vec_load();
        }
        // A cast is `(` type `)` — exactly three tokens of lookahead.
        if self.is_p("(") {
            if let Some(ty) = self.ident_at(1) {
                if self.is_p_at(2, ")") && (is_type_name(ty) || ty == "void") {
                    let cast_int = matches!(ty, "int" | "size_t");
                    let cast_data = matches!(ty, "float" | "double");
                    if cast_int || cast_data {
                        self.bump();
                        self.bump();
                        self.bump();
                        let e = self.parse_unary()?;
                        return Ok(if cast_int {
                            Expr::CastInt(Box::new(e))
                        } else {
                            Expr::CastData(Box::new(e))
                        });
                    }
                }
            }
        }
        self.parse_atom()
    }

    /// `*reinterpret_cast<const float4*>(&in[expr])`
    fn parse_vec_load(&mut self) -> PResult<Expr> {
        let pos = self.pos();
        self.expect_p("*")?;
        let (_, _) = self.expect_ident()?; // reinterpret_cast
        self.expect_p("<")?;
        let mut lanes = None;
        while !self.is_p(">") {
            if let Some(TokKind::Ident(ty)) = self.peek() {
                if let Some(l) = vec_lanes(ty) {
                    lanes = Some(l);
                }
            }
            if self.bump().is_none() {
                return self.err("unterminated reinterpret_cast<…>");
            }
        }
        self.expect_p(">")?;
        let lanes = match lanes {
            Some(l) => l,
            None => return self.err("reinterpret_cast target is not a known vector type"),
        };
        self.expect_p("(")?;
        self.expect_p("&")?;
        if !self.eat_ident("in") {
            return self.err("vector loads must target the `in` buffer");
        }
        self.expect_p("[")?;
        let index = self.parse_expr()?;
        self.expect_p("]")?;
        self.expect_p(")")?;
        Ok(Expr::VecLoad {
            index: Box::new(index),
            lanes,
            pos,
        })
    }

    fn parse_atom(&mut self) -> PResult<Expr> {
        match self.peek() {
            Some(TokKind::Num(_)) => {
                let t = self.bump().unwrap();
                match t.kind {
                    TokKind::Num(n) => Ok(Expr::Num(n)),
                    _ => unreachable!(),
                }
            }
            Some(TokKind::P("(")) => {
                self.bump();
                let e = self.parse_expr()?;
                self.expect_p(")")?;
                Ok(e)
            }
            Some(TokKind::Ident(_)) => {
                let (name, pos) = self.expect_ident()?;
                // Builtins.
                match name.as_str() {
                    "threadIdx" | "blockIdx" => {
                        self.expect_p(".")?;
                        let (axis, _) = self.expect_ident()?;
                        let b = match (name.as_str(), axis.as_str()) {
                            ("threadIdx", "x") => Builtin::Tx,
                            ("threadIdx", "y") => Builtin::Ty,
                            ("blockIdx", "x") => Builtin::Bx,
                            ("blockIdx", "y") => Builtin::By,
                            _ => return self.err(format!("unsupported builtin {name}.{axis}")),
                        };
                        return Ok(Expr::Builtin(b));
                    }
                    "get_local_id" | "get_group_id" => {
                        self.expect_p("(")?;
                        let dim = match self.bump().map(|t| t.kind) {
                            Some(TokKind::Num(n)) => n,
                            _ => return self.err("expected dimension literal"),
                        };
                        self.expect_p(")")?;
                        let b = match (name.as_str(), dim) {
                            ("get_local_id", 0) => Builtin::Tx,
                            ("get_local_id", 1) => Builtin::Ty,
                            ("get_group_id", 0) => Builtin::Bx,
                            ("get_group_id", 1) => Builtin::By,
                            _ => return self.err(format!("unsupported builtin {name}({dim})")),
                        };
                        return Ok(Expr::Builtin(b));
                    }
                    _ => {}
                }
                if self.is_p("[") {
                    let base = self.base_for(&name);
                    let mut indices = Vec::new();
                    while self.is_p("[") {
                        self.bump();
                        indices.push(self.parse_expr()?);
                        self.expect_p("]")?;
                    }
                    return Ok(Expr::Index { base, indices, pos });
                }
                if self.is_p(".") {
                    self.bump();
                    let (lane, _) = self.expect_ident()?;
                    let lane = match lane.as_str() {
                        "x" => 0,
                        "y" => 1,
                        "z" => 2,
                        "w" => 3,
                        _ => return self.err(format!("unsupported lane .{lane}")),
                    };
                    let var = self.syms.intern(&name);
                    return Ok(Expr::Lane { var, lane });
                }
                let sym = self.syms.intern(&name);
                Ok(Expr::Var(sym))
            }
            other => self.err(format!("expected expression, found {other:?}")),
        }
    }

    fn parse_const_expr(&mut self) -> PResult<i64> {
        let pos = self.pos();
        let e = self.parse_expr()?;
        match const_eval(&e) {
            Some(v) => Ok(v),
            None => Err(ParseError {
                pos,
                msg: "expected a compile-time constant expression".into(),
            }),
        }
    }

    // ---- statements --------------------------------------------------

    fn parse_block(&mut self) -> PResult<Vec<Stmt>> {
        self.expect_p("{")?;
        let mut body = Vec::new();
        while !self.is_p("}") {
            if self.peek().is_none() {
                return self.err("unexpected end of kernel inside a block");
            }
            if let Some(s) = self.parse_stmt()? {
                body.push(s);
            }
        }
        self.expect_p("}")?;
        Ok(body)
    }

    /// Parse one statement. Returns `None` for declarations that are
    /// recorded out-of-band (shared-memory arrays).
    fn parse_stmt(&mut self) -> PResult<Option<Stmt>> {
        // Barriers.
        if self.ident_at(0) == Some("__syncthreads") {
            let pos = self.pos();
            self.bump();
            self.expect_p("(")?;
            self.expect_p(")")?;
            self.expect_p(";")?;
            return Ok(Some(Stmt::Barrier { pos }));
        }
        if self.ident_at(0) == Some("barrier") && self.is_p_at(1, "(") {
            let pos = self.pos();
            self.bump();
            self.expect_p("(")?;
            let (_fence, _) = self.expect_ident()?;
            self.expect_p(")")?;
            self.expect_p(";")?;
            return Ok(Some(Stmt::Barrier { pos }));
        }
        // `(void)x;`
        if self.is_p("(") && self.ident_at(1) == Some("void") && self.is_p_at(2, ")") {
            self.bump();
            self.bump();
            self.bump();
            let _ = self.parse_expr()?;
            self.expect_p(";")?;
            return Ok(Some(Stmt::Nop));
        }
        if self.ident_at(0) == Some("if") {
            self.bump();
            self.expect_p("(")?;
            let cond = self.parse_expr()?;
            self.expect_p(")")?;
            let body = self.parse_block()?;
            return Ok(Some(Stmt::If { cond, body }));
        }
        if self.ident_at(0) == Some("for") {
            return self.parse_for().map(Some);
        }
        // Shared-memory declarations are recorded on the kernel, not in
        // the statement list (they exist once per block, not per thread).
        if self.ident_at(0) == Some("__shared__") || self.ident_at(0) == Some("__local") {
            self.bump();
            let (_ty, _) = self.expect_ident()?;
            let (name, pos) = self.expect_ident()?;
            let name = self.syms.intern(&name);
            let mut dims = Vec::new();
            while self.is_p("[") {
                self.bump();
                dims.push(self.parse_const_expr()?);
                self.expect_p("]")?;
            }
            self.expect_p(";")?;
            self.shared.push(SharedDecl { name, dims, pos });
            return Ok(None);
        }
        // Declarations: `[const] type …`.
        {
            let mut off = 0;
            if self.ident_at(0) == Some("const") {
                off = 1;
            }
            if let Some(ty) = self.ident_at(off) {
                if is_type_name(ty) {
                    return self.parse_decl(off).map(Some);
                }
            }
        }
        // Assignment.
        let stmt = self.parse_assign()?;
        Ok(Some(stmt))
    }

    fn parse_for(&mut self) -> PResult<Stmt> {
        self.bump(); // for
        self.expect_p("(")?;
        if !self.eat_ident("int") {
            return self.err("loop variables must be `int`");
        }
        let (var, _) = self.expect_ident()?;
        let var = self.syms.intern(&var);
        self.expect_p("=")?;
        let init = self.parse_expr()?;
        self.expect_p(";")?;
        let cond = self.parse_expr()?;
        self.expect_p(";")?;
        let step = if self.is_p("++") {
            self.bump();
            let _ = self.expect_ident()?;
            Step::Inc
        } else if self.is_p("--") {
            self.bump();
            let _ = self.expect_ident()?;
            Step::Dec
        } else {
            let (sv, _) = self.expect_ident()?;
            let sv = self.syms.intern(&sv);
            if self.is_p("++") {
                self.bump();
                Step::Inc
            } else if self.is_p("--") {
                self.bump();
                Step::Dec
            } else {
                if sv != var {
                    return self.err("loop step must update the loop variable");
                }
                self.expect_p("+=")?;
                Step::AddAssign(self.parse_expr()?)
            }
        };
        self.expect_p(")")?;
        let body = self.parse_block()?;
        Ok(Stmt::For {
            var,
            init,
            cond,
            step,
            body,
        })
    }

    /// Declarations starting at a type name (`off` skips a leading
    /// `const`): scalars, per-thread arrays, `T* p = &arr[..][..];`
    /// pointers and the `T (*alias)[W] = pair[sel];` view.
    fn parse_decl(&mut self, off: usize) -> PResult<Stmt> {
        for _ in 0..off {
            self.bump();
        }
        let (_ty, _) = self.expect_ident()?;
        // `T (*alias)[W] = pair[sel];`
        if self.is_p("(") && self.is_p_at(1, "*") {
            self.bump();
            self.bump();
            let (name, pos) = self.expect_ident()?;
            let name = self.syms.intern(&name);
            self.expect_p(")")?;
            self.expect_p("[")?;
            let row_len = self.parse_const_expr()?;
            self.expect_p("]")?;
            self.expect_p("=")?;
            let (base, _) = self.expect_ident()?;
            let base = self.syms.intern(&base);
            self.expect_p("[")?;
            let index = self.parse_expr()?;
            self.expect_p("]")?;
            self.expect_p(";")?;
            return Ok(Stmt::DeclAlias {
                name,
                base,
                index,
                row_len,
                pos,
            });
        }
        // `T* p = &arr[a][b];`
        if self.is_p("*") {
            self.bump();
            let (name, pos) = self.expect_ident()?;
            let name = self.syms.intern(&name);
            self.expect_p("=")?;
            self.expect_p("&")?;
            let (base, _) = self.expect_ident()?;
            let base = self.syms.intern(&base);
            let mut indices = Vec::new();
            while self.is_p("[") {
                self.bump();
                indices.push(self.parse_expr()?);
                self.expect_p("]")?;
            }
            self.expect_p(";")?;
            return Ok(Stmt::DeclPtr {
                name,
                base,
                indices,
                pos,
            });
        }
        let (name, _) = self.expect_ident()?;
        let name = self.syms.intern(&name);
        if self.is_p("[") {
            let mut dims = Vec::new();
            while self.is_p("[") {
                self.bump();
                dims.push(self.parse_const_expr()?);
                self.expect_p("]")?;
            }
            self.expect_p(";")?;
            self.local_arrays.push((name, dims.clone()));
            return Ok(Stmt::DeclArray { name, dims });
        }
        self.expect_p("=")?;
        let init = self.parse_expr()?;
        self.expect_p(";")?;
        Ok(Stmt::DeclScalar { name, init })
    }

    fn parse_assign(&mut self) -> PResult<Stmt> {
        let pos = self.pos();
        let (name, _) = self.expect_ident()?;
        let lhs = if self.is_p("[") {
            let base = self.base_for(&name);
            let mut indices = Vec::new();
            while self.is_p("[") {
                self.bump();
                indices.push(self.parse_expr()?);
                self.expect_p("]")?;
            }
            LValue::Index { base, indices }
        } else {
            LValue::Var(self.syms.intern(&name))
        };
        let op = if self.is_p("=") {
            self.bump();
            AssignOp::Set
        } else if self.is_p("+=") {
            self.bump();
            AssignOp::Add
        } else {
            return self.err("expected `=` or `+=`");
        };
        let rhs = self.parse_expr()?;
        self.expect_p(";")?;
        Ok(Stmt::Assign { lhs, op, rhs, pos })
    }
}

/// Evaluate a constant integer expression (array dims after macro
/// expansion). `None` if the expression mentions a variable.
pub fn const_eval(e: &Expr) -> Option<i64> {
    match e {
        Expr::Num(n) => Some(*n),
        Expr::Neg(x) => const_eval(x).map(|v| -v),
        Expr::CastInt(x) => const_eval(x),
        Expr::Bin(op, a, b) => {
            let a = const_eval(a)?;
            let b = const_eval(b)?;
            match op {
                BinOp::Add => Some(a + b),
                BinOp::Sub => Some(a - b),
                BinOp::Mul => Some(a * b),
                BinOp::Div => (b != 0).then(|| a / b),
                BinOp::Rem => (b != 0).then(|| a % b),
                BinOp::And => Some(a & b),
                _ => None,
            }
        }
        _ => None,
    }
}

/// Parse a generated kernel (either backend) into a [`Kernel`].
///
/// Steps: lex, expand `#define`s at token level, pick up the file-scope
/// `__constant__` coefficient declaration (CUDA), locate the kernel
/// function, parse its body.
pub fn parse_kernel(source: &str) -> Result<Kernel, ParseError> {
    let lexed = lex(source).map_err(|e| ParseError {
        pos: e.pos,
        msg: format!("lex error: unrecognised character {:?}", e.ch),
    })?;
    let toks = expand_macros(&lexed.tokens, &lexed.defines);

    let mut p = Parser {
        toks,
        i: 0,
        syms: SymTab::default(),
        shared: Vec::new(),
        local_arrays: Vec::new(),
    };

    // File scope: collect `__constant__ T c_coeff[N];`, then find
    // `void <name> (`.
    let mut coeff_len = None;
    let mut name = None;
    while p.peek().is_some() {
        if p.ident_at(0) == Some("__constant__") {
            p.bump();
            let (_ty, _) = p.expect_ident()?;
            let (_nm, _) = p.expect_ident()?;
            p.expect_p("[")?;
            coeff_len = Some(p.parse_const_expr()?);
            p.expect_p("]")?;
            p.expect_p(";")?;
            continue;
        }
        if p.ident_at(0) == Some("void") && p.ident_at(1).is_some() && p.is_p_at(2, "(") {
            p.bump();
            let (nm, _) = p.expect_ident()?;
            name = Some(nm);
            break;
        }
        p.bump();
    }
    let name = match name {
        Some(n) => n,
        None => {
            return Err(ParseError {
                pos: END_POS,
                msg: "no kernel function found".into(),
            })
        }
    };

    // Skip the parameter list (types and qualifiers are fixed by the
    // emitters; buffer/scalar names are resolved by `base_for`).
    p.expect_p("(")?;
    let mut depth = 1usize;
    while depth > 0 {
        match p.bump().map(|t| t.kind) {
            Some(TokKind::P("(")) => depth += 1,
            Some(TokKind::P(")")) => depth -= 1,
            Some(_) => {}
            None => {
                return Err(ParseError {
                    pos: END_POS,
                    msg: "unterminated parameter list".into(),
                })
            }
        }
    }

    let body = p.parse_block()?;
    if p.peek().is_some() {
        // Trailing tokens after the kernel body would mean a second
        // function — outside the verified subset.
        return p.err("unexpected tokens after kernel body");
    }
    Ok(Kernel {
        syms: p.syms,
        name,
        shared: p.shared,
        coeff_len,
        body,
        local_arrays: p.local_arrays,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    const TINY: &str = "\
#define TX 8
#define TY 2
#define R 2
#define WX TX
extern \"C\" __global__ void k(const float* __restrict__ in, float* __restrict__ out, int lx, int ly, int lz, int stride, int pstride) {
    __shared__ float tile[TY + 2 * R][WX + 2 * R];
    const int tx = threadIdx.x;
    const int ty = threadIdx.y;
    float pipe[1][1][2 * R + 1];
    for (int d = 0; d <= 2 * R; ++d) {
        pipe[0][0][d] = in[(size_t)d * pstride + (size_t)ty * stride + tx];
    }
    __syncthreads();
    if (tx < WX) {
        out[(size_t)ty * stride + tx] = pipe[0][0][R];
    }
}
";

    #[test]
    fn parses_a_tiny_kernel() {
        let k = parse_kernel(TINY).expect("parse");
        assert_eq!(k.name, "k");
        assert_eq!(k.shared.len(), 1);
        assert_eq!(k.shared[0].dims, vec![6, 12]);
        assert_eq!(k.local_arrays.len(), 1);
        assert_eq!(k.local_arrays[0].1, vec![1, 1, 5]);
        // tx, ty decls + pipe decl + for + barrier + if
        assert_eq!(k.body.len(), 6);
        assert!(matches!(k.body[4], Stmt::Barrier { .. }));
    }

    #[test]
    fn macro_expansion_feeds_dims() {
        let src = "#define W 7\nvoid k() { __shared__ float t[W]; }";
        let k = parse_kernel(src).expect("parse");
        assert_eq!(k.shared[0].dims, vec![7]);
    }

    #[test]
    fn opencl_builtins_parse() {
        let src = "\
__kernel void k(__global const float* restrict in, __global float* restrict out) {
    const int tx = (int)get_local_id(0);
    const int x0 = (int)get_group_id(0) * 8;
    out[x0 + tx] = in[x0 + tx];
    barrier(CLK_LOCAL_MEM_FENCE);
}
";
        let k = parse_kernel(src).expect("parse");
        assert_eq!(k.name, "k");
        assert!(matches!(k.body[2], Stmt::Assign { .. }));
        assert!(matches!(k.body[3], Stmt::Barrier { .. }));
    }

    #[test]
    fn vector_load_and_lanes_parse() {
        let src = "\
void k(const float* in) {
    __shared__ float tile[4][4];
    const float4 v = *reinterpret_cast<const float4*>(&in[0]);
    float* dst = &tile[0][0];
    dst[0] = v.x;
    dst[3] = v.w;
}
";
        let k = parse_kernel(src).expect("parse");
        match &k.body[0] {
            Stmt::DeclScalar { init, .. } => {
                assert!(matches!(init, Expr::VecLoad { lanes: 4, .. }));
            }
            other => panic!("expected vector decl, got {other:?}"),
        }
        assert!(matches!(k.body[1], Stmt::DeclPtr { .. }));
    }

    #[test]
    fn alias_decl_parses() {
        let src = "\
void k() {
    __shared__ float tile_pair[2][4][8];
    const int z = 3;
    float (*tile)[8] = tile_pair[(z - 2) & 1];
    tile[0][0] = (float)0;
}
";
        let k = parse_kernel(src).expect("parse");
        match &k.body[1] {
            Stmt::DeclAlias { row_len, .. } => assert_eq!(*row_len, 8),
            other => panic!("expected alias decl, got {other:?}"),
        }
    }

    #[test]
    fn unsupported_syntax_is_an_error() {
        // A ternary is outside the verified subset.
        let src = "void k() { const int a = 1 ? 2 : 3; }";
        assert!(parse_kernel(src).is_err());
    }
}
