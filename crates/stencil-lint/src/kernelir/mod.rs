//! A typed IR for the *emitted* CUDA/OpenCL kernels and the machinery
//! to prove them correct.
//!
//! The plan-level passes (`LNT-S…`, `LNT-C…`, `LNT-D…`) prove the
//! abstract schedule; this module closes the loop on the text the
//! paper actually runs. It is organised as a classic three-stage
//! front-end plus an evaluator:
//!
//! * [`lexer`] — a comment- and string-literal-aware tokenizer with
//!   line/column positions. It is also the shared counting primitive:
//!   [`lexer::count_token_occurrences`] never counts a barrier hidden
//!   in a `//` comment (the `codegen_text` bug this module fixed).
//! * [`ast`] — the typed kernel AST: declarations, affine index
//!   expressions over `threadIdx`/`get_local_id`, the plane loop and
//!   vector lanes. Identifiers are interned to keep evaluation cheap.
//! * [`parser`] — a recursive-descent parser over the macro-expanded
//!   token stream. `#define`s are collected by the lexer and expanded
//!   *at token level* before parsing, so derived macros (`WX`,
//!   `SMEM_W`) resolve exactly as a C preprocessor would.
//! * [`interp`] — a concrete per-thread evaluator parameterized by
//!   `(TX, TY, RX, RY, radius, VW, grid dims)`. Index values are
//!   concrete integers; data values are provenance hashes (a global
//!   load's address, a structural op), which is what lets the verifier
//!   tell a benign re-stage of the same cell from a genuine race.
//!
//! The proofs themselves — K001 bounds, K002 global bounds, K003
//! barrier uniformity, K004 race freedom, K005 traffic re-derivation —
//! live in [`crate::verify`].

pub mod ast;
pub mod interp;
pub mod lexer;
pub mod parser;

pub use interp::{run_block, BlockEvents, LaunchEnv, Violation, ViolationKind};
pub use lexer::count_token_occurrences;
pub use parser::parse_kernel;
