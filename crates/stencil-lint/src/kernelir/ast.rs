//! The typed kernel AST the parser lowers generated source into.
//!
//! The subset is exactly what the two emitters produce: integer-affine
//! index expressions over thread/block builtins, fixed-shape local and
//! shared arrays, counted `for` loops, guarded `if`s, barriers, vector
//! loads with explicit lane stores, and the double-buffer tile alias.
//! Identifiers are interned ([`Sym`]) so the evaluator's variable
//! lookups compare integers, not strings.

use super::lexer::Pos;
use std::collections::HashMap;

/// Interned identifier.
pub type Sym = u32;

/// Interning table mapping identifier text to [`Sym`]s.
#[derive(Clone, Debug, Default)]
pub struct SymTab {
    names: Vec<String>,
    map: HashMap<String, Sym>,
}

impl SymTab {
    /// Intern `name`, returning its stable symbol.
    pub fn intern(&mut self, name: &str) -> Sym {
        if let Some(&s) = self.map.get(name) {
            return s;
        }
        let s = self.names.len() as Sym;
        self.names.push(name.to_string());
        self.map.insert(name.to_string(), s);
        s
    }

    /// The text of a symbol.
    pub fn name(&self, s: Sym) -> &str {
        &self.names[s as usize]
    }

    /// Look an existing name up without interning.
    pub fn lookup(&self, name: &str) -> Option<Sym> {
        self.map.get(name).copied()
    }
}

/// Thread/block builtins the emitted kernels read.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Builtin {
    /// `threadIdx.x` / `get_local_id(0)`.
    Tx,
    /// `threadIdx.y` / `get_local_id(1)`.
    Ty,
    /// `blockIdx.x` / `get_group_id(0)`.
    Bx,
    /// `blockIdx.y` / `get_group_id(1)`.
    By,
}

/// Binary operators of the verified subset.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BinOp {
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/` (C truncating division)
    Div,
    /// `%`
    Rem,
    /// `&`
    And,
    /// `&&`
    LAnd,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `==`
    Eq,
    /// `!=`
    Ne,
}

/// What an indexed base name refers to.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Base {
    /// The streamed input buffer `in`.
    GlobalIn,
    /// The output buffer `out`.
    GlobalOut,
    /// The coefficient array (`c_coeff` / `coeff`).
    Coeff,
    /// A named local/shared array, pointer, or alias resolved at
    /// evaluation time.
    Named(Sym),
}

/// Expressions.
#[derive(Clone, Debug)]
pub enum Expr {
    /// Integer literal.
    Num(i64),
    /// Scalar variable read.
    Var(Sym),
    /// Thread/block builtin.
    Builtin(Builtin),
    /// Binary operation.
    Bin(BinOp, Box<Expr>, Box<Expr>),
    /// Unary negation.
    Neg(Box<Expr>),
    /// Indexed read `base[i0][i1]…`.
    Index {
        /// What the base name resolves to.
        base: Base,
        /// One expression per subscript.
        indices: Vec<Expr>,
        /// Source position of the base identifier (the load site id).
        pos: Pos,
    },
    /// `*reinterpret_cast<const vecT*>(&in[idx])`.
    VecLoad {
        /// The address expression (element index into `in`).
        index: Box<Expr>,
        /// 4 for `float4`, 2 for `double2`.
        lanes: u8,
        /// Site id.
        pos: Pos,
    },
    /// Lane read `v.x` … `v.w` of a vector value.
    Lane {
        /// The vector variable.
        var: Sym,
        /// Lane number 0..3.
        lane: u8,
    },
    /// Integer cast (`(int)`, `(size_t)`) — value-transparent.
    CastInt(Box<Expr>),
    /// Data cast (`(float)0`, `(double)0`) — produces a data value.
    CastData(Box<Expr>),
}

/// Assignment targets.
#[derive(Clone, Debug)]
pub enum LValue {
    /// Scalar variable.
    Var(Sym),
    /// Indexed store `base[i0][i1]… = …`.
    Index {
        /// Base resolution.
        base: Base,
        /// Subscripts.
        indices: Vec<Expr>,
    },
}

/// `=` or `+=`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AssignOp {
    /// Plain store.
    Set,
    /// Read-modify-write add.
    Add,
}

/// The step clause of a counted loop.
#[derive(Clone, Debug)]
pub enum Step {
    /// `++i`
    Inc,
    /// `--i`
    Dec,
    /// `i += expr`
    AddAssign(Expr),
}

/// Statements.
#[derive(Clone, Debug)]
pub enum Stmt {
    /// `const int x = e;` / `float acc = e;` — scoped scalar.
    DeclScalar {
        /// Variable name.
        name: Sym,
        /// Initialiser.
        init: Expr,
    },
    /// `float pipe[RY][RX][2*R+1];` — per-thread array, constant dims.
    DeclArray {
        /// Array name.
        name: Sym,
        /// Evaluated dimensions.
        dims: Vec<i64>,
    },
    /// `float* dst = &tile[a][b];` — pointer into a shared array.
    DeclPtr {
        /// Pointer name.
        name: Sym,
        /// Underlying array.
        base: Sym,
        /// Subscripts of the element whose address is taken.
        indices: Vec<Expr>,
        /// Source position.
        pos: Pos,
    },
    /// `float (*tile)[SMEM_W] = tile_pair[e];` — row-view alias into a
    /// buffered pair; the alias behaves as a 2-D array.
    DeclAlias {
        /// Alias name (`tile`).
        name: Sym,
        /// The pair array (`tile_pair`).
        base: Sym,
        /// Buffer-selection expression.
        index: Expr,
        /// Row length of the aliased view (evaluated `SMEM_W`).
        row_len: i64,
        /// Source position.
        pos: Pos,
    },
    /// Assignment.
    Assign {
        /// Target.
        lhs: LValue,
        /// `=` or `+=`.
        op: AssignOp,
        /// Value.
        rhs: Expr,
        /// Source position (the store site id).
        pos: Pos,
    },
    /// `if (cond) { … }`.
    If {
        /// Guard (integer expression).
        cond: Expr,
        /// Body.
        body: Vec<Stmt>,
    },
    /// `for (int v = init; cond; step) { … }`.
    For {
        /// Loop variable.
        var: Sym,
        /// Initial value.
        init: Expr,
        /// Continuation guard.
        cond: Expr,
        /// Step clause.
        step: Step,
        /// Body.
        body: Vec<Stmt>,
    },
    /// `__syncthreads();` / `barrier(CLK_LOCAL_MEM_FENCE);`.
    Barrier {
        /// Site id.
        pos: Pos,
    },
    /// `(void)x;` and friends — evaluated for effect, value dropped.
    Nop,
}

/// A shared-memory array declaration (`__shared__` / `__local`).
#[derive(Clone, Debug)]
pub struct SharedDecl {
    /// Array name.
    pub name: Sym,
    /// Evaluated dimensions.
    pub dims: Vec<i64>,
    /// Source position.
    pub pos: Pos,
}

/// The parsed kernel.
#[derive(Clone, Debug)]
pub struct Kernel {
    /// Interning table (diagnostics map symbols back to text).
    pub syms: SymTab,
    /// The `__global__`/`__kernel` function's name.
    pub name: String,
    /// Shared-memory arrays declared in the function.
    pub shared: Vec<SharedDecl>,
    /// Declared extent of the coefficient array (`c_coeff[R+1]`),
    /// when a file-scope `__constant__` declaration exists.
    pub coeff_len: Option<i64>,
    /// Function body.
    pub body: Vec<Stmt>,
    /// Per-thread local array declarations, collected for shape checks
    /// (name → dims), in declaration order.
    pub local_arrays: Vec<(Sym, Vec<i64>)>,
}
