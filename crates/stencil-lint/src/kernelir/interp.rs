//! Concrete per-thread evaluator for the kernel AST.
//!
//! Every thread of one block is executed to completion, in thread-id
//! order, against a concrete launch geometry. Index values are plain
//! `i64`; data values are 64-bit *provenance hashes* — a global load
//! yields `hash(GLOBAL, addr)`, arithmetic folds operand hashes, a
//! shared read yields a phase-tagged hash. Provenance is what lets the
//! race check tell a benign re-stage of the same global cell (equal
//! hashes) from a genuine conflict (different hashes).
//!
//! Running threads sequentially is sound for the emitted kernels
//! because shared-memory *writes* never depend on shared-memory
//! *reads*: staged values come straight from global loads (directly or
//! through the per-thread pipeline), so thread order cannot change any
//! address or any written provenance. The verifier's race check (K004)
//! is exactly the condition under which this independence holds.

use super::ast::{AssignOp, Base, BinOp, Builtin, Expr, Kernel, LValue, Step, Stmt, Sym};
use super::lexer::Pos;
use std::collections::{HashMap, HashSet};

/// Concrete launch geometry and buffer shape for one verification run.
#[derive(Clone, Copy, Debug)]
pub struct LaunchEnv {
    /// Threads per block `(TX, TY)`.
    pub block: (i64, i64),
    /// Blocks per grid `(gx, gy)`.
    pub grid: (i64, i64),
    /// Logical x extent (`lx` kernel argument).
    pub nx: i64,
    /// Logical y extent (`ly`).
    pub ny: i64,
    /// Logical z extent / plane count (`lz`).
    pub nz: i64,
    /// Padded x pitch in elements (`stride`).
    pub stride: i64,
    /// Plane pitch in elements (`pstride`, normally `stride * ny`).
    pub pstride: i64,
    /// Coefficient-array extent when the kernel does not declare one
    /// itself (OpenCL passes `coeff` as a parameter).
    pub coeff_len: i64,
    /// Per-thread statement budget — bounds runaway mutants.
    pub step_budget: u64,
}

/// One global-memory access (element addresses).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct GlobalAccess {
    /// Source site of the access.
    pub pos: Pos,
    /// First element address.
    pub addr: i64,
    /// Consecutive elements touched (vector width; 1 for scalar).
    pub len: u8,
}

/// What went wrong, mapped to an `LNT-K…` code by the verifier.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum ViolationKind {
    /// Shared-memory access out of bounds (K001).
    SharedOob,
    /// Per-thread or constant array access out of bounds (K001).
    LocalOob,
    /// Global access outside the buffer, or a misaligned vector
    /// access (K002).
    GlobalOob,
    /// Threads of the block executed different barrier sequences
    /// (K003).
    BarrierDivergence,
    /// Conflicting same-phase shared-memory accesses (K004).
    SharedRace,
    /// The AST could not be evaluated — a construct outside the
    /// verified subset was reached dynamically (K006).
    Eval,
    /// Per-thread statement budget exhausted (K006).
    Budget,
}

/// A recorded violation.
#[derive(Clone, Debug)]
pub struct Violation {
    /// Category.
    pub kind: ViolationKind,
    /// Source site.
    pub pos: Pos,
    /// Human-readable specifics.
    pub detail: String,
}

/// Everything observed while executing one block.
#[derive(Clone, Debug, Default)]
pub struct BlockEvents {
    /// Global loads from `in`, all threads, program order per thread.
    pub loads: Vec<GlobalAccess>,
    /// Global stores to `out`.
    pub stores: Vec<GlobalAccess>,
    /// Violations, deduplicated by (kind, site), capped.
    pub violations: Vec<Violation>,
    /// Barrier sites executed by thread 0, in order.
    pub barrier_trace: Vec<Pos>,
}

const MAX_VIOLATIONS: usize = 256;

const TAG_GLOBAL: u64 = 1;
const TAG_COEFF: u64 = 2;
const TAG_CONST: u64 = 3;
const TAG_OP: u64 = 4;
const TAG_SHARED: u64 = 5;
const TAG_INT: u64 = 6;
const TAG_UNINIT: u64 = 7;
const TAG_NEG: u64 = 8;

fn mix(a: u64, b: u64) -> u64 {
    let mut z = a
        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
        .wrapping_add(b)
        .wrapping_add(0x632B_E593_86D1_931F);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

fn mix3(a: u64, b: u64, c: u64) -> u64 {
    mix(mix(a, b), c)
}

/// Runtime values.
#[derive(Clone, Copy, Debug)]
enum Val {
    Int(i64),
    Data(u64),
    Vec([u64; 4], u8),
    /// Pointer into shared memory: flat address plus the elements left
    /// in the row it was formed in (lane stores must not cross rows).
    Ptr {
        addr: i64,
        row_rem: i64,
    },
    /// 2-D view into a buffered pair (`tile_pair[sel]`): flat base,
    /// extent of one buffer, declared row length.
    View {
        base: i64,
        extent: i64,
        row_len: i64,
    },
}

struct LocalArr {
    dims: Vec<i64>,
    data: Vec<u64>,
}

struct RegionInfo {
    base: i64,
    dims: Vec<i64>,
    extent: i64,
}

#[derive(Default)]
struct Cell {
    write: Option<(u64, u32)>,
    read: Option<u32>,
}

struct ExecError {
    msg: String,
}

fn ee(msg: impl Into<String>) -> ExecError {
    ExecError { msg: msg.into() }
}

type EResult<T> = Result<T, ExecError>;

struct Thread {
    id: u32,
    scopes: Vec<HashMap<Sym, Val>>,
    locals: HashMap<Sym, LocalArr>,
    phase: u32,
    trace: Vec<Pos>,
    steps: u64,
    cur_pos: Pos,
}

struct Interp<'k> {
    k: &'k Kernel,
    env: LaunchEnv,
    bx: i64,
    by: i64,
    regions: HashMap<Sym, RegionInfo>,
    shared: HashMap<(u32, i64), Cell>,
    ev: BlockEvents,
    seen: HashSet<(ViolationKind, Pos)>,
    buf_len: i64,
    coeff_len: i64,
}

impl Interp<'_> {
    fn violate(&mut self, kind: ViolationKind, pos: Pos, detail: String) {
        if self.ev.violations.len() >= MAX_VIOLATIONS {
            return;
        }
        if self.seen.insert((kind, pos)) {
            self.ev.violations.push(Violation { kind, pos, detail });
        }
    }

    fn clamp(v: i64, hi: i64) -> i64 {
        v.clamp(0, hi.max(1) - 1)
    }

    /// Per-dimension bounds check; returns the clamped flat offset.
    fn checked_flat(
        &mut self,
        kind: ViolationKind,
        name: &str,
        idx: &[i64],
        dims: &[i64],
        pos: Pos,
    ) -> i64 {
        let mut flat = 0i64;
        if idx.len() != dims.len() {
            self.violate(
                kind,
                pos,
                format!("{name}: {} subscripts for {} dims", idx.len(), dims.len()),
            );
        }
        for (d, dim) in dims.iter().enumerate() {
            let i = idx.get(d).copied().unwrap_or(0);
            if i < 0 || i >= *dim {
                self.violate(
                    kind,
                    pos,
                    format!("{name}[…]: index {i} outside [0, {dim}) in dim {d}"),
                );
            }
            flat = flat * dim + Self::clamp(i, *dim);
        }
        flat
    }

    fn shared_read(&mut self, t: &Thread, addr: i64, pos: Pos) -> u64 {
        let cell = self.shared.entry((t.phase, addr)).or_default();
        let mut race = None;
        if let Some((_, wt)) = cell.write {
            if wt != t.id {
                race = Some(format!(
                    "thread {} reads a cell thread {wt} writes in the same barrier phase",
                    t.id
                ));
            }
        }
        if cell.read.is_none() {
            cell.read = Some(t.id);
        }
        if let Some(detail) = race {
            self.violate(ViolationKind::SharedRace, pos, detail);
        }
        mix3(TAG_SHARED, addr as u64, t.phase as u64)
    }

    fn shared_write(&mut self, t: &Thread, addr: i64, prov: u64, pos: Pos) {
        let cell = self.shared.entry((t.phase, addr)).or_default();
        let mut race = None;
        if let Some((p0, w0)) = cell.write {
            if p0 != prov {
                race = Some(format!(
                    "threads {w0} and {} write different values to one cell in one barrier phase",
                    t.id
                ));
            }
        }
        if let Some(rt) = cell.read {
            if rt != t.id {
                race = Some(format!(
                    "thread {} writes a cell thread {rt} reads in the same barrier phase",
                    t.id
                ));
            }
        }
        cell.write = Some((prov, t.id));
        if let Some(detail) = race {
            self.violate(ViolationKind::SharedRace, pos, detail);
        }
    }

    fn global_load(&mut self, addr: i64, len: u8, pos: Pos) -> u64 {
        if addr < 0 || addr + (len as i64) > self.buf_len {
            self.violate(
                ViolationKind::GlobalOob,
                pos,
                format!(
                    "load of {len} element(s) at {addr} outside buffer of {} elements",
                    self.buf_len
                ),
            );
            return mix(TAG_GLOBAL, u64::MAX);
        }
        self.ev.loads.push(GlobalAccess { pos, addr, len });
        mix(TAG_GLOBAL, addr as u64)
    }

    fn global_store(&mut self, addr: i64, pos: Pos) {
        if addr < 0 || addr >= self.buf_len {
            self.violate(
                ViolationKind::GlobalOob,
                pos,
                format!(
                    "store at {addr} outside buffer of {} elements",
                    self.buf_len
                ),
            );
            return;
        }
        self.ev.stores.push(GlobalAccess { pos, addr, len: 1 });
    }

    fn coeff_read(&mut self, idx: i64, pos: Pos) -> u64 {
        if idx < 0 || idx >= self.coeff_len {
            self.violate(
                ViolationKind::LocalOob,
                pos,
                format!("coeff[{idx}] outside [0, {})", self.coeff_len),
            );
        }
        mix(TAG_COEFF, Self::clamp(idx, self.coeff_len) as u64)
    }

    // ---- expression evaluation --------------------------------------

    fn lookup(&self, t: &Thread, s: Sym) -> Option<Val> {
        t.scopes.iter().rev().find_map(|sc| sc.get(&s).copied())
    }

    fn to_int(&self, v: Val) -> EResult<i64> {
        match v {
            Val::Int(n) => Ok(n),
            other => Err(ee(format!("expected an integer value, found {other:?}"))),
        }
    }

    fn to_data(&self, v: Val) -> EResult<u64> {
        match v {
            Val::Data(d) => Ok(d),
            Val::Int(n) => Ok(mix(TAG_INT, n as u64)),
            other => Err(ee(format!("expected a data value, found {other:?}"))),
        }
    }

    fn eval(&mut self, t: &mut Thread, e: &Expr) -> EResult<Val> {
        match e {
            Expr::Num(n) => Ok(Val::Int(*n)),
            Expr::Builtin(b) => Ok(Val::Int(match b {
                Builtin::Tx => t.id as i64 % self.env.block.0,
                Builtin::Ty => t.id as i64 / self.env.block.0,
                Builtin::Bx => self.bx,
                Builtin::By => self.by,
            })),
            Expr::Var(s) => self
                .lookup(t, *s)
                .ok_or_else(|| ee(format!("unknown variable `{}`", self.k.syms.name(*s)))),
            Expr::Neg(x) => match self.eval(t, x)? {
                Val::Int(n) => Ok(Val::Int(-n)),
                Val::Data(d) => Ok(Val::Data(mix(TAG_NEG, d))),
                other => Err(ee(format!("cannot negate {other:?}"))),
            },
            Expr::CastInt(x) => {
                let v = self.eval(t, x)?;
                let n = self.to_int(v)?;
                Ok(Val::Int(n))
            }
            Expr::CastData(x) => {
                let v = self.eval(t, x)?;
                match v {
                    Val::Data(d) => Ok(Val::Data(d)),
                    Val::Int(n) => Ok(Val::Data(mix(TAG_CONST, n as u64))),
                    other => Err(ee(format!("cannot cast {other:?} to data"))),
                }
            }
            Expr::Lane { var, lane } => match self.lookup(t, *var) {
                Some(Val::Vec(lanes, n)) => {
                    if *lane < n {
                        Ok(Val::Data(lanes[*lane as usize]))
                    } else {
                        Err(ee(format!("lane {lane} of a {n}-lane vector")))
                    }
                }
                _ => Err(ee(format!(
                    "`.{lane}` on non-vector `{}`",
                    self.k.syms.name(*var)
                ))),
            },
            Expr::VecLoad { index, lanes, pos } => {
                let v = self.eval(t, index)?;
                let addr = self.to_int(v)?;
                if addr % (*lanes as i64) != 0 {
                    self.violate(
                        ViolationKind::GlobalOob,
                        *pos,
                        format!("{lanes}-wide vector load at misaligned address {addr}"),
                    );
                }
                let base = self.global_load(addr, *lanes, *pos);
                let mut ls = [0u64; 4];
                for (i, l) in ls.iter_mut().enumerate().take(*lanes as usize) {
                    *l = if i == 0 {
                        base
                    } else {
                        mix(TAG_GLOBAL, (addr + i as i64) as u64)
                    };
                }
                Ok(Val::Vec(ls, *lanes))
            }
            Expr::Bin(op, a, b) => {
                let va = self.eval(t, a)?;
                let vb = self.eval(t, b)?;
                self.eval_bin(*op, va, vb)
            }
            Expr::Index { base, indices, pos } => {
                t.cur_pos = *pos;
                let idx = indices
                    .iter()
                    .map(|ix| {
                        let v = self.eval(t, ix)?;
                        self.to_int(v)
                    })
                    .collect::<EResult<Vec<i64>>>()?;
                self.read_index(t, *base, &idx, *pos)
            }
        }
    }

    fn eval_bin(&mut self, op: BinOp, a: Val, b: Val) -> EResult<Val> {
        if let (Val::Int(x), Val::Int(y)) = (a, b) {
            let r = match op {
                BinOp::Add => x.wrapping_add(y),
                BinOp::Sub => x.wrapping_sub(y),
                BinOp::Mul => x.wrapping_mul(y),
                BinOp::Div => {
                    if y == 0 {
                        return Err(ee("integer division by zero"));
                    }
                    x / y
                }
                BinOp::Rem => {
                    if y == 0 {
                        return Err(ee("integer remainder by zero"));
                    }
                    x % y
                }
                BinOp::And => x & y,
                BinOp::LAnd => ((x != 0) && (y != 0)) as i64,
                BinOp::Lt => (x < y) as i64,
                BinOp::Le => (x <= y) as i64,
                BinOp::Gt => (x > y) as i64,
                BinOp::Ge => (x >= y) as i64,
                BinOp::Eq => (x == y) as i64,
                BinOp::Ne => (x != y) as i64,
            };
            return Ok(Val::Int(r));
        }
        // Data arithmetic folds provenance; comparisons and logic on
        // data values are outside the subset (they would make control
        // flow data-dependent).
        match op {
            BinOp::Add | BinOp::Sub | BinOp::Mul | BinOp::Div => {
                let x = self.to_data(a)?;
                let y = self.to_data(b)?;
                Ok(Val::Data(mix3(TAG_OP, mix(op_code(op), x), y)))
            }
            _ => Err(ee("comparison or logic on data values")),
        }
    }

    fn read_index(&mut self, t: &mut Thread, base: Base, idx: &[i64], pos: Pos) -> EResult<Val> {
        match base {
            Base::GlobalIn => {
                if idx.len() != 1 {
                    return Err(ee("`in` takes exactly one subscript"));
                }
                Ok(Val::Data(self.global_load(idx[0], 1, pos)))
            }
            Base::GlobalOut => Err(ee("reads from `out` are outside the subset")),
            Base::Coeff => {
                if idx.len() != 1 {
                    return Err(ee("coefficient array takes one subscript"));
                }
                Ok(Val::Data(self.coeff_read(idx[0], pos)))
            }
            Base::Named(s) => {
                if let Some(v) = self.lookup(t, s) {
                    let addr = self.ptr_addr(s, v, idx, pos)?;
                    return Ok(Val::Data(self.shared_read(t, addr, pos)));
                }
                if let Some(arr) = t.locals.get(&s) {
                    let dims = arr.dims.clone();
                    let flat = self.checked_flat(
                        ViolationKind::LocalOob,
                        self.k.syms.name(s),
                        idx,
                        &dims,
                        pos,
                    );
                    return Ok(Val::Data(t.locals[&s].data[flat as usize]));
                }
                if let Some(region) = self.regions.get(&s) {
                    let (rb, rd) = (region.base, region.dims.clone());
                    let flat = self.checked_flat(
                        ViolationKind::SharedOob,
                        self.k.syms.name(s),
                        idx,
                        &rd,
                        pos,
                    );
                    return Ok(Val::Data(self.shared_read(t, rb + flat, pos)));
                }
                Err(ee(format!("unknown array `{}`", self.k.syms.name(s))))
            }
        }
    }

    /// Resolve an index through a `Ptr`/`View` scope value to a flat
    /// shared address, with bounds checks.
    fn ptr_addr(&mut self, s: Sym, v: Val, idx: &[i64], pos: Pos) -> EResult<i64> {
        let name = self.k.syms.name(s).to_string();
        match v {
            Val::Ptr { addr, row_rem } => {
                if idx.len() != 1 {
                    return Err(ee(format!("pointer `{name}` takes one subscript")));
                }
                let k = idx[0];
                if k < 0 || k >= row_rem {
                    self.violate(
                        ViolationKind::SharedOob,
                        pos,
                        format!("{name}[{k}]: lane store crosses a shared-memory row ({row_rem} elements remain)"),
                    );
                }
                Ok(addr + Self::clamp(k, row_rem))
            }
            Val::View {
                base,
                extent,
                row_len,
            } => {
                if idx.len() != 2 {
                    return Err(ee(format!("view `{name}` takes two subscripts")));
                }
                let (i0, i1) = (idx[0], idx[1]);
                if i1 < 0 || i1 >= row_len {
                    self.violate(
                        ViolationKind::SharedOob,
                        pos,
                        format!("{name}[…][{i1}]: column outside [0, {row_len})"),
                    );
                }
                let flat = i0 * row_len + Self::clamp(i1, row_len);
                if flat < 0 || flat >= extent {
                    self.violate(
                        ViolationKind::SharedOob,
                        pos,
                        format!(
                            "{name}[{i0}][{i1}]: outside the selected buffer of {extent} elements"
                        ),
                    );
                }
                Ok(base + Self::clamp(flat, extent))
            }
            other => Err(ee(format!("`{name}` ({other:?}) is not indexable"))),
        }
    }

    // ---- statements --------------------------------------------------

    fn exec_block(&mut self, t: &mut Thread, body: &[Stmt]) -> EResult<()> {
        t.scopes.push(HashMap::new());
        let r = self.exec_stmts(t, body);
        t.scopes.pop();
        r
    }

    fn exec_stmts(&mut self, t: &mut Thread, body: &[Stmt]) -> EResult<()> {
        for s in body {
            self.exec_stmt(t, s)?;
        }
        Ok(())
    }

    fn exec_stmt(&mut self, t: &mut Thread, s: &Stmt) -> EResult<()> {
        t.steps += 1;
        if t.steps > self.env.step_budget {
            return Err(ee("per-thread statement budget exhausted"));
        }
        match s {
            Stmt::Nop => Ok(()),
            Stmt::Barrier { pos } => {
                t.phase += 1;
                t.trace.push(*pos);
                Ok(())
            }
            Stmt::DeclScalar { name, init } => {
                let v = self.eval(t, init)?;
                t.scopes.last_mut().unwrap().insert(*name, v);
                Ok(())
            }
            Stmt::DeclArray { name, dims } => {
                let extent: i64 = dims.iter().product();
                if extent <= 0 || extent > 1 << 20 {
                    return Err(ee(format!(
                        "local array `{}` has implausible extent {extent}",
                        self.k.syms.name(*name)
                    )));
                }
                let data = (0..extent)
                    .map(|i| mix3(TAG_UNINIT, *name as u64, i as u64))
                    .collect();
                t.locals.insert(
                    *name,
                    LocalArr {
                        dims: dims.clone(),
                        data,
                    },
                );
                Ok(())
            }
            Stmt::DeclPtr {
                name,
                base,
                indices,
                pos,
            } => {
                t.cur_pos = *pos;
                let idx = indices
                    .iter()
                    .map(|ix| {
                        let v = self.eval(t, ix)?;
                        self.to_int(v)
                    })
                    .collect::<EResult<Vec<i64>>>()?;
                let v = if let Some(view) = self.lookup(t, *base) {
                    match view {
                        Val::View {
                            base: vb,
                            extent,
                            row_len,
                        } => {
                            if idx.len() != 2 {
                                return Err(ee("pointer into a view takes two subscripts"));
                            }
                            let flat = idx[0] * row_len + idx[1];
                            if flat < 0 || flat >= extent || idx[1] < 0 || idx[1] >= row_len {
                                self.violate(
                                    ViolationKind::SharedOob,
                                    *pos,
                                    format!(
                                        "&{}[{}][{}] outside the selected buffer",
                                        self.k.syms.name(*base),
                                        idx[0],
                                        idx[1]
                                    ),
                                );
                            }
                            Val::Ptr {
                                addr: vb + Self::clamp(flat, extent),
                                row_rem: (row_len - Self::clamp(idx[1], row_len)).max(1),
                            }
                        }
                        other => {
                            return Err(ee(format!("cannot take a row pointer into {other:?}")))
                        }
                    }
                } else if let Some(region) = self.regions.get(base) {
                    let (rb, rd) = (region.base, region.dims.clone());
                    let flat = self.checked_flat(
                        ViolationKind::SharedOob,
                        self.k.syms.name(*base),
                        &idx,
                        &rd,
                        *pos,
                    );
                    let last_dim = *rd.last().unwrap_or(&1);
                    let last_idx = Self::clamp(idx.last().copied().unwrap_or(0), last_dim);
                    Val::Ptr {
                        addr: rb + flat,
                        row_rem: (last_dim - last_idx).max(1),
                    }
                } else {
                    return Err(ee(format!(
                        "`&{}[…]`: unknown shared array",
                        self.k.syms.name(*base)
                    )));
                };
                t.scopes.last_mut().unwrap().insert(*name, v);
                Ok(())
            }
            Stmt::DeclAlias {
                name,
                base,
                index,
                row_len,
                pos,
            } => {
                t.cur_pos = *pos;
                let region = match self.regions.get(base) {
                    Some(r) => (r.base, r.dims.clone(), r.extent),
                    None => {
                        return Err(ee(format!(
                            "alias base `{}` is not a shared array",
                            self.k.syms.name(*base)
                        )))
                    }
                };
                let (rb, rd, _extent) = region;
                if rd.len() != 3 {
                    return Err(ee("alias base must be a [bufs][rows][cols] array"));
                }
                let v = self.eval(t, index)?;
                let sel = self.to_int(v)?;
                if sel < 0 || sel >= rd[0] {
                    self.violate(
                        ViolationKind::SharedOob,
                        *pos,
                        format!("buffer selector {sel} outside [0, {})", rd[0]),
                    );
                }
                let per_buf = rd[1] * rd[2];
                t.scopes.last_mut().unwrap().insert(
                    *name,
                    Val::View {
                        base: rb + Self::clamp(sel, rd[0]) * per_buf,
                        extent: per_buf,
                        row_len: *row_len,
                    },
                );
                Ok(())
            }
            Stmt::If { cond, body } => {
                let v = self.eval(t, cond)?;
                if self.to_int(v)? != 0 {
                    self.exec_block(t, body)?;
                }
                Ok(())
            }
            Stmt::For {
                var,
                init,
                cond,
                step,
                body,
            } => {
                let v0 = self.eval(t, init)?;
                t.scopes.push(HashMap::new());
                t.scopes.last_mut().unwrap().insert(*var, v0);
                let r = self.run_loop(t, *var, cond, step, body);
                t.scopes.pop();
                r
            }
            Stmt::Assign { lhs, op, rhs, pos } => {
                t.cur_pos = *pos;
                let rv = self.eval(t, rhs)?;
                self.assign(t, lhs, *op, rv, *pos)
            }
        }
    }

    fn run_loop(
        &mut self,
        t: &mut Thread,
        var: Sym,
        cond: &Expr,
        step: &Step,
        body: &[Stmt],
    ) -> EResult<()> {
        loop {
            t.steps += 1;
            if t.steps > self.env.step_budget {
                return Err(ee("per-thread statement budget exhausted in a loop"));
            }
            let c = self.eval(t, cond)?;
            if self.to_int(c)? == 0 {
                return Ok(());
            }
            self.exec_block(t, body)?;
            let cur = match self.lookup(t, var) {
                Some(Val::Int(n)) => n,
                _ => return Err(ee("loop variable lost its integer value")),
            };
            let next = match step {
                Step::Inc => cur + 1,
                Step::Dec => cur - 1,
                Step::AddAssign(e) => {
                    let v = self.eval(t, e)?;
                    cur + self.to_int(v)?
                }
            };
            // The loop scope is the outermost of any block scopes the
            // body pushed and popped; the variable lives there.
            for sc in t.scopes.iter_mut().rev() {
                if let Some(slot) = sc.get_mut(&var) {
                    *slot = Val::Int(next);
                    break;
                }
            }
        }
    }

    fn assign(
        &mut self,
        t: &mut Thread,
        lhs: &LValue,
        op: AssignOp,
        rv: Val,
        pos: Pos,
    ) -> EResult<()> {
        match lhs {
            LValue::Var(s) => {
                let new = match op {
                    AssignOp::Set => rv,
                    AssignOp::Add => {
                        let old = self.lookup(t, *s).ok_or_else(|| {
                            ee(format!("unknown variable `{}`", self.k.syms.name(*s)))
                        })?;
                        match (old, rv) {
                            (Val::Int(a), Val::Int(b)) => Val::Int(a.wrapping_add(b)),
                            (a, b) => {
                                let x = self.to_data(a)?;
                                let y = self.to_data(b)?;
                                Val::Data(mix3(TAG_OP, mix(op_code(BinOp::Add), x), y))
                            }
                        }
                    }
                };
                for sc in t.scopes.iter_mut().rev() {
                    if let Some(slot) = sc.get_mut(s) {
                        *slot = new;
                        return Ok(());
                    }
                }
                Err(ee(format!(
                    "assignment to undeclared `{}`",
                    self.k.syms.name(*s)
                )))
            }
            LValue::Index { base, indices } => {
                let idx = indices
                    .iter()
                    .map(|ix| {
                        let v = self.eval(t, ix)?;
                        self.to_int(v)
                    })
                    .collect::<EResult<Vec<i64>>>()?;
                if op != AssignOp::Set {
                    // `+=` is admitted only on per-thread local arrays
                    // (the register-pipeline update in the in-plane
                    // kernels): the desugared read-modify-write needs
                    // no race bookkeeping there. Shared and global
                    // memory stay outside the subset.
                    if let Base::Named(s) = base {
                        if self.lookup(t, *s).is_none() && t.locals.contains_key(s) {
                            let dims = t.locals[s].dims.clone();
                            let flat = self.checked_flat(
                                ViolationKind::LocalOob,
                                self.k.syms.name(*s),
                                &idx,
                                &dims,
                                pos,
                            );
                            let old = t.locals[s].data[flat as usize];
                            let add = self.to_data(rv)?;
                            let mixed = mix3(TAG_OP, mix(op_code(BinOp::Add), old), add);
                            t.locals.get_mut(s).unwrap().data[flat as usize] = mixed;
                            return Ok(());
                        }
                    }
                    return Err(ee("compound assignment to memory is outside the subset"));
                }
                match base {
                    Base::GlobalIn => Err(ee("stores to `in` are outside the subset")),
                    Base::Coeff => {
                        Err(ee("stores to the coefficient array are outside the subset"))
                    }
                    Base::GlobalOut => {
                        if idx.len() != 1 {
                            return Err(ee("`out` takes exactly one subscript"));
                        }
                        let _ = self.to_data(rv)?;
                        self.global_store(idx[0], pos);
                        Ok(())
                    }
                    Base::Named(s) => {
                        let prov = self.to_data(rv)?;
                        if let Some(v) = self.lookup(t, *s) {
                            let addr = self.ptr_addr(*s, v, &idx, pos)?;
                            self.shared_write(t, addr, prov, pos);
                            return Ok(());
                        }
                        if t.locals.contains_key(s) {
                            let dims = t.locals[s].dims.clone();
                            let flat = self.checked_flat(
                                ViolationKind::LocalOob,
                                self.k.syms.name(*s),
                                &idx,
                                &dims,
                                pos,
                            );
                            t.locals.get_mut(s).unwrap().data[flat as usize] = prov;
                            return Ok(());
                        }
                        if let Some(region) = self.regions.get(s) {
                            let (rb, rd) = (region.base, region.dims.clone());
                            let flat = self.checked_flat(
                                ViolationKind::SharedOob,
                                self.k.syms.name(*s),
                                &idx,
                                &rd,
                                pos,
                            );
                            self.shared_write(t, rb + flat, prov, pos);
                            return Ok(());
                        }
                        Err(ee(format!("unknown array `{}`", self.k.syms.name(*s))))
                    }
                }
            }
        }
    }
}

fn op_code(op: BinOp) -> u64 {
    match op {
        BinOp::Add => 11,
        BinOp::Sub => 12,
        BinOp::Mul => 13,
        BinOp::Div => 14,
        _ => 15,
    }
}

/// Execute every thread of block `(bx, by)` and collect its events.
pub fn run_block(kernel: &Kernel, env: &LaunchEnv, bx: i64, by: i64) -> BlockEvents {
    let mut regions = HashMap::new();
    let mut base = 0i64;
    for d in &kernel.shared {
        let extent: i64 = d.dims.iter().product::<i64>().max(0);
        regions.insert(
            d.name,
            RegionInfo {
                base,
                dims: d.dims.clone(),
                extent,
            },
        );
        base += extent.max(1);
    }
    let coeff_len = kernel.coeff_len.unwrap_or(env.coeff_len);
    let mut it = Interp {
        k: kernel,
        env: *env,
        bx,
        by,
        regions,
        shared: HashMap::new(),
        ev: BlockEvents::default(),
        seen: HashSet::new(),
        buf_len: env.pstride * env.nz,
        coeff_len,
    };

    // Bind the scalar kernel parameters threads read by name.
    let params: [(&str, i64); 5] = [
        ("lx", env.nx),
        ("ly", env.ny),
        ("lz", env.nz),
        ("stride", env.stride),
        ("pstride", env.pstride),
    ];

    let nthreads = (env.block.0 * env.block.1).max(0) as u32;
    let mut canon_trace: Option<Vec<Pos>> = None;
    let mut diverged = false;
    for id in 0..nthreads {
        let mut scope0 = HashMap::new();
        for (name, v) in params {
            if let Some(s) = kernel.syms.lookup(name) {
                scope0.insert(s, Val::Int(v));
            }
        }
        let mut t = Thread {
            id,
            scopes: vec![scope0],
            locals: HashMap::new(),
            phase: 0,
            trace: Vec::new(),
            steps: 0,
            cur_pos: Pos { line: 1, col: 1 },
        };
        let r = it.exec_stmts(&mut t, &kernel.body);
        if let Err(e) = r {
            let kind = if e.msg.contains("budget") {
                ViolationKind::Budget
            } else {
                ViolationKind::Eval
            };
            it.violate(kind, t.cur_pos, format!("thread {id}: {}", e.msg));
        }
        match &canon_trace {
            None => {
                it.ev.barrier_trace = t.trace.clone();
                canon_trace = Some(t.trace);
            }
            Some(c) => {
                if !diverged && *c != t.trace {
                    diverged = true;
                    let pos = c
                        .iter()
                        .zip(&t.trace)
                        .find(|(a, b)| a != b)
                        .map(|(a, _)| *a)
                        .or_else(|| c.get(t.trace.len()).copied())
                        .or_else(|| t.trace.get(c.len()).copied())
                        .unwrap_or(Pos { line: 1, col: 1 });
                    it.violate(
                        ViolationKind::BarrierDivergence,
                        pos,
                        format!(
                            "thread {id} executed {} barrier(s), thread 0 executed {}; first differing site marked",
                            t.trace.len(),
                            c.len()
                        ),
                    );
                }
            }
        }
    }
    it.ev
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernelir::parser::parse_kernel;

    fn env2() -> LaunchEnv {
        LaunchEnv {
            block: (2, 1),
            grid: (1, 1),
            nx: 2,
            ny: 1,
            nz: 1,
            stride: 2,
            pstride: 2,
            coeff_len: 1,
            step_budget: 10_000,
        }
    }

    fn run(src: &str, env: &LaunchEnv) -> BlockEvents {
        let k = parse_kernel(src).expect("parse");
        run_block(&k, env, 0, 0)
    }

    #[test]
    fn clean_staged_copy() {
        let ev = run(
            "void k(const float* in, float* out) {\n\
             __shared__ float s[2];\n\
             const int tx = threadIdx.x;\n\
             s[tx] = in[tx];\n\
             __syncthreads();\n\
             out[tx] = s[tx];\n\
             }",
            &env2(),
        );
        assert!(ev.violations.is_empty(), "{:?}", ev.violations);
        assert_eq!(ev.loads.len(), 2);
        assert_eq!(ev.stores.len(), 2);
        assert_eq!(ev.barrier_trace.len(), 1);
    }

    #[test]
    fn missing_barrier_is_a_race() {
        let ev = run(
            "void k(const float* in, float* out) {\n\
             __shared__ float s[2];\n\
             const int tx = threadIdx.x;\n\
             s[tx] = in[tx];\n\
             out[tx] = s[1 - tx];\n\
             }",
            &env2(),
        );
        assert!(ev
            .violations
            .iter()
            .any(|v| v.kind == ViolationKind::SharedRace));
    }

    #[test]
    fn shared_oob_is_flagged() {
        let ev = run(
            "void k(const float* in, float* out) {\n\
             __shared__ float s[2];\n\
             const int tx = threadIdx.x;\n\
             s[tx + 2] = in[tx];\n\
             }",
            &env2(),
        );
        assert!(ev
            .violations
            .iter()
            .any(|v| v.kind == ViolationKind::SharedOob));
    }

    #[test]
    fn global_oob_is_flagged() {
        let ev = run(
            "void k(const float* in, float* out) {\n\
             const int tx = threadIdx.x;\n\
             out[tx + 100] = in[tx];\n\
             }",
            &env2(),
        );
        assert!(ev
            .violations
            .iter()
            .any(|v| v.kind == ViolationKind::GlobalOob));
    }

    #[test]
    fn divergent_barrier_is_flagged() {
        let ev = run(
            "void k(const float* in, float* out) {\n\
             const int tx = threadIdx.x;\n\
             if (tx < 1) {\n\
             __syncthreads();\n\
             }\n\
             out[tx] = in[tx];\n\
             }",
            &env2(),
        );
        assert!(ev
            .violations
            .iter()
            .any(|v| v.kind == ViolationKind::BarrierDivergence));
    }

    #[test]
    fn runaway_loop_hits_the_budget() {
        let ev = run(
            "void k(const float* in, float* out) {\n\
             for (int i = 0; i >= 0; i += 0) {\n\
             out[0] = in[0];\n\
             }\n\
             }",
            &env2(),
        );
        assert!(ev
            .violations
            .iter()
            .any(|v| v.kind == ViolationKind::Budget));
    }

    #[test]
    fn misaligned_vector_load_is_flagged() {
        let src = "void k(const float* in, float* out) {\n\
             __shared__ float s[8];\n\
             const float4 v = *reinterpret_cast<const float4*>(&in[1]);\n\
             float* dst = &s[0];\n\
             dst[0] = v.x;\n\
             dst[1] = v.y;\n\
             dst[2] = v.z;\n\
             dst[3] = v.w;\n\
             }";
        let mut env = env2();
        env.block = (1, 1);
        env.nx = 8;
        env.stride = 8;
        env.pstride = 8;
        let ev = run(src, &env);
        assert!(ev
            .violations
            .iter()
            .any(|v| v.kind == ViolationKind::GlobalOob));
    }

    #[test]
    fn same_value_restage_is_benign() {
        // Both threads stage in[0] into s[0]: equal provenance, no race.
        let ev = run(
            "void k(const float* in, float* out) {\n\
             __shared__ float s[2];\n\
             const int tx = threadIdx.x;\n\
             s[0] = in[0];\n\
             __syncthreads();\n\
             out[tx] = s[0];\n\
             }",
            &env2(),
        );
        assert!(ev.violations.is_empty(), "{:?}", ev.violations);
    }

    #[test]
    fn double_write_with_different_value_races() {
        // One thread writes two different loads to the same cell.
        let mut env = env2();
        env.block = (1, 1);
        let ev = run(
            "void k(const float* in, float* out) {\n\
             __shared__ float s[2];\n\
             s[0] = in[0];\n\
             s[0] = in[1];\n\
             }",
            &env,
        );
        assert!(ev
            .violations
            .iter()
            .any(|v| v.kind == ViolationKind::SharedRace));
    }
}
