//! Explained resource feasibility: the §IV-C constraints as coded
//! diagnostics.
//!
//! This module is the analyzer behind `ParameterSpace::feasible` in
//! `stencil-autotune`: the boolean verdict there is now a shim over
//! [`explain_feasibility`], so every rejection carries *which* constraint
//! failed and by how much. The checks (and their order) mirror the
//! historical boolean exactly:
//!
//! 1. `TX` is a multiple of a half-warp (`LNT-R001`);
//! 2. `TX × TY` within the threads-per-block limit (`LNT-R002`);
//! 3. the shared staging slab fits the per-SM capacity (`LNT-R003`);
//! 4. `TY·RY` divides `LY` (`LNT-R004`);
//! 5. the tile fits the plane (`LNT-R005`);
//! 6. the register estimate fits the per-thread cap (`LNT-R006`);
//! 7. the routine's own [`inplane_core::Routine::supports`] verdict —
//!    grid large enough for the sweep (`LNT-R007`), and for the
//!    double-buffered routine a staging *pair* that fits the per-SM
//!    capacity (`LNT-R008`). The core-side `RoutineDiag` is converted
//!    into a first-class catalog diagnostic here.
//!
//! One warning rides along: blocks smaller than a warp (`LNT-R101`) are
//! legal but excluded from the paper's enumeration — a warning, not an
//! error, so the boolean shim stays bit-identical to the old predicate.

use crate::diag::{has_errors, Diagnostic};
use gpu_sim::{DeviceSpec, GridDims};
use inplane_core::resources::{regs_per_thread, smem_bytes};
use inplane_core::{KernelSpec, LaunchConfig, ProblemSpec};

/// Run every feasibility check and return all findings (empty = clean).
pub fn explain_feasibility(
    device: &DeviceSpec,
    kernel: &KernelSpec,
    dims: &GridDims,
    c: &LaunchConfig,
) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    let half_warp = device.half_wavefront();

    // (i) TX multiple of a half-warp.
    if !c.tx.is_multiple_of(half_warp) {
        diags.push(
            Diagnostic::error(
                "LNT-R001",
                format!(
                    "TX = {} is not a multiple of the half-warp {half_warp}",
                    c.tx
                ),
            )
            .with("tx", c.tx)
            .with("half_warp", half_warp),
        );
    }

    // (ii) thread limit.
    let threads = c.threads();
    if threads > device.max_threads_per_block {
        diags.push(
            Diagnostic::error(
                "LNT-R002",
                format!(
                    "block of {threads} threads exceeds the limit by {}",
                    threads - device.max_threads_per_block
                ),
            )
            .with("threads", threads)
            .with("limit", device.max_threads_per_block)
            .with("excess", threads - device.max_threads_per_block),
        );
    }

    // (iii) shared-memory limit.
    let smem = smem_bytes(kernel, c);
    if smem > device.smem_per_sm {
        diags.push(
            Diagnostic::error(
                "LNT-R003",
                format!(
                    "staging slab of {smem} B exceeds the per-SM capacity by {} B",
                    smem - device.smem_per_sm
                ),
            )
            .with("smem_bytes", smem)
            .with("limit", device.smem_per_sm)
            .with("excess", smem - device.smem_per_sm),
        );
    }

    // (iv) TY·RY divides LY.
    if !dims.ly.is_multiple_of(c.tile_y()) {
        diags.push(
            Diagnostic::error(
                "LNT-R004",
                format!(
                    "TY*RY = {} does not divide LY = {} (remainder {})",
                    c.tile_y(),
                    dims.ly,
                    dims.ly % c.tile_y()
                ),
            )
            .with("tile_y", c.tile_y())
            .with("ly", dims.ly)
            .with("remainder", dims.ly % c.tile_y()),
        );
    }

    // Tile must fit the plane.
    if c.tile_x() > dims.lx || c.tile_y() > dims.ly {
        diags.push(
            Diagnostic::error(
                "LNT-R005",
                format!(
                    "tile {}x{} exceeds the {}x{} plane",
                    c.tile_x(),
                    c.tile_y(),
                    dims.lx,
                    dims.ly
                ),
            )
            .with("tile_x", c.tile_x())
            .with("tile_y", c.tile_y())
            .with("lx", dims.lx)
            .with("ly", dims.ly),
        );
    }

    // Register estimate must compile.
    let regs = regs_per_thread(kernel, c);
    if regs > device.max_regs_per_thread {
        diags.push(
            Diagnostic::error(
                "LNT-R006",
                format!(
                    "register estimate {regs} exceeds the per-thread cap by {}",
                    regs - device.max_regs_per_thread
                ),
            )
            .with("regs_per_thread", regs)
            .with("limit", device.max_regs_per_thread)
            .with("excess", regs - device.max_regs_per_thread),
        );
    }

    // The routine's own legality verdict: core-side `RoutineDiag`s
    // (LNT-R007 grid-too-small, LNT-R008 staging-pair capacity) become
    // catalog diagnostics.
    let problem = ProblemSpec {
        radius: kernel.radius,
        elem_bytes: kernel.elem_bytes,
        config: *c,
        dims: (dims.lx, dims.ly, dims.lz),
        smem_limit: Some(device.smem_per_sm),
    };
    if let Err(rd) = kernel.method.routine().supports(&problem) {
        diags.push(Diagnostic::error(rd.code, rd.message));
    }

    // Enumeration convention (not a constraint): sub-warp blocks waste
    // issue slots and are skipped by the paper's search.
    if threads < device.warp_size {
        diags.push(
            Diagnostic::warning(
                "LNT-R101",
                format!(
                    "block of {threads} threads is smaller than one {}-lane warp",
                    device.warp_size
                ),
            )
            .with("threads", threads)
            .with("warp_size", device.warp_size),
        );
    }

    diags
}

/// Boolean shim: feasible iff the analyzer emits no error-severity
/// diagnostic. This is what `ParameterSpace::feasible` delegates to.
pub fn is_feasible(
    device: &DeviceSpec,
    kernel: &KernelSpec,
    dims: &GridDims,
    c: &LaunchConfig,
) -> bool {
    !has_errors(&explain_feasibility(device, kernel, dims, c))
}

#[cfg(test)]
mod tests {
    use super::*;
    use inplane_core::{Method, Variant};
    use stencil_grid::Precision;

    fn kernel(order: usize) -> KernelSpec {
        KernelSpec::star_order(
            Method::InPlane(Variant::FullSlice),
            order,
            Precision::Single,
        )
    }

    fn codes(diags: &[Diagnostic]) -> Vec<&'static str> {
        diags.iter().map(|d| d.code).collect()
    }

    #[test]
    fn clean_config_has_no_diagnostics() {
        let d = explain_feasibility(
            &DeviceSpec::gtx580(),
            &kernel(4),
            &GridDims::paper(),
            &LaunchConfig::new(64, 4, 1, 2),
        );
        assert!(d.is_empty(), "unexpected: {d:?}");
    }

    #[test]
    fn half_warp_violation_is_r001() {
        let d = explain_feasibility(
            &DeviceSpec::gtx580(),
            &kernel(2),
            &GridDims::paper(),
            &LaunchConfig::new(24, 4, 1, 1),
        );
        assert_eq!(codes(&d), vec!["LNT-R001"]);
        assert!(d[0]
            .context
            .iter()
            .any(|(k, v)| *k == "half_warp" && v == "16"));
    }

    #[test]
    fn thread_limit_violation_is_r002_with_excess() {
        let d = explain_feasibility(
            &DeviceSpec::gtx580(),
            &kernel(2),
            &GridDims::paper(),
            &LaunchConfig::new(512, 4, 1, 1),
        );
        assert!(codes(&d).contains(&"LNT-R002"));
        let r002 = d.iter().find(|x| x.code == "LNT-R002").unwrap();
        assert!(r002
            .context
            .iter()
            .any(|(k, v)| *k == "excess" && v == "1024"));
    }

    #[test]
    fn smem_violation_is_r003() {
        // A 512×16-tile order-12 slab is 524x28x4 B = 58688 B > 48 KB.
        let d = explain_feasibility(
            &DeviceSpec::gtx580(),
            &kernel(12),
            &GridDims::paper(),
            &LaunchConfig::new(512, 2, 1, 8),
        );
        assert!(codes(&d).contains(&"LNT-R003"));
    }

    #[test]
    fn ty_ry_division_is_r004() {
        let d = explain_feasibility(
            &DeviceSpec::gtx580(),
            &kernel(2),
            &GridDims::new(512, 96, 64),
            &LaunchConfig::new(32, 5, 1, 1),
        );
        assert_eq!(codes(&d), vec!["LNT-R004"]);
    }

    #[test]
    fn oversized_tile_is_r005() {
        let d = explain_feasibility(
            &DeviceSpec::gtx580(),
            &kernel(2),
            &GridDims::new(64, 64, 64),
            &LaunchConfig::new(128, 1, 1, 1),
        );
        assert!(codes(&d).contains(&"LNT-R005"));
    }

    #[test]
    fn register_cap_is_r006() {
        let k = KernelSpec::star_order(Method::InPlane(Variant::FullSlice), 12, Precision::Double);
        let d = explain_feasibility(
            &DeviceSpec::gtx580(),
            &k,
            &GridDims::paper(),
            &LaunchConfig::new(16, 8, 2, 2),
        );
        assert!(codes(&d).contains(&"LNT-R006"));
    }

    #[test]
    fn subwarp_block_is_warning_only() {
        let d = explain_feasibility(
            &DeviceSpec::gtx580(),
            &kernel(2),
            &GridDims::paper(),
            &LaunchConfig::new(16, 1, 1, 1),
        );
        assert_eq!(codes(&d), vec!["LNT-R101"]);
        assert!(!has_errors(&d), "R101 must not reject the config");
        assert!(is_feasible(
            &DeviceSpec::gtx580(),
            &kernel(2),
            &GridDims::paper(),
            &LaunchConfig::new(16, 1, 1, 1)
        ));
    }

    #[test]
    fn undersized_grid_is_r007_for_every_routine() {
        for routine in inplane_core::registry() {
            let k = KernelSpec::star_order(routine.method(), 4, Precision::Single);
            let d = explain_feasibility(
                &DeviceSpec::gtx580(),
                &k,
                &GridDims::new(64, 64, 3), // nz = 3 <= 2r = 4
                &LaunchConfig::new(32, 4, 1, 1),
            );
            assert!(
                codes(&d).contains(&"LNT-R007"),
                "{:?}: {d:?}",
                routine.method()
            );
        }
    }

    #[test]
    fn double_buffered_pair_over_capacity_is_r008() {
        let k = KernelSpec::star_order(
            Method::InPlane(Variant::DoubleBuffered),
            12,
            Precision::Single,
        );
        let d = explain_feasibility(
            &DeviceSpec::gtx580(),
            &k,
            &GridDims::paper(),
            &LaunchConfig::new(512, 2, 1, 8),
        );
        let c = codes(&d);
        assert!(c.contains(&"LNT-R008"), "{d:?}");
        // The generic slab check fires too: the resource model already
        // prices the doubled footprint.
        assert!(c.contains(&"LNT-R003"), "{d:?}");
        // The single-buffer full-slice twin at the same config draws
        // R003 only — R008 is the pair-specific verdict.
        let fs = KernelSpec::star_order(Method::InPlane(Variant::FullSlice), 12, Precision::Single);
        let d = explain_feasibility(
            &DeviceSpec::gtx580(),
            &fs,
            &GridDims::paper(),
            &LaunchConfig::new(512, 2, 1, 8),
        );
        assert!(!codes(&d).contains(&"LNT-R008"), "{d:?}");
    }

    #[test]
    fn multiple_failures_all_reported() {
        // TX = 24 breaks half-warp; 24×48 = 1152 breaks the thread limit.
        let d = explain_feasibility(
            &DeviceSpec::gtx580(),
            &kernel(2),
            &GridDims::paper(),
            &LaunchConfig::new(24, 48, 1, 1),
        );
        let c = codes(&d);
        assert!(c.contains(&"LNT-R001"));
        assert!(c.contains(&"LNT-R002"));
    }
}
