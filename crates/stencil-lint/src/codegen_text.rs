//! Text-level lint over generated CUDA/OpenCL kernel source.
//!
//! The plan-level passes prove properties of the *abstract* schedule;
//! this pass re-checks the ones that must survive into the emitted text:
//!
//! * `LNT-T001` — exactly the routine's proven barrier count per plane
//!   (`__syncthreads()` in CUDA, `barrier(CLK_LOCAL_MEM_FENCE)` in
//!   OpenCL): two for the single-buffer routines, one for the
//!   double-buffered routine whose staging pair absorbs the reuse
//!   barrier;
//! * `LNT-T002` — balanced braces (a malformed emitter never compiles);
//! * `LNT-T003` — the `#define` constants agree with the launch
//!   configuration, radius and vector width the kernel was generated
//!   for;
//! * `LNT-T004` — the staged halo index cannot exceed the shared tile
//!   width: for every vector-alignment lead `0 ≤ lead < VW`, the staged
//!   span `ceil((lead + WX + 2R) / VW) · VW` fits `SMEM_W`;
//! * `LNT-T005` — the build metadata's declared shared-memory bytes
//!   agree with the `SMEM_W × SMEM_H` formula in the source;
//! * `LNT-T101` (warning) — the static tile including alignment slack
//!   exceeds the device's per-SM capacity. A warning, not an error:
//!   configurations near the 48 KB edge are model-feasible (the §IV-C
//!   constraint uses the slack-free slab) yet their generated kernel
//!   would fail to launch — exactly the kind of gap a lint exists to
//!   surface without changing the tuning-space semantics.
//!
//! The `#define`s are actually *parsed and evaluated* (a tiny integer
//! expression evaluator over `+ - * /` and parentheses), so tampering
//! with derived macros like `SMEM_W` is caught, not just literal drift.

use crate::diag::Diagnostic;
use gpu_sim::DeviceSpec;
use inplane_core::resources::vector_width;
use inplane_core::{KernelSpec, LaunchConfig};
use std::collections::HashMap;
use stencil_codegen::GeneratedKernel;

/// CUDA's per-plane barrier token.
pub const CUDA_BARRIER: &str = "__syncthreads()";
/// OpenCL's per-plane barrier token.
pub const OPENCL_BARRIER: &str = "barrier(CLK_LOCAL_MEM_FENCE)";

/// Count `needle` as a token sequence, so occurrences inside comments
/// and string literals are ignored. Falls back to a raw substring count
/// only when the source does not lex (a malformed kernel still gets a
/// best-effort barrier figure alongside its other findings).
fn count_occurrences(haystack: &str, needle: &str) -> usize {
    crate::kernelir::count_token_occurrences(haystack, needle)
        .unwrap_or_else(|| haystack.match_indices(needle).count())
}

/// Extract `#define NAME <expr>` pairs from the source.
///
/// Goes through the [`crate::kernelir`] lexer, so a `#define` sitting
/// inside a comment can never shadow a real one; the raw line scan only
/// backstops source that does not lex.
fn parse_defines(source: &str) -> HashMap<String, String> {
    if let Ok(lexed) = crate::kernelir::lexer::lex(source) {
        let mut out = HashMap::new();
        for (name, body) in lexed.defines {
            let expr = body
                .iter()
                .map(|t| match &t.kind {
                    crate::kernelir::lexer::TokKind::Ident(s) => s.clone(),
                    crate::kernelir::lexer::TokKind::Num(n) => n.to_string(),
                    crate::kernelir::lexer::TokKind::Str => "\"\"".to_string(),
                    crate::kernelir::lexer::TokKind::P(p) => (*p).to_string(),
                })
                .collect::<Vec<_>>()
                .join(" ");
            out.insert(name, expr);
        }
        return out;
    }
    let mut out = HashMap::new();
    for line in source.lines() {
        let line = line.trim();
        if let Some(rest) = line.strip_prefix("#define ") {
            let mut parts = rest.splitn(2, char::is_whitespace);
            if let (Some(name), Some(expr)) = (parts.next(), parts.next()) {
                out.insert(name.to_string(), expr.trim().to_string());
            }
        }
    }
    out
}

/// Evaluate an integer macro expression (`+ - * /`, parentheses,
/// identifiers resolved through `defines`). `None` on malformed input or
/// unresolvable identifiers.
fn eval_expr(expr: &str, defines: &HashMap<String, String>, depth: usize) -> Option<i64> {
    if depth > 16 {
        return None; // recursive macro
    }
    let tokens = tokenize(expr)?;
    let (v, rest) = parse_sum(&tokens, defines, depth)?;
    if rest.is_empty() {
        Some(v)
    } else {
        None
    }
}

#[derive(Clone, Debug, PartialEq)]
enum Tok {
    Num(i64),
    Ident(String),
    Op(char),
}

fn tokenize(expr: &str) -> Option<Vec<Tok>> {
    let mut out = Vec::new();
    let mut chars = expr.chars().peekable();
    while let Some(&c) = chars.peek() {
        match c {
            ' ' | '\t' => {
                chars.next();
            }
            '0'..='9' => {
                let mut n = 0i64;
                while let Some(d) = chars.peek().and_then(|c| c.to_digit(10)) {
                    n = n.checked_mul(10)?.checked_add(d as i64)?;
                    chars.next();
                }
                out.push(Tok::Num(n));
            }
            'a'..='z' | 'A'..='Z' | '_' => {
                let mut s = String::new();
                while let Some(&c) = chars.peek() {
                    if c.is_ascii_alphanumeric() || c == '_' {
                        s.push(c);
                        chars.next();
                    } else {
                        break;
                    }
                }
                out.push(Tok::Ident(s));
            }
            '+' | '-' | '*' | '/' | '(' | ')' => {
                out.push(Tok::Op(c));
                chars.next();
            }
            _ => return None,
        }
    }
    Some(out)
}

fn parse_sum<'t>(
    toks: &'t [Tok],
    defines: &HashMap<String, String>,
    depth: usize,
) -> Option<(i64, &'t [Tok])> {
    let (mut acc, mut rest) = parse_product(toks, defines, depth)?;
    while let Some(Tok::Op(op @ ('+' | '-'))) = rest.first() {
        let (rhs, next) = parse_product(&rest[1..], defines, depth)?;
        acc = if *op == '+' { acc + rhs } else { acc - rhs };
        rest = next;
    }
    Some((acc, rest))
}

fn parse_product<'t>(
    toks: &'t [Tok],
    defines: &HashMap<String, String>,
    depth: usize,
) -> Option<(i64, &'t [Tok])> {
    let (mut acc, mut rest) = parse_atom(toks, defines, depth)?;
    while let Some(Tok::Op(op @ ('*' | '/'))) = rest.first() {
        let (rhs, next) = parse_atom(&rest[1..], defines, depth)?;
        if *op == '*' {
            acc *= rhs;
        } else if rhs != 0 {
            acc /= rhs;
        } else {
            return None;
        }
        rest = next;
    }
    Some((acc, rest))
}

fn parse_atom<'t>(
    toks: &'t [Tok],
    defines: &HashMap<String, String>,
    depth: usize,
) -> Option<(i64, &'t [Tok])> {
    match toks.first()? {
        Tok::Num(n) => Some((*n, &toks[1..])),
        Tok::Ident(name) => {
            let body = defines.get(name)?;
            Some((eval_expr(body, defines, depth + 1)?, &toks[1..]))
        }
        Tok::Op('(') => {
            let (v, rest) = parse_sum(&toks[1..], defines, depth)?;
            match rest.first() {
                Some(Tok::Op(')')) => Some((v, &rest[1..])),
                _ => None,
            }
        }
        Tok::Op('-') => {
            let (v, rest) = parse_atom(&toks[1..], defines, depth)?;
            Some((-v, rest))
        }
        _ => None,
    }
}

/// Shared text checks for one kernel source.
fn lint_source(
    source: &str,
    barrier_token: &str,
    spec: &KernelSpec,
    config: &LaunchConfig,
    device: Option<&DeviceSpec>,
) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    let routine = spec.method.routine();

    // T001: exactly the routine's proven barrier count per plane.
    let want_barriers = routine.skeleton(spec.radius).barriers_per_plane;
    let barriers = count_occurrences(source, barrier_token);
    if barriers != want_barriers {
        diags.push(
            Diagnostic::error(
                "LNT-T001",
                format!(
                    "source issues {barriers} `{barrier_token}` barriers, the schedule proves {want_barriers}"
                ),
            )
            .with("barriers", barriers)
            .with("want", want_barriers),
        );
    }

    // T002: balanced braces.
    let open = source.chars().filter(|&c| c == '{').count();
    let close = source.chars().filter(|&c| c == '}').count();
    if open != close {
        diags.push(
            Diagnostic::error(
                "LNT-T002",
                format!("source has {open} opening vs {close} closing braces"),
            )
            .with("open", open)
            .with("close", close),
        );
    }

    // T003: #define constants agree with the generation parameters.
    let defines = parse_defines(source);
    let vw = vector_width(spec).max(1);
    let expected: [(&str, i64); 6] = [
        ("TX", config.tx as i64),
        ("TY", config.ty as i64),
        ("RX", config.rx as i64),
        ("RY", config.ry as i64),
        ("R", spec.radius as i64),
        ("VW", vw as i64),
    ];
    for (name, want) in expected {
        match defines.get(name).and_then(|e| eval_expr(e, &defines, 0)) {
            Some(got) if got == want => {}
            Some(got) => {
                diags.push(
                    Diagnostic::error(
                        "LNT-T003",
                        format!("#define {name} evaluates to {got}, configuration says {want}"),
                    )
                    .with("define", name)
                    .with("got", got)
                    .with("want", want),
                );
            }
            None => {
                diags.push(
                    Diagnostic::error(
                        "LNT-T003",
                        format!("#define {name} is missing or not evaluable"),
                    )
                    .with("define", name),
                );
            }
        }
    }

    // T004 / T101 need the evaluated tile macros.
    let smem_w = defines
        .get("SMEM_W")
        .and_then(|e| eval_expr(e, &defines, 0));
    let smem_h = defines
        .get("SMEM_H")
        .and_then(|e| eval_expr(e, &defines, 0));
    let wx = defines.get("WX").and_then(|e| eval_expr(e, &defines, 0));
    if let (Some(smem_w), Some(wx)) = (smem_w, wx) {
        // T004: the staged span must fit the tile row for every possible
        // vector lead of the tile origin.
        let r = spec.radius as i64;
        let v = vw as i64;
        for lead in 0..v {
            let span = (lead + wx + 2 * r + v - 1) / v * v;
            if span > smem_w {
                diags.push(
                    Diagnostic::error(
                        "LNT-T004",
                        format!(
                            "staged span {span} exceeds SMEM_W = {smem_w} at vector lead {lead}"
                        ),
                    )
                    .with("span", span)
                    .with("smem_w", smem_w)
                    .with("lead", lead),
                );
                break;
            }
        }
    }
    if let (Some(smem_w), Some(smem_h), Some(dev)) = (smem_w, smem_h, device) {
        let bytes = smem_w * smem_h * spec.elem_bytes as i64 * routine.staging_buffers() as i64;
        if bytes > dev.smem_per_sm as i64 {
            diags.push(
                Diagnostic::warning(
                    "LNT-T101",
                    format!(
                        "static tile of {bytes} B (with alignment slack) exceeds {}'s {} B shared memory",
                        dev.name, dev.smem_per_sm
                    ),
                )
                .with("smem_bytes", bytes)
                .with("limit", dev.smem_per_sm),
            );
        }
    }

    diags
}

/// Lint generated CUDA source text against its generation parameters.
pub fn lint_cuda_source(
    source: &str,
    spec: &KernelSpec,
    config: &LaunchConfig,
    device: Option<&DeviceSpec>,
) -> Vec<Diagnostic> {
    lint_source(source, CUDA_BARRIER, spec, config, device)
}

/// Lint generated OpenCL source text against its generation parameters.
pub fn lint_opencl_source(
    source: &str,
    spec: &KernelSpec,
    config: &LaunchConfig,
    device: Option<&DeviceSpec>,
) -> Vec<Diagnostic> {
    lint_source(source, OPENCL_BARRIER, spec, config, device)
}

/// Lint a [`GeneratedKernel`]: the source text checks plus `LNT-T005`
/// (build metadata vs in-source shared-memory formula).
pub fn lint_cuda(
    kernel: &GeneratedKernel,
    spec: &KernelSpec,
    config: &LaunchConfig,
    device: Option<&DeviceSpec>,
) -> Vec<Diagnostic> {
    let mut diags = lint_cuda_source(&kernel.source, spec, config, device);

    let defines = parse_defines(&kernel.source);
    let smem_w = defines
        .get("SMEM_W")
        .and_then(|e| eval_expr(e, &defines, 0));
    let smem_h = defines
        .get("SMEM_H")
        .and_then(|e| eval_expr(e, &defines, 0));
    if let (Some(w), Some(h)) = (smem_w, smem_h) {
        let formula =
            w * h * spec.elem_bytes as i64 * spec.method.routine().staging_buffers() as i64;
        if formula != kernel.smem_bytes as i64 {
            diags.push(
                Diagnostic::error(
                    "LNT-T005",
                    format!(
                        "metadata declares {} B of shared memory, the SMEM_W x SMEM_H formula gives {formula} B",
                        kernel.smem_bytes
                    ),
                )
                .with("declared", kernel.smem_bytes)
                .with("formula", formula),
            );
        }
    }
    diags
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::diag::has_errors;
    use inplane_core::{Method, Variant};
    use stencil_codegen::{generate_kernel, generate_opencl_kernel};
    use stencil_grid::Precision;

    fn spec(method: Method, order: usize, p: Precision) -> KernelSpec {
        KernelSpec::star_order(method, order, p)
    }

    #[test]
    fn expression_evaluator() {
        let mut defs = HashMap::new();
        defs.insert("TX".to_string(), "32".to_string());
        defs.insert("RX".to_string(), "2".to_string());
        defs.insert("WX".to_string(), "(TX * RX)".to_string());
        assert_eq!(eval_expr("WX + 2 * 3", &defs, 0), Some(70));
        assert_eq!(eval_expr("(WX + 2) * 3", &defs, 0), Some(198));
        assert_eq!(eval_expr("WX / 4 - 1", &defs, 0), Some(15));
        assert_eq!(eval_expr("-WX", &defs, 0), Some(-64));
        assert_eq!(eval_expr("UNKNOWN + 1", &defs, 0), None);
        assert_eq!(eval_expr("1 +", &defs, 0), None);
        defs.insert("LOOP".to_string(), "LOOP + 1".to_string());
        assert_eq!(eval_expr("LOOP", &defs, 0), None, "recursive macro");
    }

    #[test]
    fn generated_cuda_kernels_lint_clean() {
        let dev = DeviceSpec::gtx580();
        for routine in inplane_core::registry() {
            let method = routine.method();
            for p in [Precision::Single, Precision::Double] {
                for order in [2usize, 8] {
                    let s = spec(method, order, p);
                    let c = LaunchConfig::new(32, 4, 1, 2);
                    let k = generate_kernel(&s, &c);
                    let d = lint_cuda(&k, &s, &c, Some(&dev));
                    assert!(
                        d.is_empty(),
                        "{method:?} {p:?} order {order}: {:?}",
                        d.iter().map(|x| x.render()).collect::<Vec<_>>()
                    );
                }
            }
        }
    }

    #[test]
    fn generated_opencl_kernels_lint_clean() {
        let dev = DeviceSpec::gtx580();
        for method in [Method::ForwardPlane, Method::InPlane(Variant::FullSlice)] {
            for p in [Precision::Single, Precision::Double] {
                let s = spec(method, 4, p);
                let c = LaunchConfig::new(32, 4, 1, 2);
                let src = generate_opencl_kernel(&s, &c);
                let d = lint_opencl_source(&src, &s, &c, Some(&dev));
                assert!(
                    d.is_empty(),
                    "{method:?} {p:?}: {:?}",
                    d.iter().map(|x| x.render()).collect::<Vec<_>>()
                );
            }
        }
    }

    #[test]
    fn missing_barrier_is_t001() {
        let s = spec(Method::InPlane(Variant::FullSlice), 4, Precision::Single);
        let c = LaunchConfig::new(32, 4, 1, 2);
        let k = generate_kernel(&s, &c);
        let tampered = k.source.replacen("__syncthreads();", "", 1);
        let d = lint_cuda_source(&tampered, &s, &c, None);
        assert!(d.iter().any(|x| x.code == "LNT-T001"), "{d:?}");
    }

    #[test]
    fn commented_out_barrier_is_not_counted() {
        let s = spec(Method::InPlane(Variant::FullSlice), 4, Precision::Single);
        let c = LaunchConfig::new(32, 4, 1, 2);
        let k = generate_kernel(&s, &c);

        // Commenting a barrier out removes it from the count: the raw
        // substring scan used to still see the token and stay silent.
        let tampered = k
            .source
            .replacen("__syncthreads();", "// __syncthreads();", 1);
        let d = lint_cuda_source(&tampered, &s, &c, None);
        assert!(d.iter().any(|x| x.code == "LNT-T001"), "{d:?}");

        // Conversely a barrier mentioned inside a comment adds nothing.
        let padded = format!("// reminder: __syncthreads();\n{}", k.source);
        let d = lint_cuda_source(&padded, &s, &c, None);
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn commented_define_cannot_shadow_the_real_one() {
        let s = spec(Method::InPlane(Variant::FullSlice), 4, Precision::Single);
        let c = LaunchConfig::new(32, 4, 1, 2);
        let k = generate_kernel(&s, &c);
        // A define inside a trailing block comment used to win the
        // line-scan's last-insert race and fake an LNT-T003.
        let padded = format!("{}\n/*\n#define TX 64\n*/\n", k.source);
        let d = lint_cuda_source(&padded, &s, &c, None);
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn double_buffered_extra_barrier_is_t001() {
        // The db schedule proves ONE barrier per plane; a stray reuse
        // barrier (the single-buffer habit) must be flagged too.
        let s = spec(
            Method::InPlane(Variant::DoubleBuffered),
            4,
            Precision::Single,
        );
        let c = LaunchConfig::new(32, 4, 1, 2);
        let k = generate_kernel(&s, &c);
        let tampered =
            k.source
                .replacen("__syncthreads();", "__syncthreads();\n__syncthreads();", 1);
        let d = lint_cuda_source(&tampered, &s, &c, None);
        assert!(d.iter().any(|x| x.code == "LNT-T001"), "{d:?}");
    }

    #[test]
    fn unbalanced_braces_is_t002() {
        let s = spec(Method::ForwardPlane, 2, Precision::Single);
        let c = LaunchConfig::new(32, 4, 1, 1);
        let k = generate_kernel(&s, &c);
        let tampered = format!("{}}}", k.source);
        let d = lint_cuda_source(&tampered, &s, &c, None);
        assert!(d.iter().any(|x| x.code == "LNT-T002"), "{d:?}");
    }

    #[test]
    fn wrong_define_is_t003() {
        let s = spec(Method::InPlane(Variant::FullSlice), 4, Precision::Single);
        let c = LaunchConfig::new(32, 4, 1, 2);
        let k = generate_kernel(&s, &c);
        let tampered = k.source.replace("#define TX 32", "#define TX 64");
        let d = lint_cuda_source(&tampered, &s, &c, None);
        let t003: Vec<_> = d.iter().filter(|x| x.code == "LNT-T003").collect();
        assert!(!t003.is_empty(), "{d:?}");
        assert!(t003[0].message.contains("TX"));
    }

    #[test]
    fn shrunken_tile_width_is_t004() {
        let s = spec(Method::InPlane(Variant::FullSlice), 4, Precision::Single);
        let c = LaunchConfig::new(32, 4, 1, 2);
        let k = generate_kernel(&s, &c);
        // Drop the alignment slack entirely: a lead-in of VW-1 now
        // overruns the staged row.
        let tampered = k.source.replace(
            "#define SMEM_W (WX + 2 * R + 2 * VW)",
            "#define SMEM_W (WX + 2 * R)",
        );
        let d = lint_cuda_source(&tampered, &s, &c, None);
        assert!(d.iter().any(|x| x.code == "LNT-T004"), "{d:?}");
    }

    #[test]
    fn metadata_smem_mismatch_is_t005() {
        let s = spec(Method::InPlane(Variant::FullSlice), 4, Precision::Single);
        let c = LaunchConfig::new(32, 4, 1, 2);
        let mut k = generate_kernel(&s, &c);
        k.smem_bytes += 128;
        let d = lint_cuda(&k, &s, &c, None);
        assert!(d.iter().any(|x| x.code == "LNT-T005"), "{d:?}");
    }

    #[test]
    fn near_capacity_tile_is_t101_warning_only() {
        // (176, 4, 2, 8): model slab (354 x 34) x 4 B = 48144 <= 49152,
        // but the static tile with alignment slack is 362 x 34 x 4 =
        // 49232 B > 48 KB — the lint must warn without erroring.
        let s = spec(Method::InPlane(Variant::FullSlice), 2, Precision::Single);
        let c = LaunchConfig::new(176, 4, 2, 8);
        let k = generate_kernel(&s, &c);
        let dev = DeviceSpec::gtx580();
        let d = lint_cuda(&k, &s, &c, Some(&dev));
        assert!(d.iter().any(|x| x.code == "LNT-T101"), "{d:?}");
        assert!(!has_errors(&d), "T101 must stay a warning: {d:?}");
    }
}
