//! Full parameter-space sweeps: run every analysis over every
//! enumerable launch configuration in parallel and summarise the result.
//!
//! Two contracts make the sweep useful as a CI gate:
//!
//! * a **feasible** configuration must produce *zero* error-severity
//!   diagnostics across all passes (schedule, coverage, coalescing,
//!   generated-source text and the whole-plan dataflow proof) — an
//!   error there means the plan or the emitter is wrong, not the
//!   configuration;
//! * an **infeasible** configuration must carry at least one coded
//!   rejection reason (`LNT-R…`) — a silent rejection would mean the
//!   explained analyzer has drifted from the boolean predicate.
//!
//! [`SweepReport::clean`] is true iff both hold over the whole space.
//!
//! With [`LintOptions::verify_kernels`] the first contract is extended:
//! a feasible, codegen-applicable configuration must also survive the
//! [`crate::verify`] abstract interpreter with zero `LNT-K…` errors on
//! **both** backends — the emitted text itself is proven in-bounds,
//! race-free, barrier-uniform and traffic-exact, not just well-formed.

use crate::coalescing::check_coalescing;
use crate::codegen_text::{lint_cuda, lint_opencl_source};
use crate::coverage::check_coverage;
use crate::dataflow::analyze_plan;
use crate::diag::{has_errors, json_string, Diagnostic, Severity};
use crate::feasibility::explain_feasibility;
use crate::schedule::check_schedule;
use gpu_sim::{DeviceSpec, GridDims};
use inplane_core::loadplan::plan_for_device_on;
use inplane_core::plan::lower_step;
use inplane_core::resources::vector_width;
use inplane_core::{KernelSpec, LaunchConfig};
use rayon::prelude::*;
use std::collections::BTreeMap;
use stencil_codegen::{generate_kernel, generate_opencl_kernel};

/// Optional passes layered on top of the always-on analyses.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct LintOptions {
    /// Run the [`crate::verify`] kernel verifier (parse + abstract
    /// interpretation of the emitted CUDA and, where supported, OpenCL
    /// source) on every feasible, codegen-applicable configuration.
    /// Off by default: the verifier executes every thread of a block
    /// and costs orders of magnitude more than the text lints.
    pub verify_kernels: bool,
}

/// The lint verdict for one launch configuration.
#[derive(Clone, Debug)]
pub struct ConfigLint {
    /// The configuration examined.
    pub config: LaunchConfig,
    /// Verdict of the explained feasibility pass (no `LNT-R…` error).
    pub feasible: bool,
    /// Every diagnostic from every pass that ran on this configuration.
    pub diagnostics: Vec<Diagnostic>,
}

impl ConfigLint {
    /// True when any diagnostic is error-severity.
    pub fn has_errors(&self) -> bool {
        has_errors(&self.diagnostics)
    }
}

/// Enumerate the §IV-C tuning grid for `device`: `TX` over
/// half-wavefront multiples up to 512 (half-warp on NVIDIA, 32 on
/// wave64 parts), `TY` up to 32, `RX`/`RY` over `{1, 2, 4, 8}` —
/// with **no** feasibility filtering, so infeasible points are examined
/// and explained rather than silently skipped.
pub fn enumerate_configs(device: &DeviceSpec) -> Vec<LaunchConfig> {
    let half_warp = device.half_wavefront();
    let mut out = Vec::new();
    for tx in (half_warp..=512).step_by(half_warp) {
        for ty in 1..=32 {
            for rx in [1, 2, 4, 8] {
                for ry in [1, 2, 4, 8] {
                    out.push(LaunchConfig::new(tx, ty, rx, ry));
                }
            }
        }
    }
    out
}

/// A reduced grid for quick smoke runs (`TY ≤ 8`, `RX`/`RY ≤ 4`).
pub fn enumerate_configs_quick(device: &DeviceSpec) -> Vec<LaunchConfig> {
    enumerate_configs(device)
        .into_iter()
        .filter(|c| c.ty <= 8 && c.rx <= 4 && c.ry <= 4)
        .collect()
}

/// True when the code generator accepts `(kernel, config)` — the
/// emitter handles the single-streamed-grid shape and requires the tile
/// width to be vector-aligned.
fn codegen_applicable(kernel: &KernelSpec, config: &LaunchConfig) -> bool {
    let vw = vector_width(kernel).max(1);
    (kernel.streamed_inputs, kernel.coeff_inputs, kernel.outputs) == (1, 0, 1)
        && config.tile_x().is_multiple_of(vw)
}

/// Run every applicable analysis pass on one configuration.
///
/// Feasibility always runs. The plan-level passes (schedule, coverage,
/// coalescing), the generated-source text lints and the whole-plan
/// dataflow proof run only on feasible configurations — an infeasible
/// point has no valid plan to analyse.
pub fn lint_config(
    device: &DeviceSpec,
    kernel: &KernelSpec,
    dims: &GridDims,
    config: &LaunchConfig,
) -> ConfigLint {
    lint_config_opts(device, kernel, dims, config, LintOptions::default())
}

/// [`lint_config`] with optional passes: when
/// [`LintOptions::verify_kernels`] is set, the emitted CUDA (and, where
/// supported, OpenCL) source is additionally proven by the
/// [`crate::verify`] abstract interpreter on a minimal one-block grid
/// (`2R + WX × 2R + WY × 2R + 2`) — the smallest domain that exercises
/// prologue, one full interior trip and the store path.
pub fn lint_config_opts(
    device: &DeviceSpec,
    kernel: &KernelSpec,
    dims: &GridDims,
    config: &LaunchConfig,
    opts: LintOptions,
) -> ConfigLint {
    let mut diagnostics = explain_feasibility(device, kernel, dims, config);
    let feasible = !has_errors(&diagnostics);

    if feasible {
        let (plan, _res, geom) = plan_for_device_on(kernel, config, dims.lx, device);
        diagnostics.extend(check_schedule(kernel, config, &plan));
        diagnostics.extend(check_coverage(kernel, &geom));
        diagnostics.extend(check_coalescing(kernel, config, &geom, device));

        if codegen_applicable(kernel, config) {
            let generated = generate_kernel(kernel, config);
            diagnostics.extend(lint_cuda(&generated, kernel, config, Some(device)));
            if kernel.method.routine().opencl_supported() {
                let src = generate_opencl_kernel(kernel, config);
                diagnostics.extend(lint_opencl_source(&src, kernel, config, Some(device)));
            }

            if opts.verify_kernels {
                let r = kernel.radius;
                let vdims = (2 * r + config.tile_x(), 2 * r + config.tile_y(), 2 * r + 2);
                diagnostics.extend(crate::verify::verify_cuda_kernel_on(
                    kernel, config, vdims, device,
                ));
                if kernel.method.routine().opencl_supported() {
                    diagnostics.extend(crate::verify::verify_opencl_kernel_on(
                        kernel, config, vdims, device,
                    ));
                }
            }
        }

        // Whole-plan dataflow proof on a synthetic lowered plan: a few
        // tiles in each direction and enough planes to exercise prologue,
        // steady state and drain. The pass is rect-algebra over ~9 blocks,
        // so its cost is independent of the real grid size.
        let r = kernel.radius;
        let synth = (
            2 * r + 3 * config.tile_x(),
            2 * r + 3 * config.tile_y(),
            4 * r + 2,
        );
        let plan = lower_step(kernel.method, config, r, synth);
        diagnostics.extend(analyze_plan(&plan).diagnostics);
    }

    ConfigLint {
        config: *config,
        feasible,
        diagnostics,
    }
}

/// Lint a list of configurations in parallel (ordered, deterministic).
pub fn lint_configs(
    device: &DeviceSpec,
    kernel: &KernelSpec,
    dims: &GridDims,
    configs: &[LaunchConfig],
) -> Vec<ConfigLint> {
    lint_configs_opts(device, kernel, dims, configs, LintOptions::default())
}

/// [`lint_configs`] with optional passes.
pub fn lint_configs_opts(
    device: &DeviceSpec,
    kernel: &KernelSpec,
    dims: &GridDims,
    configs: &[LaunchConfig],
    opts: LintOptions,
) -> Vec<ConfigLint> {
    configs
        .par_iter()
        .map(|c| lint_config_opts(device, kernel, dims, c, opts))
        .collect()
}

/// Aggregated verdict of a parameter-space sweep.
#[derive(Clone, Debug)]
pub struct SweepReport {
    /// Device name.
    pub device: String,
    /// Kernel name.
    pub kernel: String,
    /// Configurations examined.
    pub examined: usize,
    /// Configurations the feasibility pass accepted.
    pub feasible: usize,
    /// Error-code histogram over *infeasible* configurations (the coded
    /// rejection reasons).
    pub rejections: Vec<(&'static str, u64)>,
    /// Warning/info-code histogram over the whole space.
    pub warnings: Vec<(&'static str, u64)>,
    /// Feasible configurations that produced an error-severity
    /// diagnostic — always zero on a healthy tree.
    pub feasible_errors: usize,
    /// Infeasible configurations with no coded rejection reason —
    /// always zero unless the analyzer drifts from the predicate.
    pub unexplained: usize,
    /// Rendered examples of feasible-config errors (capped).
    pub error_examples: Vec<String>,
}

impl SweepReport {
    /// Summarise per-configuration results.
    pub fn from_results(
        device: &DeviceSpec,
        kernel: &KernelSpec,
        results: &[ConfigLint],
    ) -> SweepReport {
        let mut rejections: BTreeMap<&'static str, u64> = BTreeMap::new();
        let mut warnings: BTreeMap<&'static str, u64> = BTreeMap::new();
        let mut feasible = 0usize;
        let mut feasible_errors = 0usize;
        let mut unexplained = 0usize;
        let mut error_examples = Vec::new();

        for r in results {
            if r.feasible {
                feasible += 1;
                if r.has_errors() {
                    feasible_errors += 1;
                    if error_examples.len() < 8 {
                        for d in r
                            .diagnostics
                            .iter()
                            .filter(|d| d.severity == Severity::Error)
                        {
                            error_examples.push(format!("{}: {}", r.config, d.render()));
                        }
                    }
                }
            } else {
                let mut coded = false;
                for d in &r.diagnostics {
                    if d.severity == Severity::Error {
                        coded = true;
                        *rejections.entry(d.code).or_insert(0) += 1;
                    }
                }
                if !coded {
                    unexplained += 1;
                }
            }
            for d in &r.diagnostics {
                if d.severity != Severity::Error {
                    *warnings.entry(d.code).or_insert(0) += 1;
                }
            }
        }

        SweepReport {
            device: device.name.to_string(),
            kernel: kernel.name.clone(),
            examined: results.len(),
            feasible,
            rejections: rejections.into_iter().collect(),
            warnings: warnings.into_iter().collect(),
            feasible_errors,
            unexplained,
            error_examples,
        }
    }

    /// True when the sweep upholds both contracts: no feasible-config
    /// error and no unexplained rejection.
    pub fn clean(&self) -> bool {
        self.feasible_errors == 0 && self.unexplained == 0
    }

    /// Human-readable multi-line rendering.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "lint sweep: {} / {} ({} configs, {} feasible, {} rejected)\n",
            self.device,
            self.kernel,
            self.examined,
            self.feasible,
            self.examined - self.feasible
        ));
        if !self.rejections.is_empty() {
            out.push_str("  rejections by code:\n");
            for (code, n) in &self.rejections {
                out.push_str(&format!(
                    "    {code}  x{n}  {}\n",
                    crate::diag::describe(code).unwrap_or("")
                ));
            }
        }
        if !self.warnings.is_empty() {
            out.push_str("  warnings/info by code:\n");
            for (code, n) in &self.warnings {
                out.push_str(&format!(
                    "    {code}  x{n}  {}\n",
                    crate::diag::describe(code).unwrap_or("")
                ));
            }
        }
        if self.clean() {
            out.push_str("  verdict: clean\n");
        } else {
            out.push_str(&format!(
                "  verdict: FAILED ({} feasible-config errors, {} unexplained rejections)\n",
                self.feasible_errors, self.unexplained
            ));
            for e in &self.error_examples {
                out.push_str(&format!("    {e}\n"));
            }
        }
        out
    }

    /// JSON object rendering (hand-rolled; the workspace is std-only).
    pub fn to_json(&self) -> String {
        let hist = |entries: &[(&'static str, u64)]| {
            let items: Vec<String> = entries
                .iter()
                .map(|(c, n)| format!("{}:{}", json_string(c), n))
                .collect();
            format!("{{{}}}", items.join(","))
        };
        let examples: Vec<String> = self.error_examples.iter().map(|e| json_string(e)).collect();
        format!(
            "{{\"device\":{},\"kernel\":{},\"examined\":{},\"feasible\":{},\"rejections\":{},\"warnings\":{},\"feasible_errors\":{},\"unexplained\":{},\"clean\":{},\"error_examples\":[{}]}}",
            json_string(&self.device),
            json_string(&self.kernel),
            self.examined,
            self.feasible,
            hist(&self.rejections),
            hist(&self.warnings),
            self.feasible_errors,
            self.unexplained,
            self.clean(),
            examples.join(",")
        )
    }
}

/// Sweep the full enumeration grid of `device` for `kernel` on `dims`.
pub fn lint_space(device: &DeviceSpec, kernel: &KernelSpec, dims: &GridDims) -> SweepReport {
    lint_space_opts(device, kernel, dims, LintOptions::default())
}

/// [`lint_space`] with optional passes.
pub fn lint_space_opts(
    device: &DeviceSpec,
    kernel: &KernelSpec,
    dims: &GridDims,
    opts: LintOptions,
) -> SweepReport {
    let configs = enumerate_configs(device);
    let results = lint_configs_opts(device, kernel, dims, &configs, opts);
    SweepReport::from_results(device, kernel, &results)
}

#[cfg(test)]
mod tests {
    use super::*;
    use inplane_core::{Method, Variant};
    use stencil_grid::Precision;

    fn kernel(method: Method, order: usize) -> KernelSpec {
        KernelSpec::star_order(method, order, Precision::Single)
    }

    #[test]
    fn enumeration_covers_the_paper_grid() {
        let dev = DeviceSpec::gtx580();
        let configs = enumerate_configs(&dev);
        // 32 TX values x 32 TY values x 4 RX x 4 RY.
        assert_eq!(configs.len(), 32 * 32 * 16);
        assert!(configs.contains(&LaunchConfig::new(512, 32, 8, 8)));
        let quick = enumerate_configs_quick(&dev);
        assert!(quick.len() < configs.len());
    }

    #[test]
    fn feasible_config_lints_clean_infeasible_is_explained() {
        let dev = DeviceSpec::gtx580();
        let k = kernel(Method::InPlane(Variant::FullSlice), 4);
        let dims = GridDims::paper();

        let good = lint_config(&dev, &k, &dims, &LaunchConfig::new(64, 4, 1, 2));
        assert!(good.feasible);
        assert!(!good.has_errors(), "{:?}", good.diagnostics);

        let bad = lint_config(&dev, &k, &dims, &LaunchConfig::new(512, 32, 8, 8));
        assert!(!bad.feasible);
        assert!(bad.has_errors(), "infeasible must carry a coded reason");
    }

    #[test]
    fn quick_sweep_is_clean_for_every_method() {
        let dev = DeviceSpec::gtx580();
        let dims = GridDims::paper();
        for routine in inplane_core::registry() {
            let method = routine.method();
            let k = kernel(method, 4);
            let configs = enumerate_configs_quick(&dev);
            let results = lint_configs(&dev, &k, &dims, &configs);
            let report = SweepReport::from_results(&dev, &k, &results);
            assert!(report.clean(), "{method:?}:\n{}", report.render());
            assert_eq!(report.examined, configs.len());
            assert!(report.feasible > 0, "{method:?} found nothing feasible");
            assert!(
                !report.rejections.is_empty(),
                "the grid has infeasible points"
            );
        }
    }

    #[test]
    fn kernel_verifier_reaches_the_sweep_and_stays_clean() {
        let dev = DeviceSpec::gtx580();
        let dims = GridDims::paper();
        let cfg = LaunchConfig::new(16, 2, 1, 2);
        let opts = LintOptions {
            verify_kernels: true,
        };
        for method in [
            inplane_core::Method::ForwardPlane,
            inplane_core::Method::InPlane(inplane_core::Variant::FullSlice),
        ] {
            let k = kernel(method, 4);
            let with = lint_config_opts(&dev, &k, &dims, &cfg, opts);
            assert!(with.feasible);
            assert!(!with.has_errors(), "{method:?}: {:?}", with.diagnostics);
            // The option is additive: without it the result is the
            // default pass set, bit for bit.
            let without = lint_config(&dev, &k, &dims, &cfg);
            assert_eq!(with.diagnostics, without.diagnostics);
        }
    }

    #[test]
    fn dataflow_warnings_reach_the_sweep() {
        let dev = DeviceSpec::gtx580();
        let dims = GridDims::paper();
        let cfg = LaunchConfig::new(64, 4, 1, 2);

        // In-plane plans carry the documented drain-phase dead-arm
        // warning; it must surface through lint_config as LNT-D103.
        let inp = lint_config(
            &dev,
            &kernel(Method::InPlane(Variant::Classical), 4),
            &dims,
            &cfg,
        );
        assert!(inp.feasible && !inp.has_errors(), "{:?}", inp.diagnostics);
        assert!(
            inp.diagnostics.iter().any(|d| d.code == "LNT-D103"),
            "{:?}",
            inp.diagnostics
        );

        // Forward plans analyse completely clean — no D-family findings.
        let fwd = lint_config(&dev, &kernel(Method::ForwardPlane, 4), &dims, &cfg);
        assert!(fwd.feasible && !fwd.has_errors(), "{:?}", fwd.diagnostics);
        assert!(
            !fwd.diagnostics.iter().any(|d| d.code.starts_with("LNT-D")),
            "{:?}",
            fwd.diagnostics
        );
    }

    #[test]
    fn report_json_shape() {
        let dev = DeviceSpec::gtx580();
        let k = kernel(Method::InPlane(Variant::Vertical), 2);
        let dims = GridDims::paper();
        let configs = [
            LaunchConfig::new(64, 4, 1, 2),
            LaunchConfig::new(512, 32, 8, 8),
        ];
        let results = lint_configs(&dev, &k, &dims, &configs);
        let report = SweepReport::from_results(&dev, &k, &results);
        let j = report.to_json();
        assert!(j.contains("\"examined\":2"));
        assert!(j.contains("\"feasible\":1"));
        assert!(j.contains("\"clean\":true"));
        assert!(j.contains("LNT-R002"), "{j}");
    }

    #[test]
    fn parallel_results_match_sequential() {
        let dev = DeviceSpec::gtx580();
        let k = kernel(Method::InPlane(Variant::Horizontal), 4);
        let dims = GridDims::paper();
        let configs: Vec<LaunchConfig> =
            enumerate_configs_quick(&dev).into_iter().take(64).collect();
        let par = lint_configs(&dev, &k, &dims, &configs);
        let seq: Vec<ConfigLint> = configs
            .iter()
            .map(|c| lint_config(&dev, &k, &dims, c))
            .collect();
        assert_eq!(par.len(), seq.len());
        for (a, b) in par.iter().zip(&seq) {
            assert_eq!(a.feasible, b.feasible);
            assert_eq!(a.diagnostics, b.diagnostics);
        }
    }
}
