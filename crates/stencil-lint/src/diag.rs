//! Coded diagnostics: the machine-readable currency every analysis pass
//! emits.
//!
//! A [`Diagnostic`] carries a *stable* code (`LNT-xnnn`), a severity, a
//! human message and structured context (`key = value` pairs). Codes are
//! grouped by family:
//!
//! * `LNT-R…` — resource feasibility (§IV-C constraints, explained);
//! * `LNT-S…` — barrier/happens-before schedule proofs;
//! * `LNT-C…` — load-region coverage of the halo-framed slab;
//! * `LNT-M…` — memory behaviour (coalescing, bank conflicts);
//! * `LNT-T…` — generated-source (CUDA/OpenCL) text checks;
//! * `LNT-K…` — symbolic kernel verification: the emitted source is
//!   parsed into a typed AST and abstractly interpreted per thread
//!   (see `kernelir` and `verify`).
//!
//! Within a family, codes `…001`–`…099` are errors (the configuration or
//! plan is wrong/rejected), `…101`–`…199` warnings (legal but
//! performance-relevant or excluded-by-convention), `…901`+ informational.
//! The full catalog lives in [`CATALOG`]; [`describe`] looks codes up.

use std::fmt;

/// How bad a diagnostic is.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// Advisory: a documented, accepted property worth surfacing.
    Info,
    /// Legal but suspicious or performance-relevant.
    Warning,
    /// The configuration/plan/source is invalid and must be rejected.
    Error,
}

impl Severity {
    /// Lower-case label used in renderings and JSON.
    pub fn label(&self) -> &'static str {
        match self {
            Severity::Error => "error",
            Severity::Warning => "warning",
            Severity::Info => "info",
        }
    }
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// The catalog of every code the analyzer can emit:
/// `(code, severity, one-line description)`.
pub const CATALOG: &[(&str, Severity, &str)] = &[
    // Resource feasibility (§IV-C).
    (
        "LNT-R001",
        Severity::Error,
        "TX is not a multiple of a half-warp (coalescing constraint i)",
    ),
    (
        "LNT-R002",
        Severity::Error,
        "thread block exceeds the device's threads-per-block limit (constraint ii)",
    ),
    (
        "LNT-R003",
        Severity::Error,
        "shared-memory staging buffer exceeds the per-SM capacity (constraint iii)",
    ),
    (
        "LNT-R004",
        Severity::Error,
        "TY*RY does not divide the vertical grid extent (constraint iv)",
    ),
    (
        "LNT-R005",
        Severity::Error,
        "block tile exceeds the grid extent",
    ),
    (
        "LNT-R006",
        Severity::Error,
        "register estimate exceeds the per-thread hardware cap",
    ),
    (
        "LNT-R007",
        Severity::Error,
        "routine rejects the problem: grid too small for the stencil radius",
    ),
    (
        "LNT-R008",
        Severity::Error,
        "double-buffered staging pair exceeds the per-SM shared-memory capacity",
    ),
    (
        "LNT-R101",
        Severity::Warning,
        "thread block smaller than one warp (excluded from the paper's enumeration)",
    ),
    // Barrier / happens-before schedule.
    (
        "LNT-S001",
        Severity::Error,
        "shared-memory read not covered by any staged region",
    ),
    (
        "LNT-S002",
        Severity::Error,
        "shared-memory read not separated from its staging store by a barrier",
    ),
    (
        "LNT-S003",
        Severity::Error,
        "per-plane barrier count differs from the routine's proven schedule",
    ),
    (
        "LNT-S004",
        Severity::Error,
        "register pipeline depth differs from the method's specification",
    ),
    // Region coverage.
    (
        "LNT-C001",
        Severity::Error,
        "load regions leave a gap in the halo-framed slab",
    ),
    ("LNT-C002", Severity::Error, "load regions overlap"),
    (
        "LNT-C003",
        Severity::Error,
        "corner-free variant stages corner cells",
    ),
    (
        "LNT-C004",
        Severity::Error,
        "load region reaches outside the halo-framed slab",
    ),
    (
        "LNT-C901",
        Severity::Info,
        "full-slice stages the 4r^2 redundant corner cells (documented policy)",
    ),
    // Whole-plan dataflow (buffer lifetimes over the StagePlan IR).
    (
        "LNT-D001",
        Severity::Error,
        "compute reads shared-tile cells never staged in the current plane's schedule",
    ),
    (
        "LNT-D002",
        Severity::Error,
        "read of a buffer region never written (uninitialized buffer read)",
    ),
    (
        "LNT-D003",
        Severity::Error,
        "invalid buffer reference (unallocated id, out-of-order alloc, or write to the read-only input)",
    ),
    (
        "LNT-D004",
        Severity::Error,
        "stale halo plane: a sweep reads an exchange-destination plane last written by a boundary copy",
    ),
    (
        "LNT-D005",
        Severity::Error,
        "output interior cells never written by the plan (empty or gapped compute schedule)",
    ),
    (
        "LNT-D006",
        Severity::Error,
        "block-level op outside any block or outside the block's halo window",
    ),
    (
        "LNT-D007",
        Severity::Error,
        "schedule-shape violation: rotation counts, publish alignment or write-back ordering deviate from the method",
    ),
    (
        "LNT-D101",
        Severity::Warning,
        "dead store: cells written to a working buffer and never read",
    ),
    (
        "LNT-D102",
        Severity::Warning,
        "dead halo exchange: exchanged planes never read before overwrite or plan end",
    ),
    (
        "LNT-D103",
        Severity::Warning,
        "dead staging: non-corner cells staged but never read before restage or block end",
    ),
    (
        "LNT-D104",
        Severity::Warning,
        "redundant re-staging: cells staged more than once within one plane's schedule",
    ),
    (
        "LNT-D901",
        Severity::Info,
        "full-slice corner cells staged but never read (documented policy, cf. LNT-C901)",
    ),
    // Memory behaviour.
    (
        "LNT-M101",
        Severity::Warning,
        "load transactions exceed the ideal coalesced count",
    ),
    (
        "LNT-M102",
        Severity::Warning,
        "column-major side-halo loads collapse into per-row transactions",
    ),
    (
        "LNT-M103",
        Severity::Warning,
        "shared-memory bank conflicts in the compute phase",
    ),
    // Generated-source text.
    (
        "LNT-T001",
        Severity::Error,
        "generated kernel does not issue exactly two barriers per plane",
    ),
    (
        "LNT-T002",
        Severity::Error,
        "generated source has unbalanced braces",
    ),
    (
        "LNT-T003",
        Severity::Error,
        "generated #define constants disagree with the launch configuration",
    ),
    (
        "LNT-T004",
        Severity::Error,
        "staged halo index can exceed the shared-memory tile width",
    ),
    (
        "LNT-T005",
        Severity::Error,
        "declared shared-memory bytes disagree with the SMEM_W x SMEM_H formula",
    ),
    (
        "LNT-T101",
        Severity::Warning,
        "static shared tile with alignment slack exceeds the device's per-SM capacity",
    ),
    // Symbolic kernel verification (AST + abstract interpretation).
    (
        "LNT-K001",
        Severity::Error,
        "kernel accesses a shared/local array out of its declared bounds",
    ),
    (
        "LNT-K002",
        Severity::Error,
        "kernel accesses global memory outside the buffer (or misaligns a vector load)",
    ),
    (
        "LNT-K003",
        Severity::Error,
        "barrier executed under thread-divergent control flow or barrier count deviates from the proven schedule",
    ),
    (
        "LNT-K004",
        Severity::Error,
        "conflicting shared-memory accesses in the same barrier phase (write-write or read-write race)",
    ),
    (
        "LNT-K005",
        Severity::Error,
        "per-plane traffic derived from the kernel AST disagrees with the static traffic oracle",
    ),
    (
        "LNT-K006",
        Severity::Error,
        "kernel outside the verifiable subset: parse/eval failure, budget exhaustion, or ill-shaped declarations",
    ),
];

/// Look a code up in the catalog.
pub fn describe(code: &str) -> Option<&'static str> {
    CATALOG
        .iter()
        .find(|(c, _, _)| *c == code)
        .map(|(_, _, d)| *d)
}

/// The catalog severity of a code, if the code exists.
pub fn catalog_severity(code: &str) -> Option<Severity> {
    CATALOG
        .iter()
        .find(|(c, _, _)| *c == code)
        .map(|(_, s, _)| *s)
}

/// One finding of an analysis pass.
#[derive(Clone, Debug, PartialEq)]
pub struct Diagnostic {
    /// Stable machine-readable code (`LNT-xnnn`, see [`CATALOG`]).
    pub code: &'static str,
    /// Severity (always the catalog severity of `code`).
    pub severity: Severity,
    /// Human-readable, instance-specific message.
    pub message: String,
    /// Structured context: `key = value` pairs (numbers rendered as
    /// strings so the set stays schema-free).
    pub context: Vec<(&'static str, String)>,
}

impl Diagnostic {
    fn new(code: &'static str, severity: Severity, message: String) -> Self {
        debug_assert_eq!(
            catalog_severity(code),
            Some(severity),
            "diagnostic code {code} missing from CATALOG or used at the wrong severity"
        );
        Diagnostic {
            code,
            severity,
            message,
            context: Vec::new(),
        }
    }

    /// An error-severity diagnostic.
    pub fn error(code: &'static str, message: impl Into<String>) -> Self {
        Self::new(code, Severity::Error, message.into())
    }

    /// A warning-severity diagnostic.
    pub fn warning(code: &'static str, message: impl Into<String>) -> Self {
        Self::new(code, Severity::Warning, message.into())
    }

    /// An info-severity diagnostic.
    pub fn info(code: &'static str, message: impl Into<String>) -> Self {
        Self::new(code, Severity::Info, message.into())
    }

    /// Attach one context pair (builder style).
    pub fn with(mut self, key: &'static str, value: impl fmt::Display) -> Self {
        self.context.push((key, value.to_string()));
        self
    }

    /// One-line human rendering:
    /// `error[LNT-R003]: message (smem_bytes = 53248, limit = 49152)`.
    pub fn render(&self) -> String {
        let mut out = format!("{}[{}]: {}", self.severity.label(), self.code, self.message);
        if !self.context.is_empty() {
            let ctx: Vec<String> = self
                .context
                .iter()
                .map(|(k, v)| format!("{k} = {v}"))
                .collect();
            out.push_str(&format!(" ({})", ctx.join(", ")));
        }
        out
    }

    /// JSON object rendering (hand-rolled; the workspace is std-only).
    pub fn to_json(&self) -> String {
        let ctx: Vec<String> = self
            .context
            .iter()
            .map(|(k, v)| format!("{}:{}", json_string(k), json_string(v)))
            .collect();
        format!(
            "{{\"code\":{},\"severity\":{},\"message\":{},\"context\":{{{}}}}}",
            json_string(self.code),
            json_string(self.severity.label()),
            json_string(&self.message),
            ctx.join(",")
        )
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.render())
    }
}

/// True when any diagnostic in the slice is error-severity — the single
/// predicate the boolean feasibility shim and the lint exit code use.
pub fn has_errors(diags: &[Diagnostic]) -> bool {
    diags.iter().any(|d| d.severity == Severity::Error)
}

/// Escape and quote a string for JSON output.
pub fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalog_codes_are_unique_and_well_formed() {
        let mut seen = std::collections::HashSet::new();
        for (code, severity, desc) in CATALOG {
            assert!(seen.insert(*code), "duplicate code {code}");
            assert!(code.starts_with("LNT-"), "{code} must start with LNT-");
            assert!(!desc.is_empty());
            // Numbering convention: 0xx error, 1xx warning, 9xx info.
            let n: u32 = code[5..].parse().expect("numeric suffix");
            let expected = match n {
                1..=99 => Severity::Error,
                101..=199 => Severity::Warning,
                _ => Severity::Info,
            };
            assert_eq!(*severity, expected, "{code} severity breaks the convention");
        }
    }

    #[test]
    fn describe_finds_known_codes() {
        assert!(describe("LNT-R003").unwrap().contains("shared-memory"));
        assert!(describe("LNT-XXXX").is_none());
        assert_eq!(catalog_severity("LNT-R101"), Some(Severity::Warning));
    }

    #[test]
    fn render_includes_code_and_context() {
        let d = Diagnostic::error("LNT-R002", "block too large")
            .with("threads", 2048)
            .with("limit", 1024);
        let s = d.render();
        assert!(s.starts_with("error[LNT-R002]: block too large"));
        assert!(s.contains("threads = 2048"));
        assert!(s.contains("limit = 1024"));
    }

    #[test]
    fn json_is_escaped_and_structured() {
        let d = Diagnostic::warning("LNT-M101", "ratio \"high\"").with("ratio", 3.5);
        let j = d.to_json();
        assert!(j.contains("\"code\":\"LNT-M101\""));
        assert!(j.contains("\"severity\":\"warning\""));
        assert!(j.contains("\\\"high\\\""));
        assert!(j.contains("\"ratio\":\"3.5\""));
    }

    #[test]
    fn has_errors_ignores_warnings() {
        let w = Diagnostic::warning("LNT-M103", "conflicts");
        let e = Diagnostic::error("LNT-C001", "gap");
        assert!(!has_errors(std::slice::from_ref(&w)));
        assert!(has_errors(&[w, e]));
    }

    #[test]
    fn severity_orders_error_highest() {
        assert!(Severity::Error > Severity::Warning);
        assert!(Severity::Warning > Severity::Info);
    }
}
