//! Barrier/happens-before proof over the abstract per-plane schedule.
//!
//! Each plane of the 2.5-D sweep is abstracted into an ordered list of
//! [`Op`]s: shared-memory *stages* (region stores into the tile, from
//! global memory or from the register pipeline), *barriers*
//! (`__syncthreads()`), and *reads* (the compute phase's neighbour
//! gathers). The proof obligations (§III):
//!
//! * every read rectangle is covered by staged rectangles (`LNT-S001`
//!   otherwise — a read of memory nothing staged);
//! * the covering stages are separated from the read by a barrier
//!   (`LNT-S002` otherwise — a cross-warp race: another warp's stage is
//!   not visible without a barrier);
//! * the schedule issues exactly the two barriers per plane the method
//!   is specified with — stage barrier + reuse barrier (`LNT-S003`);
//! * the register-pipeline depth matches the method: `2r + 1` z-values
//!   forward-plane, `r` queued partials + `r` trailing z-values in-plane
//!   (`LNT-S004`).
//!
//! The same proof is cross-checked dynamically in the integration tests:
//! replaying the staged regions into the emulator's `SharedBuffer` and
//! `try_read`ing the read footprint must agree with the static verdict.

use crate::diag::Diagnostic;
use crate::rect::{subtract_all, total_area, Rect};
use gpu_sim::plan::PlanePlan;
use inplane_core::layout::TileGeometry;
use inplane_core::loadplan::load_regions;
use inplane_core::resources::{regs_per_thread, vector_width, BASE_REGS};
use inplane_core::{KernelSpec, LaunchConfig, Method};

/// One step of the abstract per-plane schedule.
#[derive(Clone, Debug, PartialEq)]
pub enum Op {
    /// A region of the plane is written into the shared tile.
    Stage(Rect),
    /// `__syncthreads()`: all prior stages become visible to all threads.
    Barrier,
    /// The compute phase reads this region of the shared tile.
    Read(Rect),
}

/// The read footprint of the compute phase: the interior plus the four
/// radius-wide halo arms (corners are never read by a star stencil).
pub fn read_footprint(geom: &TileGeometry) -> Vec<Rect> {
    let (ix_s, ix_e) = geom.interior_x();
    let (iy_s, iy_e) = geom.interior_y();
    let r = geom.r as isize;
    vec![
        Rect {
            x0: ix_s,
            x1: ix_e,
            y0: iy_s,
            y1: iy_e,
        },
        Rect {
            x0: ix_s - r,
            x1: ix_s,
            y0: iy_s,
            y1: iy_e,
        },
        Rect {
            x0: ix_e,
            x1: ix_e + r,
            y0: iy_s,
            y1: iy_e,
        },
        Rect {
            x0: ix_s,
            x1: ix_e,
            y0: iy_s - r,
            y1: iy_s,
        },
        Rect {
            x0: ix_s,
            x1: ix_e,
            y0: iy_e,
            y1: iy_e + r,
        },
    ]
}

/// Build the abstract per-plane schedule for `(kernel, geom)`: stage the
/// variant's load regions, barrier, read the stencil footprint, barrier
/// (the reuse barrier protecting the next plane's restaging).
pub fn build_schedule(kernel: &KernelSpec, geom: &TileGeometry) -> Vec<Op> {
    let mut ops = Vec::new();
    // Forward-plane publishes the interior from its register pipeline and
    // loads the four arms; in-plane stages the variant's regions. Either
    // way, the staged rectangles are exactly the method's load regions
    // (the forward-plane interior "load" is the register publish).
    for region in load_regions(kernel.method, geom, vector_width(kernel)) {
        ops.push(Op::Stage(Rect::from_spans(region.x, region.y)));
    }
    ops.push(Op::Barrier);
    for r in read_footprint(geom) {
        ops.push(Op::Read(r));
    }
    // Reuse barrier: no thread may restage the next plane while another
    // warp still reads this one.
    ops.push(Op::Barrier);
    ops
}

/// Verify the happens-before obligations on an explicit op list.
/// Exposed separately so tests can probe broken schedules.
pub fn verify_ops(ops: &[Op]) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    // Stages made visible by a barrier vs stages still pending one.
    let mut visible: Vec<Rect> = Vec::new();
    let mut pending: Vec<Rect> = Vec::new();
    for (i, op) in ops.iter().enumerate() {
        match op {
            Op::Stage(r) => pending.push(*r),
            Op::Barrier => {
                visible.append(&mut pending);
            }
            Op::Read(r) => {
                let after_visible = subtract_all(vec![*r], &visible);
                if after_visible.is_empty() {
                    continue;
                }
                // Part of the read is not barrier-protected; is it staged
                // at all?
                let unstaged = subtract_all(after_visible.clone(), &pending);
                if !unstaged.is_empty() {
                    let g = unstaged[0];
                    diags.push(
                        Diagnostic::error(
                            "LNT-S001",
                            format!(
                                "read op {i} touches {} cells no stage covers (first gap [{}, {})x[{}, {}))",
                                total_area(&unstaged),
                                g.x0,
                                g.x1,
                                g.y0,
                                g.y1
                            ),
                        )
                        .with("op", i)
                        .with("cells", total_area(&unstaged)),
                    );
                }
                let racy_area = total_area(&after_visible) - total_area(&unstaged);
                if racy_area > 0 {
                    diags.push(
                        Diagnostic::error(
                            "LNT-S002",
                            format!(
                                "read op {i} reaches {racy_area} cells staged after the last barrier (cross-warp race)"
                            ),
                        )
                        .with("op", i)
                        .with("cells", racy_area),
                    );
                }
            }
        }
    }
    diags
}

/// The method's specified register-pipeline depth in words per point:
/// `2r + 1` forward-plane, `2r` (queue + z-history) in-plane.
pub fn expected_pipeline_words(kernel: &KernelSpec) -> usize {
    match kernel.method {
        Method::ForwardPlane => 2 * kernel.radius + 1,
        Method::InPlane(_) => 2 * kernel.radius,
    }
}

/// Full schedule check for `(kernel, config, geom)` against the lowered
/// `plan`: happens-before over the abstract schedule, barrier count, and
/// pipeline depth.
pub fn check_schedule(
    kernel: &KernelSpec,
    config: &LaunchConfig,
    geom: &TileGeometry,
    plan: &PlanePlan,
) -> Vec<Diagnostic> {
    let ops = build_schedule(kernel, geom);
    let mut diags = verify_ops(&ops);

    // S003: the proven schedule has exactly two barriers per plane, and
    // the lowered plan must agree.
    let barriers = ops.iter().filter(|o| matches!(o, Op::Barrier)).count() as u64;
    if barriers != 2 || plan.syncthreads != 2 {
        diags.push(
            Diagnostic::error(
                "LNT-S003",
                format!(
                    "schedule has {barriers} barriers, plan declares {} (proven count: 2)",
                    plan.syncthreads
                ),
            )
            .with("schedule_barriers", barriers)
            .with("plan_syncthreads", plan.syncthreads),
        );
    }

    // S004: re-derive the pipeline register count from the method's
    // specified depth and compare with the resource model's estimate.
    diags.extend(check_pipeline_depth(
        kernel,
        config,
        regs_per_thread(kernel, config),
    ));

    diags
}

/// Prove `claimed_regs` (a per-thread register estimate for `(kernel,
/// config)`) carries exactly the method's specified pipeline depth:
/// `2r + 1` words per point forward-plane, `2r` in-plane, on top of the
/// base/coefficient/vector-staging overheads. `LNT-S004` on mismatch.
pub fn check_pipeline_depth(
    kernel: &KernelSpec,
    config: &LaunchConfig,
    claimed_regs: usize,
) -> Option<Diagnostic> {
    let r = kernel.radius;
    let regs_per_word = kernel.elem_bytes / 4;
    let expected_pipeline =
        expected_pipeline_words(kernel) * config.points_per_thread() * regs_per_word;
    let coeffs = if kernel.coeff_inputs == 0 {
        (r + 1).min(6) * regs_per_word
    } else {
        0
    };
    let vector_tmp = if vector_width(kernel) > 1 {
        2 * regs_per_word
    } else {
        regs_per_word
    };
    let derived_pipeline = claimed_regs.saturating_sub(BASE_REGS + coeffs + vector_tmp);
    if derived_pipeline != expected_pipeline {
        return Some(
            Diagnostic::error(
                "LNT-S004",
                format!(
                    "register estimate carries {derived_pipeline} pipeline registers, the {} method specifies {expected_pipeline} ({} words/point)",
                    kernel.method.label(),
                    expected_pipeline_words(kernel)
                ),
            )
            .with("derived", derived_pipeline)
            .with("expected", expected_pipeline)
            .with("words_per_point", expected_pipeline_words(kernel)),
        );
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::diag::has_errors;
    use inplane_core::loadplan::build_plane_plan;
    use inplane_core::Variant;
    use stencil_grid::Precision;

    fn geom(c: &LaunchConfig, r: usize) -> TileGeometry {
        TileGeometry::interior(c, r, 4, 512, 128)
    }

    fn spec(method: Method, order: usize) -> KernelSpec {
        KernelSpec::star_order(method, order, Precision::Single)
    }

    #[test]
    fn all_methods_prove_clean() {
        for method in [
            Method::ForwardPlane,
            Method::InPlane(Variant::Classical),
            Method::InPlane(Variant::Vertical),
            Method::InPlane(Variant::Horizontal),
            Method::InPlane(Variant::FullSlice),
        ] {
            for order in [2usize, 4, 8, 12] {
                let c = LaunchConfig::new(32, 8, 1, 1);
                let g = geom(&c, order / 2);
                let k = spec(method, order);
                let plan = build_plane_plan(&k, &c, &g, 32);
                let d = check_schedule(&k, &c, &g, &plan);
                assert!(
                    !has_errors(&d),
                    "{method:?} order {order}: {:?}",
                    d.iter().map(|x| x.render()).collect::<Vec<_>>()
                );
            }
        }
    }

    #[test]
    fn missing_barrier_is_s002() {
        let c = LaunchConfig::new(32, 8, 1, 1);
        let g = geom(&c, 1);
        let k = spec(Method::InPlane(Variant::FullSlice), 2);
        let mut ops = build_schedule(&k, &g);
        // Remove the stage barrier: reads now race with the stores.
        let first_barrier = ops.iter().position(|o| matches!(o, Op::Barrier)).unwrap();
        ops.remove(first_barrier);
        let d = verify_ops(&ops);
        assert!(d.iter().any(|x| x.code == "LNT-S002"), "{d:?}");
        assert!(
            !d.iter().any(|x| x.code == "LNT-S001"),
            "fully staged: {d:?}"
        );
    }

    #[test]
    fn missing_stage_is_s001() {
        let c = LaunchConfig::new(32, 8, 1, 1);
        let g = geom(&c, 1);
        let k = spec(Method::InPlane(Variant::Horizontal), 2);
        let mut ops = build_schedule(&k, &g);
        // Drop the top-halo stage (the second region).
        let stages: Vec<usize> = ops
            .iter()
            .enumerate()
            .filter(|(_, o)| matches!(o, Op::Stage(_)))
            .map(|(i, _)| i)
            .collect();
        ops.remove(stages[1]);
        let d = verify_ops(&ops);
        assert!(d.iter().any(|x| x.code == "LNT-S001"), "{d:?}");
    }

    #[test]
    fn wrong_barrier_count_is_s003() {
        let c = LaunchConfig::new(32, 8, 1, 1);
        let g = geom(&c, 1);
        let k = spec(Method::InPlane(Variant::FullSlice), 2);
        let mut plan = build_plane_plan(&k, &c, &g, 32);
        plan.syncthreads = 3;
        let d = check_schedule(&k, &c, &g, &plan);
        assert!(d.iter().any(|x| x.code == "LNT-S003"), "{d:?}");
    }

    #[test]
    fn tampered_pipeline_depth_is_s004() {
        let c = LaunchConfig::new(32, 8, 1, 1);
        let k = spec(Method::ForwardPlane, 4);
        let honest = regs_per_thread(&k, &c);
        assert!(check_pipeline_depth(&k, &c, honest).is_none());
        // A register estimate that dropped one pipeline word per point.
        let d = check_pipeline_depth(&k, &c, honest - c.points_per_thread()).unwrap();
        assert_eq!(d.code, "LNT-S004");
        // A forward-plane estimate claimed for an in-plane spec: one word
        // per point too many.
        let mut lying = k.clone();
        lying.method = Method::InPlane(Variant::Classical);
        let d2 = check_pipeline_depth(&lying, &c, honest).unwrap();
        assert_eq!(d2.code, "LNT-S004");
    }

    #[test]
    fn pipeline_depths_match_table() {
        for order in [2usize, 4, 8] {
            let r = order / 2;
            assert_eq!(
                expected_pipeline_words(&spec(Method::ForwardPlane, order)),
                2 * r + 1
            );
            assert_eq!(
                expected_pipeline_words(&spec(Method::InPlane(Variant::FullSlice), order)),
                2 * r
            );
        }
    }

    #[test]
    fn read_footprint_is_slab_minus_corners() {
        let c = LaunchConfig::new(32, 4, 1, 2);
        let g = geom(&c, 2);
        let fp = read_footprint(&g);
        let slab = Rect::from_spans(g.slab_x(), g.slab_y());
        let left = subtract_all(vec![slab], &fp);
        // Exactly the four r×r corners remain.
        assert_eq!(total_area(&left), 4 * 4);
    }
}
