//! Barrier/happens-before proof over the lowered per-plane schedule.
//!
//! Since the StagePlan refactor the analyzer no longer builds its own
//! abstract schedule: it lowers the kernel with
//! [`inplane_core::lower_step`] — the *same* pure lowering every
//! execution path interprets — and extracts one representative interior
//! block's per-plane op run ([`plan_plane_ops`]). Each plane is an
//! ordered list of [`Op`]s: shared-memory *stages* (region stores into
//! the tile, from global memory or from the register pipeline),
//! *barriers* (`__syncthreads()`), and *reads* (the compute phase's
//! neighbour gathers, the Eqn-(5) centre folds, the z-history advance).
//! The proof obligations (§III):
//!
//! * every read rectangle is covered by staged rectangles (`LNT-S001`
//!   otherwise — a read of memory nothing staged);
//! * the covering stages are separated from the read by a barrier
//!   (`LNT-S002` otherwise — a cross-warp race: another warp's stage is
//!   not visible without a barrier);
//! * the schedule issues exactly the routine skeleton's
//!   `barriers_per_plane` — stage barrier + reuse barrier for the
//!   single-buffer routines, stage barrier only for the double-buffered
//!   routine (`LNT-S003`);
//! * the register-pipeline depth matches the method: `2r + 1` z-values
//!   forward-plane, `r` queued partials + `r` trailing z-values in-plane
//!   (`LNT-S004`) — checked both against the resource model's register
//!   estimate and against the depths the lowered `BeginBlock` declares.
//!
//! The same proof is cross-checked dynamically in the integration tests:
//! replaying a deliberately tampered `StagePlan` through the instrumented
//! plan interpreter must fail `try_read` on exactly the cells the static
//! `LNT-S001` finding counts — static and runtime operate on one IR, so
//! they can never drift.

use crate::diag::Diagnostic;
use crate::rect::{subtract_all, total_area, Rect};
use gpu_sim::plan::PlanePlan;
use inplane_core::layout::TileGeometry;
use inplane_core::plan::{ComputeKind, PipelineFeed};
use inplane_core::resources::{regs_per_thread, vector_width, BASE_REGS};
use inplane_core::{lower_step, KernelSpec, LaunchConfig, PlanOp, StagePlan};

/// One step of the abstract per-plane schedule.
#[derive(Clone, Debug, PartialEq)]
pub enum Op {
    /// A region of the plane is written into the shared tile.
    Stage(Rect),
    /// `__syncthreads()`: all prior stages become visible to all threads.
    Barrier,
    /// The compute phase reads this region of the shared tile.
    Read(Rect),
}

/// The read footprint of the compute phase: the interior plus the four
/// radius-wide halo arms (corners are never read by a star stencil).
pub fn read_footprint(geom: &TileGeometry) -> Vec<Rect> {
    let (ix_s, ix_e) = geom.interior_x();
    let (iy_s, iy_e) = geom.interior_y();
    footprint_rects(ix_s, ix_e, iy_s, iy_e, geom.r as isize)
}

/// Interior + four corner-free arms of `[ix0, ix1) × [iy0, iy1)`.
fn footprint_rects(ix0: isize, ix1: isize, iy0: isize, iy1: isize, r: isize) -> Vec<Rect> {
    vec![
        Rect {
            x0: ix0,
            x1: ix1,
            y0: iy0,
            y1: iy1,
        },
        Rect {
            x0: ix0 - r,
            x1: ix0,
            y0: iy0,
            y1: iy1,
        },
        Rect {
            x0: ix1,
            x1: ix1 + r,
            y0: iy0,
            y1: iy1,
        },
        Rect {
            x0: ix0,
            x1: ix1,
            y0: iy0 - r,
            y1: iy0,
        },
        Rect {
            x0: ix0,
            x1: ix1,
            y0: iy1,
            y1: iy1 + r,
        },
    ]
}

/// Extract the abstract per-plane schedule of the block whose tile
/// origin is `block` while it stages `plane`, straight from a lowered
/// [`StagePlan`]. Coordinates stay in the plan's own grid frame.
///
/// The mapping from plan ops to proof obligations:
///
/// * [`PlanOp::StageRegion`] → [`Op::Stage`] (register publish or
///   global load — either way the cells become readable);
/// * [`PlanOp::Barrier`] → [`Op::Barrier`];
/// * [`PlanOp::ComputePoint`] with `ForwardFull` / `InplanePartial` →
///   reads of the star footprint (interior + four arms);
/// * [`PlanOp::ComputePoint`] with `FoldCentre` → a read of the staged
///   interior (Eqn-(5) folds touch only the centre values);
/// * [`PlanOp::RotatePipeline`] fed by `StagedCentre` → a read of the
///   staged interior (the in-plane z-history advance).
pub fn plan_plane_ops(plan: &StagePlan, block: (usize, usize), plane: usize) -> Vec<Op> {
    let ri = plan.radius as isize;
    let mut ops = Vec::new();
    let mut in_block = false;
    let mut cur_plane: Option<usize> = None;
    let mut interior = Rect {
        x0: 0,
        x1: 0,
        y0: 0,
        y1: 0,
    };
    let mut footprint: Vec<Rect> = Vec::new();
    for op in &plan.ops {
        match *op {
            PlanOp::BeginBlock { x0, y0, w, h, .. } => {
                in_block = (x0, y0) == block;
                cur_plane = None;
                if in_block {
                    let (ix0, ix1) = (x0 as isize, (x0 + w) as isize);
                    let (iy0, iy1) = (y0 as isize, (y0 + h) as isize);
                    interior = Rect {
                        x0: ix0,
                        x1: ix1,
                        y0: iy0,
                        y1: iy1,
                    };
                    footprint = footprint_rects(ix0, ix1, iy0, iy1, ri);
                }
            }
            _ if !in_block => {}
            PlanOp::StageRegion { rect, plane: p, .. } => {
                cur_plane = Some(p);
                if p == plane {
                    ops.push(Op::Stage(Rect {
                        x0: rect.x0,
                        x1: rect.x1,
                        y0: rect.y0,
                        y1: rect.y1,
                    }));
                }
            }
            _ if cur_plane != Some(plane) => {}
            PlanOp::Barrier => ops.push(Op::Barrier),
            PlanOp::ComputePoint { kind, .. } => match kind {
                ComputeKind::ForwardFull | ComputeKind::InplanePartial => {
                    ops.extend(footprint.iter().copied().map(Op::Read));
                }
                ComputeKind::FoldCentre { .. } => ops.push(Op::Read(interior)),
            },
            PlanOp::RotatePipeline {
                feed: PipelineFeed::StagedCentre,
                ..
            } => ops.push(Op::Read(interior)),
            _ => {}
        }
    }
    ops
}

/// One representative interior block's schedule, extracted from the real
/// lowered IR (see [`lower_plane_schedule`]).
pub struct LoweredSchedule {
    /// The block's per-plane op run at the representative plane.
    pub ops: Vec<Op>,
    /// z-pipeline depth the lowered `BeginBlock` declares.
    pub z_depth: usize,
    /// Out-queue depth the lowered `BeginBlock` declares.
    pub out_depth: usize,
}

/// Lower `kernel` with [`inplane_core::lower_step`] on a synthetic
/// 3×3-tile grid and extract the middle (fully interior) block's
/// schedule at plane `2r` — a plane deep enough that every in-plane
/// obligation is live (the Eqn-(3) partial, all `r` folds, and the
/// write-back of plane `r`).
pub fn lower_plane_schedule(kernel: &KernelSpec, config: &LaunchConfig) -> LoweredSchedule {
    let r = kernel.radius;
    let (tw, th) = (config.tile_x(), config.tile_y());
    let dims = (2 * r + 3 * tw, 2 * r + 3 * th, 4 * r + 2);
    let plan = lower_step(kernel.method, config, r, dims);
    let ops = plan_plane_ops(&plan, (r + tw, r + th), 2 * r);
    let (z_depth, out_depth) = plan
        .ops
        .iter()
        .find_map(|op| match op {
            PlanOp::BeginBlock {
                z_depth, out_depth, ..
            } => Some((*z_depth, *out_depth)),
            _ => None,
        })
        .expect("a lowered plan always opens at least one block");
    LoweredSchedule {
        ops,
        z_depth,
        out_depth,
    }
}

/// Verify the happens-before obligations on an explicit op list.
/// Exposed separately so tests can probe broken schedules.
pub fn verify_ops(ops: &[Op]) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    // Stages made visible by a barrier vs stages still pending one.
    let mut visible: Vec<Rect> = Vec::new();
    let mut pending: Vec<Rect> = Vec::new();
    for (i, op) in ops.iter().enumerate() {
        match op {
            Op::Stage(r) => pending.push(*r),
            Op::Barrier => {
                visible.append(&mut pending);
            }
            Op::Read(r) => {
                let after_visible = subtract_all(vec![*r], &visible);
                if after_visible.is_empty() {
                    continue;
                }
                // Part of the read is not barrier-protected; is it staged
                // at all?
                let unstaged = subtract_all(after_visible.clone(), &pending);
                if !unstaged.is_empty() {
                    let g = unstaged[0];
                    diags.push(
                        Diagnostic::error(
                            "LNT-S001",
                            format!(
                                "read op {i} touches {} cells no stage covers (first gap [{}, {})x[{}, {}))",
                                total_area(&unstaged),
                                g.x0,
                                g.x1,
                                g.y0,
                                g.y1
                            ),
                        )
                        .with("op", i)
                        .with("cells", total_area(&unstaged)),
                    );
                }
                let racy_area = total_area(&after_visible) - total_area(&unstaged);
                if racy_area > 0 {
                    diags.push(
                        Diagnostic::error(
                            "LNT-S002",
                            format!(
                                "read op {i} reaches {racy_area} cells staged after the last barrier (cross-warp race)"
                            ),
                        )
                        .with("op", i)
                        .with("cells", racy_area),
                    );
                }
            }
        }
    }
    diags
}

/// The method's specified register-pipeline depth in words per point:
/// `2r + 1` forward-plane, `2r` (queue + z-history) in-plane.
/// Delegates to [`inplane_core::Method::pipeline_words`] — the one table
/// the lowering, the resource model and this proof all share.
pub fn expected_pipeline_words(kernel: &KernelSpec) -> usize {
    kernel.method.pipeline_words(kernel.radius)
}

/// Full schedule check for `(kernel, config)` against the priced
/// `plan`: happens-before over the *lowered* schedule, barrier count,
/// and pipeline depth.
pub fn check_schedule(
    kernel: &KernelSpec,
    config: &LaunchConfig,
    plan: &PlanePlan,
) -> Vec<Diagnostic> {
    let lowered = lower_plane_schedule(kernel, config);
    let mut diags = verify_ops(&lowered.ops);

    // S003: the lowered schedule must issue exactly the routine's
    // proven barrier count per plane, and the priced plan must declare
    // the same.
    let proven = kernel
        .method
        .routine()
        .skeleton(kernel.radius)
        .barriers_per_plane;
    let barriers = lowered
        .ops
        .iter()
        .filter(|o| matches!(o, Op::Barrier))
        .count();
    if barriers != proven || plan.syncthreads != proven as u64 {
        diags.push(
            Diagnostic::error(
                "LNT-S003",
                format!(
                    "lowered schedule has {barriers} barriers, plan declares {} (proven count: {proven})",
                    plan.syncthreads
                ),
            )
            .with("schedule_barriers", barriers)
            .with("plan_syncthreads", plan.syncthreads),
        );
    }

    // S004a: the depths the lowered BeginBlock declares must sum to the
    // method's specified pipeline words (the staged slot doubles as the
    // accumulator, hence the −1).
    let lowered_words = lowered.z_depth + lowered.out_depth - 1;
    if lowered_words != expected_pipeline_words(kernel) {
        diags.push(
            Diagnostic::error(
                "LNT-S004",
                format!(
                    "lowered block declares {lowered_words} pipeline words, the {} method specifies {}",
                    kernel.method.label(),
                    expected_pipeline_words(kernel)
                ),
            )
            .with("derived", lowered_words)
            .with("expected", expected_pipeline_words(kernel)),
        );
    }

    // S004b: re-derive the pipeline register count from the method's
    // specified depth and compare with the resource model's estimate.
    diags.extend(check_pipeline_depth(
        kernel,
        config,
        regs_per_thread(kernel, config),
    ));

    diags
}

/// Prove `claimed_regs` (a per-thread register estimate for `(kernel,
/// config)`) carries exactly the method's specified pipeline depth:
/// `2r + 1` words per point forward-plane, `2r` in-plane, on top of the
/// base/coefficient/vector-staging overheads. `LNT-S004` on mismatch.
pub fn check_pipeline_depth(
    kernel: &KernelSpec,
    config: &LaunchConfig,
    claimed_regs: usize,
) -> Option<Diagnostic> {
    let r = kernel.radius;
    let regs_per_word = kernel.elem_bytes / 4;
    let expected_pipeline =
        expected_pipeline_words(kernel) * config.points_per_thread() * regs_per_word;
    let coeffs = if kernel.coeff_inputs == 0 {
        (r + 1).min(6) * regs_per_word
    } else {
        0
    };
    let vector_tmp = if vector_width(kernel) > 1 {
        2 * regs_per_word
    } else {
        regs_per_word
    };
    let derived_pipeline = claimed_regs.saturating_sub(BASE_REGS + coeffs + vector_tmp);
    if derived_pipeline != expected_pipeline {
        return Some(
            Diagnostic::error(
                "LNT-S004",
                format!(
                    "register estimate carries {derived_pipeline} pipeline registers, the {} method specifies {expected_pipeline} ({} words/point)",
                    kernel.method.label(),
                    expected_pipeline_words(kernel)
                ),
            )
            .with("derived", derived_pipeline)
            .with("expected", expected_pipeline)
            .with("words_per_point", expected_pipeline_words(kernel)),
        );
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::diag::has_errors;
    use inplane_core::loadplan::build_plane_plan;
    use inplane_core::{Method, Variant};
    use stencil_grid::Precision;

    fn geom(c: &LaunchConfig, r: usize) -> TileGeometry {
        TileGeometry::interior(c, r, 4, 512, 128)
    }

    fn spec(method: Method, order: usize) -> KernelSpec {
        KernelSpec::star_order(method, order, Precision::Single)
    }

    const METHODS: [Method; 6] = [
        Method::ForwardPlane,
        Method::InPlane(Variant::Classical),
        Method::InPlane(Variant::Vertical),
        Method::InPlane(Variant::Horizontal),
        Method::InPlane(Variant::FullSlice),
        Method::InPlane(Variant::DoubleBuffered),
    ];

    #[test]
    fn all_methods_prove_clean() {
        for method in METHODS {
            for order in [2usize, 4, 8, 12] {
                let c = LaunchConfig::new(32, 8, 1, 1);
                let g = geom(&c, order / 2);
                let k = spec(method, order);
                let plan = build_plane_plan(&k, &c, &g, 32);
                let d = check_schedule(&k, &c, &plan);
                assert!(
                    !has_errors(&d),
                    "{method:?} order {order}: {:?}",
                    d.iter().map(|x| x.render()).collect::<Vec<_>>()
                );
            }
        }
    }

    #[test]
    fn missing_barrier_is_s002() {
        let c = LaunchConfig::new(32, 8, 1, 1);
        let k = spec(Method::InPlane(Variant::FullSlice), 2);
        let mut ops = lower_plane_schedule(&k, &c).ops;
        // Remove the stage barrier: reads now race with the stores.
        let first_barrier = ops.iter().position(|o| matches!(o, Op::Barrier)).unwrap();
        ops.remove(first_barrier);
        let d = verify_ops(&ops);
        assert!(d.iter().any(|x| x.code == "LNT-S002"), "{d:?}");
        assert!(
            !d.iter().any(|x| x.code == "LNT-S001"),
            "fully staged: {d:?}"
        );
    }

    #[test]
    fn missing_stage_is_s001() {
        let c = LaunchConfig::new(32, 8, 1, 1);
        let k = spec(Method::InPlane(Variant::Horizontal), 2);
        let mut ops = lower_plane_schedule(&k, &c).ops;
        // Drop the top-halo stage (the second lowered region).
        let stages: Vec<usize> = ops
            .iter()
            .enumerate()
            .filter(|(_, o)| matches!(o, Op::Stage(_)))
            .map(|(i, _)| i)
            .collect();
        ops.remove(stages[1]);
        let d = verify_ops(&ops);
        assert!(d.iter().any(|x| x.code == "LNT-S001"), "{d:?}");
    }

    #[test]
    fn wrong_barrier_count_is_s003() {
        let c = LaunchConfig::new(32, 8, 1, 1);
        let g = geom(&c, 1);
        let k = spec(Method::InPlane(Variant::FullSlice), 2);
        let mut plan = build_plane_plan(&k, &c, &g, 32);
        plan.syncthreads = 3;
        let d = check_schedule(&k, &c, &plan);
        assert!(d.iter().any(|x| x.code == "LNT-S003"), "{d:?}");
    }

    #[test]
    fn lowered_schedule_has_the_proven_barrier_count() {
        for method in METHODS {
            let c = LaunchConfig::new(16, 4, 1, 2);
            let k = spec(method, 4);
            let proven = method.routine().skeleton(k.radius).barriers_per_plane;
            let ops = lower_plane_schedule(&k, &c).ops;
            let barriers = ops.iter().filter(|o| matches!(o, Op::Barrier)).count();
            assert_eq!(barriers, proven, "{method:?}");
        }
        // The legacy five prove two; the double-buffered routine one.
        assert_eq!(
            Method::ForwardPlane
                .routine()
                .skeleton(2)
                .barriers_per_plane,
            StagePlan::BARRIERS_PER_PLANE
        );
        assert_eq!(
            Method::InPlane(Variant::DoubleBuffered)
                .routine()
                .skeleton(2)
                .barriers_per_plane,
            1
        );
    }

    #[test]
    fn lowered_depths_match_the_methods_table() {
        for method in METHODS {
            for order in [2usize, 4, 8] {
                let c = LaunchConfig::new(32, 8, 1, 1);
                let k = spec(method, order);
                let l = lower_plane_schedule(&k, &c);
                assert_eq!(
                    l.z_depth + l.out_depth - 1,
                    expected_pipeline_words(&k),
                    "{method:?} order {order}"
                );
            }
        }
    }

    #[test]
    fn tampered_pipeline_depth_is_s004() {
        let c = LaunchConfig::new(32, 8, 1, 1);
        let k = spec(Method::ForwardPlane, 4);
        let honest = regs_per_thread(&k, &c);
        assert!(check_pipeline_depth(&k, &c, honest).is_none());
        // A register estimate that dropped one pipeline word per point.
        let d = check_pipeline_depth(&k, &c, honest - c.points_per_thread()).unwrap();
        assert_eq!(d.code, "LNT-S004");
        // A forward-plane estimate claimed for an in-plane spec: one word
        // per point too many.
        let mut lying = k.clone();
        lying.method = Method::InPlane(Variant::Classical);
        let d2 = check_pipeline_depth(&lying, &c, honest).unwrap();
        assert_eq!(d2.code, "LNT-S004");
    }

    #[test]
    fn pipeline_depths_match_table() {
        for order in [2usize, 4, 8] {
            let r = order / 2;
            assert_eq!(
                expected_pipeline_words(&spec(Method::ForwardPlane, order)),
                2 * r + 1
            );
            assert_eq!(
                expected_pipeline_words(&spec(Method::InPlane(Variant::FullSlice), order)),
                2 * r
            );
        }
    }

    #[test]
    fn read_footprint_is_slab_minus_corners() {
        let c = LaunchConfig::new(32, 4, 1, 2);
        let g = geom(&c, 2);
        let fp = read_footprint(&g);
        let slab = Rect::from_spans(g.slab_x(), g.slab_y());
        let left = subtract_all(vec![slab], &fp);
        // Exactly the four r×r corners remain.
        assert_eq!(total_area(&left), 4 * 4);
    }
}
