#![forbid(unsafe_code)]
#![warn(missing_docs)]

//! # stencil-lint
//!
//! A static plan/codegen analyzer for the in-plane stencil method,
//! emitting machine-readable coded diagnostics instead of booleans and
//! runtime panics. Four analyses cover the paper's correctness and
//! tuning stories:
//!
//! * [`feasibility`] — the §IV-C resource constraints, *explained*:
//!   which constraint failed and by how much (`LNT-R…`);
//! * [`schedule`] — a barrier/happens-before proof over the abstract
//!   per-plane schedule: every shared-memory read is dominated by its
//!   staging store plus a barrier, the barrier count is exactly two and
//!   the register-pipeline depth matches the method (`LNT-S…`);
//! * [`coverage`] — the load regions of every variant exactly tile the
//!   halo-framed slab under that variant's documented corner policy —
//!   no gap, no overlap (`LNT-C…`);
//! * [`coalescing`] — a transactions-per-warp-instruction lint over the
//!   lowered [`gpu_sim::WarpLoad`]s, flagging the vertical variant's
//!   column-major side-halo collapse with the measured-vs-ideal ratio
//!   (`LNT-M…`).
//!
//! Two whole-plan passes go beyond the single abstract schedule:
//!
//! * [`dataflow`] — abstract-interprets an entire lowered
//!   [`inplane_core::plan::StagePlan`] with a per-`(buffer, plane)`
//!   region lattice: buffer-lifetime proofs, cross-device
//!   happens-before consistency and schedule-shape checks (`LNT-D…`);
//! * [`traffic`] — a static traffic oracle predicting the instrumented
//!   interpreter's `ExecStats` exactly from the op stream, plus byte
//!   and coalesced-transaction figures per word width.
//!
//! On top of the plan-level passes, [`codegen_text`] lints generated
//! CUDA/OpenCL source (barrier count, `#define` consistency, halo index
//! bounds, declared shared-memory bytes — `LNT-T…`), and [`sweep`] runs
//! everything over a device's full parameter space in parallel.
//!
//! Finally, [`verify`] closes the loop on the emitted text itself: the
//! CUDA/OpenCL source is parsed by [`kernelir`] into a typed AST and
//! abstractly interpreted per thread, proving shared/global bounds,
//! barrier uniformity, race freedom and that the per-plane traffic the
//! kernel issues equals the static oracle exactly (`LNT-K…`).
//!
//! Every finding is a [`Diagnostic`] with a stable code from
//! [`diag::CATALOG`], rendered either human-readable or as JSON.

pub mod coalescing;
pub mod codegen_text;
pub mod coverage;
pub mod dataflow;
pub mod diag;
pub mod feasibility;
pub mod kernelir;
pub mod rect;
pub mod schedule;
pub mod sweep;
pub mod traffic;
pub mod verify;

pub use coalescing::check_coalescing;
pub use codegen_text::{lint_cuda, lint_cuda_source, lint_opencl_source};
pub use coverage::check_coverage;
pub use dataflow::{analyze_plan, DataflowReport};
pub use diag::{
    catalog_severity, describe, has_errors, json_string, Diagnostic, Severity, CATALOG,
};
pub use feasibility::{explain_feasibility, is_feasible};
pub use rect::Rect;
pub use schedule::check_schedule;
pub use sweep::{
    enumerate_configs, lint_config, lint_config_opts, lint_space, lint_space_opts, ConfigLint,
    LintOptions, SweepReport,
};
pub use traffic::{
    padded_stride, padded_stride_for, predict_kernel_traffic, predict_kernel_traffic_for,
    predict_kernel_traffic_on, predict_stats, predict_traffic, predict_traffic_on, KernelTraffic,
    PlaneTraffic, TrafficOracle,
};
pub use verify::{
    verify_cuda_kernel, verify_cuda_kernel_on, verify_kernel_source, verify_kernel_source_on,
    verify_opencl_kernel, verify_opencl_kernel_on,
};
