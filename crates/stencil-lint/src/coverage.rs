//! Region-coverage proof: each variant's load regions exactly tile the
//! halo-framed slab under that variant's documented corner policy.
//!
//! The proof runs on the *logical* region spans (`Region::x`/`Region::y`)
//! — the vector-alignment extension of `Region::extended_x` is
//! deliberately excluded, because alignment slack re-requests elements by
//! design (the §III-C2 fringe, priced by the coalescing model) and must
//! not count as an overlap.
//!
//! Corner policy per variant (Fig 6):
//!
//! * classical / forward-plane: interior + four arms — corners never
//!   staged;
//! * vertical: interior columns span the full slab height, side columns
//!   cover interior rows only — corners never staged;
//! * horizontal: full-width interior rows, top/bottom rows over interior
//!   columns — corners never staged;
//! * full-slice: the whole slab, corners *included* (`4r²` redundant
//!   cells, reported as informational `LNT-C901`).
//!
//! Emitted codes: `LNT-C001` (gap), `LNT-C002` (overlap), `LNT-C003`
//! (corner-free variant staging corners), `LNT-C004` (region outside the
//! slab), `LNT-C901` (info: full-slice corner count).

use crate::diag::Diagnostic;
use crate::rect::{subtract_all, total_area, Rect};
use inplane_core::layout::TileGeometry;
use inplane_core::loadplan::load_regions;
use inplane_core::resources::vector_width;
use inplane_core::{KernelSpec, Method};

/// The four `r × r` corner rectangles of the halo frame.
fn corner_rects(geom: &TileGeometry) -> [Rect; 4] {
    let (sx_s, sx_e) = geom.slab_x();
    let (sy_s, sy_e) = geom.slab_y();
    let (ix_s, ix_e) = geom.interior_x();
    let (iy_s, iy_e) = geom.interior_y();
    [
        Rect {
            x0: sx_s,
            x1: ix_s,
            y0: sy_s,
            y1: iy_s,
        }, // top-left
        Rect {
            x0: ix_e,
            x1: sx_e,
            y0: sy_s,
            y1: iy_s,
        }, // top-right
        Rect {
            x0: sx_s,
            x1: ix_s,
            y0: iy_e,
            y1: sy_e,
        }, // bottom-left
        Rect {
            x0: ix_e,
            x1: sx_e,
            y0: iy_e,
            y1: sy_e,
        }, // bottom-right
    ]
}

/// True when the method's routine stages the slab corners (the
/// full-slice sweep routines).
fn stages_corners(method: Method) -> bool {
    // The skeleton's corner policy is radius-independent; probe at r=1.
    method.routine().skeleton(1).stages_corners
}

/// Prove the load regions of `kernel` tile the halo-framed slab of
/// `geom` exactly: no gap, no overlap, no reach outside the slab, and
/// the variant's corner policy respected.
pub fn check_coverage(kernel: &KernelSpec, geom: &TileGeometry) -> Vec<Diagnostic> {
    let regions = load_regions(kernel.method, geom, vector_width(kernel));
    let rects: Vec<Rect> = regions
        .iter()
        .map(|reg| Rect::from_spans(reg.x, reg.y))
        .collect();
    check_region_rects(kernel.method, &rects, geom)
}

/// Rect-level core of [`check_coverage`]: prove `rects` tile the
/// halo-framed slab of `geom` under `method`'s corner policy. Exposed so
/// tests (and future planners) can check candidate region sets that did
/// not come from [`load_regions`].
pub fn check_region_rects(method: Method, rects: &[Rect], geom: &TileGeometry) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    let slab = Rect::from_spans(geom.slab_x(), geom.slab_y());
    let corners = corner_rects(geom);

    // C004: every region stays inside the slab.
    for (i, r) in rects.iter().enumerate() {
        if !slab.contains(r) {
            diags.push(
                Diagnostic::error(
                    "LNT-C004",
                    format!(
                        "region {i} [{}, {})x[{}, {}) reaches outside the slab",
                        r.x0, r.x1, r.y0, r.y1
                    ),
                )
                .with("region", i)
                .with("variant", method.label()),
            );
        }
    }

    // C002: regions are pairwise disjoint.
    for i in 0..rects.len() {
        for j in (i + 1)..rects.len() {
            if let Some(o) = rects[i].intersect(&rects[j]) {
                diags.push(
                    Diagnostic::error(
                        "LNT-C002",
                        format!(
                            "regions {i} and {j} overlap on [{}, {})x[{}, {}) ({} cells)",
                            o.x0,
                            o.x1,
                            o.y0,
                            o.y1,
                            o.area()
                        ),
                    )
                    .with("region_a", i)
                    .with("region_b", j)
                    .with("cells", o.area()),
                );
            }
        }
    }

    // Corner policy.
    if stages_corners(method) {
        diags.push(
            Diagnostic::info(
                "LNT-C901",
                format!(
                    "full-slice stages {} redundant corner cells (4r^2, r = {})",
                    geom.corner_elems(),
                    geom.r
                ),
            )
            .with("corner_cells", geom.corner_elems())
            .with("radius", geom.r),
        );
    } else {
        for (i, r) in rects.iter().enumerate() {
            for (ci, corner) in corners.iter().enumerate() {
                if let Some(o) = r.intersect(corner) {
                    diags.push(
                        Diagnostic::error(
                            "LNT-C003",
                            format!(
                                "corner-free variant {} stages {} corner cells (region {i}, corner {ci})",
                                method.label(),
                                o.area()
                            ),
                        )
                        .with("region", i)
                        .with("corner", ci)
                        .with("cells", o.area()),
                    );
                }
            }
        }
    }

    // C001: the regions cover the variant's whole domain — the slab,
    // minus the corners for corner-free variants.
    let domain = if stages_corners(method) {
        vec![slab]
    } else {
        subtract_all(vec![slab], &corners)
    };
    let gaps = subtract_all(domain, rects);
    if !gaps.is_empty() {
        let g = gaps[0];
        diags.push(
            Diagnostic::error(
                "LNT-C001",
                format!(
                    "load regions leave {} uncovered cells in {} gap rectangles (first: [{}, {})x[{}, {}))",
                    total_area(&gaps),
                    gaps.len(),
                    g.x0,
                    g.x1,
                    g.y0,
                    g.y1
                ),
            )
            .with("cells", total_area(&gaps))
            .with("gap_rects", gaps.len())
            .with("variant", method.label()),
        );
    }

    diags
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::diag::has_errors;
    use inplane_core::LaunchConfig;
    use inplane_core::Variant;
    use stencil_grid::Precision;

    fn geom(c: &LaunchConfig, r: usize) -> TileGeometry {
        TileGeometry::interior(c, r, 4, 512, 128)
    }

    fn spec(method: Method, order: usize) -> KernelSpec {
        KernelSpec::star_order(method, order, Precision::Single)
    }

    #[test]
    fn all_methods_tile_exactly() {
        let methods: Vec<Method> = inplane_core::registry()
            .iter()
            .map(|rt| rt.method())
            .collect();
        for method in methods {
            for order in [2usize, 4, 8, 12] {
                for c in [
                    LaunchConfig::new(32, 8, 1, 1),
                    LaunchConfig::new(64, 2, 2, 4),
                ] {
                    let g = geom(&c, order / 2);
                    let d = check_coverage(&spec(method, order), &g);
                    assert!(
                        !has_errors(&d),
                        "{method:?} order {order} {c}: {:?}",
                        d.iter().map(|x| x.render()).collect::<Vec<_>>()
                    );
                }
            }
        }
    }

    #[test]
    fn full_slice_reports_corner_info() {
        let c = LaunchConfig::new(32, 8, 1, 1);
        let g = geom(&c, 2);
        let d = check_coverage(&spec(Method::InPlane(Variant::FullSlice), 4), &g);
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].code, "LNT-C901");
        assert!(d[0].message.contains("16"), "4r^2 = 16 for r = 2");
    }

    #[test]
    fn corner_free_variants_emit_no_info() {
        let c = LaunchConfig::new(32, 8, 1, 1);
        let g = geom(&c, 2);
        for method in [
            Method::ForwardPlane,
            Method::InPlane(Variant::Vertical),
            Method::InPlane(Variant::Horizontal),
        ] {
            let d = check_coverage(&spec(method, 4), &g);
            assert!(d.is_empty(), "{method:?}: {d:?}");
        }
    }

    #[test]
    fn dropped_region_is_c001() {
        // A planner that forgets a region leaves a gap: drop the last
        // region the horizontal variant plans (the bottom halo rows).
        let c = LaunchConfig::new(32, 8, 1, 1);
        let g = geom(&c, 2);
        let method = Method::InPlane(Variant::Horizontal);
        let mut rects: Vec<Rect> = load_regions(method, &g, 4)
            .iter()
            .map(|r| Rect::from_spans(r.x, r.y))
            .collect();
        let dropped = rects.pop().expect("horizontal plans several regions");
        let d = check_region_rects(method, &rects, &g);
        let c001 = d
            .iter()
            .find(|x| x.code == "LNT-C001")
            .expect("gap flagged");
        assert!(
            c001.context
                .iter()
                .any(|(k, v)| *k == "cells" && *v == dropped.area().to_string()),
            "{d:?}"
        );
    }

    #[test]
    fn duplicated_region_is_c002() {
        let c = LaunchConfig::new(32, 8, 1, 1);
        let g = geom(&c, 2);
        let method = Method::InPlane(Variant::FullSlice);
        let mut rects: Vec<Rect> = load_regions(method, &g, 4)
            .iter()
            .map(|r| Rect::from_spans(r.x, r.y))
            .collect();
        rects.push(rects[0]);
        let d = check_region_rects(method, &rects, &g);
        assert!(d.iter().any(|x| x.code == "LNT-C002"), "{d:?}");
    }

    #[test]
    fn corner_staging_by_corner_free_variant_is_c003() {
        // Hand the classical variant the full-slice rect set: it covers
        // the corners it must never stage.
        let c = LaunchConfig::new(32, 8, 1, 1);
        let g = geom(&c, 2);
        let rects: Vec<Rect> = load_regions(Method::InPlane(Variant::FullSlice), &g, 4)
            .iter()
            .map(|r| Rect::from_spans(r.x, r.y))
            .collect();
        let d = check_region_rects(Method::InPlane(Variant::Classical), &rects, &g);
        assert!(d.iter().any(|x| x.code == "LNT-C003"), "{d:?}");
    }

    #[test]
    fn out_of_slab_region_is_c004() {
        let c = LaunchConfig::new(32, 8, 1, 1);
        let g = geom(&c, 2);
        let method = Method::InPlane(Variant::FullSlice);
        let mut rects: Vec<Rect> = load_regions(method, &g, 4)
            .iter()
            .map(|r| Rect::from_spans(r.x, r.y))
            .collect();
        rects[0].x1 += 1; // one column past the slab edge
        let d = check_region_rects(method, &rects, &g);
        assert!(d.iter().any(|x| x.code == "LNT-C004"), "{d:?}");
    }

    #[test]
    fn corner_rects_have_r_squared_cells_each() {
        let c = LaunchConfig::new(32, 4, 1, 2);
        let g = geom(&c, 3);
        let corners = corner_rects(&g);
        for r in &corners {
            assert_eq!(r.area(), 9);
        }
        // Pairwise disjoint.
        for i in 0..4 {
            for j in (i + 1)..4 {
                assert!(corners[i].intersect(&corners[j]).is_none());
            }
        }
    }
}
