//! The symbolic kernel verifier: prove the *emitted* CUDA/OpenCL
//! source correct by abstract interpretation of its AST (`LNT-K…`).
//!
//! The plan-level passes prove the abstract schedule; this pass closes
//! the gap to the text the paper actually compiles. The kernel source
//! is parsed by [`crate::kernelir`] into a typed AST and executed
//! thread-by-thread with concrete index arithmetic and
//! provenance-hashed data values, parameterized by the same
//! `(TX, TY, RX, RY, radius, VW, grid dims)` tuple the tuner
//! enumerates. Per configuration the verifier proves:
//!
//! * **K001** — every shared/local array access lands inside its
//!   declared extents;
//! * **K002** — every global access lands inside the padded buffer and
//!   vector loads are lane-aligned;
//! * **K003** — every thread executes the *same* barrier sequence (no
//!   barrier under divergent control flow), and the total count equals
//!   the routine's proven schedule (`barriers_per_plane × trips`) — a
//!   dropped *or* duplicated barrier both fail;
//! * **K004** — between consecutive barriers, no two writes to the
//!   same shared cell carry different values and no cross-thread
//!   read-write pair touches the same cell (write-write of the *same*
//!   staged value is benign — the vertical slab's overlap);
//! * **K005** — the per-plane global-load cell and coalesced-segment
//!   figures re-derived from the AST's load events equal
//!   [`crate::traffic::predict_kernel_traffic`] exactly (over the
//!   device's `coalesce_segment_bytes` for the `_on` entry points —
//!   64-byte segments on wave64/GCN parts), and the store total equals
//!   [`crate::traffic::predict_traffic`]'s `global_writes` — the
//!   traffic oracle proven three ways (interpreter = plan walk =
//!   emitted text);
//! * **K006** — the source stays inside the verified subset: it
//!   parses, declares the routine's exact array shapes, evaluates
//!   without error and terminates within the step budget.
//!
//! Diagnostics carry line/column positions and, when the generated
//! kernel's [`SourceAnchor`]s are supplied, the emitter phase the
//! finding lands in (`phase = stage left halo`).

use crate::diag::Diagnostic;
use crate::kernelir::lexer::Pos;
use crate::kernelir::{parse_kernel, run_block, BlockEvents, LaunchEnv, Violation, ViolationKind};
use crate::traffic::{
    padded_stride_for, predict_kernel_traffic_for, predict_traffic, row_transactions,
    KernelTraffic, COALESCE_SEGMENT_BYTES,
};
use gpu_sim::DeviceSpec;
use inplane_core::plan::lower_step;
use inplane_core::resources::vector_width;
use inplane_core::{ComputeShape, KernelSpec, LaunchConfig};
use std::collections::{BTreeMap, HashSet};
use stencil_codegen::{generate_kernel, generate_opencl_kernel_full, SourceAnchor};

/// Generate the CUDA kernel for `(spec, config)` and verify it against
/// `dims` (full halo-framed extents; the interior must tile exactly),
/// assuming the legacy 128-byte coalescing geometry.
pub fn verify_cuda_kernel(
    spec: &KernelSpec,
    config: &LaunchConfig,
    dims: (usize, usize, usize),
) -> Vec<Diagnostic> {
    let k = generate_kernel(spec, config);
    verify_source_for(
        &k.source,
        &k.name,
        &k.anchors,
        spec,
        config,
        dims,
        COALESCE_SEGMENT_BYTES,
    )
}

/// [`verify_cuda_kernel`] against `device`'s coalescing geometry: the
/// abstract interpreter runs with the segment-padded host stride and
/// K005 re-derives transactions over `device.coalesce_segment_bytes`
/// segments. The emitted text is unchanged — kernels take
/// `stride`/`pstride` as runtime arguments.
pub fn verify_cuda_kernel_on(
    spec: &KernelSpec,
    config: &LaunchConfig,
    dims: (usize, usize, usize),
    device: &DeviceSpec,
) -> Vec<Diagnostic> {
    let k = generate_kernel(spec, config);
    verify_source_for(
        &k.source,
        &k.name,
        &k.anchors,
        spec,
        config,
        dims,
        device.coalesce_segment_bytes,
    )
}

/// Generate the OpenCL kernel for `(spec, config)` and verify it.
///
/// # Panics
/// Panics for routines without an OpenCL port (`opencl_supported`
/// false), like the generator itself.
pub fn verify_opencl_kernel(
    spec: &KernelSpec,
    config: &LaunchConfig,
    dims: (usize, usize, usize),
) -> Vec<Diagnostic> {
    let k = generate_opencl_kernel_full(spec, config);
    verify_source_for(
        &k.source,
        &k.name,
        &k.anchors,
        spec,
        config,
        dims,
        COALESCE_SEGMENT_BYTES,
    )
}

/// [`verify_opencl_kernel`] against `device`'s coalescing geometry.
///
/// # Panics
/// Panics for routines without an OpenCL port, like the generator.
pub fn verify_opencl_kernel_on(
    spec: &KernelSpec,
    config: &LaunchConfig,
    dims: (usize, usize, usize),
    device: &DeviceSpec,
) -> Vec<Diagnostic> {
    let k = generate_opencl_kernel_full(spec, config);
    verify_source_for(
        &k.source,
        &k.name,
        &k.anchors,
        spec,
        config,
        dims,
        device.coalesce_segment_bytes,
    )
}

/// Verify arbitrary kernel `source` claiming to implement
/// `(spec, config)` over `dims`, assuming the legacy 128-byte
/// coalescing geometry. `expected_name` is the routine's kernel
/// function name; `anchors` (possibly empty) label emitter phases for
/// diagnostics.
///
/// # Panics
/// Panics when `dims` does not tile exactly: the interior extents
/// must be positive multiples of the tile, and `nz >= 2r + 1`.
pub fn verify_kernel_source(
    source: &str,
    expected_name: &str,
    anchors: &[SourceAnchor],
    spec: &KernelSpec,
    config: &LaunchConfig,
    dims: (usize, usize, usize),
) -> Vec<Diagnostic> {
    verify_source_for(
        source,
        expected_name,
        anchors,
        spec,
        config,
        dims,
        COALESCE_SEGMENT_BYTES,
    )
}

/// [`verify_kernel_source`] against `device`'s coalescing geometry.
///
/// # Panics
/// Panics when `dims` does not tile exactly, like the legacy entry.
pub fn verify_kernel_source_on(
    source: &str,
    expected_name: &str,
    anchors: &[SourceAnchor],
    spec: &KernelSpec,
    config: &LaunchConfig,
    dims: (usize, usize, usize),
    device: &DeviceSpec,
) -> Vec<Diagnostic> {
    verify_source_for(
        source,
        expected_name,
        anchors,
        spec,
        config,
        dims,
        device.coalesce_segment_bytes,
    )
}

/// The generic verifier, parameterized on the coalescing segment size
/// the host allocator pads rows to.
#[allow(clippy::too_many_arguments)]
fn verify_source_for(
    source: &str,
    expected_name: &str,
    anchors: &[SourceAnchor],
    spec: &KernelSpec,
    config: &LaunchConfig,
    dims: (usize, usize, usize),
    seg: u64,
) -> Vec<Diagnostic> {
    let r = spec.radius as i64;
    let vw = vector_width(spec).max(1) as i64;
    let (wx, wy) = (config.tile_x() as i64, config.tile_y() as i64);
    let (nx, ny, nz) = (dims.0 as i64, dims.1 as i64, dims.2 as i64);
    assert!(
        nx > 2 * r && (nx - 2 * r) % wx == 0,
        "interior x extent must be a positive multiple of the tile width"
    );
    assert!(
        ny > 2 * r && (ny - 2 * r) % wy == 0,
        "interior y extent must be a positive multiple of the tile height"
    );
    assert!(nz > 2 * r, "nz must cover the full stencil depth");

    let mut diags = Vec::new();
    let kernel = match parse_kernel(source) {
        Ok(k) => k,
        Err(e) => {
            diags.push(
                Diagnostic::error("LNT-K006", format!("kernel does not parse: {}", e.msg))
                    .with("line", e.pos.line)
                    .with("col", e.pos.col),
            );
            return diags;
        }
    };

    if kernel.name != expected_name {
        diags.push(
            Diagnostic::error(
                "LNT-K006",
                format!(
                    "kernel function is named {:?}, routine expects {:?}",
                    kernel.name, expected_name
                ),
            )
            .with("expected", expected_name),
        );
    }
    check_shapes(&kernel, spec, config, vw, &mut diags);
    if !diags.is_empty() {
        // Ill-shaped declarations make interpretation meaningless
        // (every index check would compare against the wrong extents).
        return diags;
    }

    let routine = spec.method.routine();
    let sk = routine.skeleton(spec.radius);
    let stride = padded_stride_for(dims.0, spec.elem_bytes, seg) as i64;
    let (gx, gy) = ((nx - 2 * r) / wx, (ny - 2 * r) / wy);
    let env = LaunchEnv {
        block: (config.tx as i64, config.ty as i64),
        grid: (gx, gy),
        nx,
        ny,
        nz,
        stride,
        pstride: stride * ny,
        coeff_len: r + 1,
        step_budget: step_budget(spec, config, nz),
    };

    let mut derived = KernelTraffic {
        word_bytes: spec.elem_bytes as u64,
        ..KernelTraffic::default()
    };
    let mut seen: HashSet<(ViolationKind, Pos)> = HashSet::new();
    let mut barriers_executed: Option<usize> = None;
    for by in 0..gy {
        for bx in 0..gx {
            let events = run_block(&kernel, &env, bx, by);
            for v in &events.violations {
                if seen.insert((v.kind, v.pos)) {
                    diags.push(violation_diag(v, anchors));
                }
            }
            let n = events.barrier_trace.len();
            barriers_executed = Some(barriers_executed.map_or(n, |m| m.max(n)));
            accumulate_traffic(&events, &env, &mut derived, seg);
        }
    }

    // K003, count side: the schedule proves exactly
    // barriers_per_plane × trips barriers per thread.
    let trips = (nz - r - sk.sweep_tail as i64).max(0) as usize;
    let expected_barriers = sk.barriers_per_plane * trips;
    if barriers_executed != Some(expected_barriers) {
        diags.push(
            Diagnostic::error(
                "LNT-K003",
                "executed barrier count deviates from the proven schedule".to_string(),
            )
            .with("executed", barriers_executed.unwrap_or(0))
            .with("expected", expected_barriers)
            .with("barriers_per_plane", sk.barriers_per_plane)
            .with("trips", trips),
        );
    }

    // K005: only meaningful for kernels that executed cleanly.
    if diags.is_empty() {
        let plan = lower_step(spec.method, config, spec.radius, dims);
        let oracle = predict_kernel_traffic_for(&plan, spec, seg);
        compare_traffic(&derived, &oracle, &mut diags);
        let stats = predict_traffic(&plan, spec.precision()).stats;
        if derived.total_store_cells() != stats.global_writes {
            diags.push(
                Diagnostic::error(
                    "LNT-K005",
                    "total stores disagree with the plan oracle's global_writes".to_string(),
                )
                .with("kernel", derived.total_store_cells())
                .with("plan", stats.global_writes),
            );
        }
    }
    diags
}

/// K006 shape checks: the routine's exact shared/local array shapes,
/// derived from the spec and config — *not* from the kernel's own
/// `#define`s, so a tampered define cannot vouch for itself.
fn check_shapes(
    kernel: &crate::kernelir::ast::Kernel,
    spec: &KernelSpec,
    config: &LaunchConfig,
    vw: i64,
    diags: &mut Vec<Diagnostic>,
) {
    let r = spec.radius as i64;
    let smem_w = config.tile_x() as i64 + 2 * r + 2 * vw;
    let smem_h = config.tile_y() as i64 + 2 * r;
    let (rx, ry) = (config.rx as i64, config.ry as i64);
    let routine = spec.method.routine();

    let mut expect_shared = |name: &str, dims: Vec<i64>| {
        let found = kernel
            .syms
            .lookup(name)
            .and_then(|s| kernel.shared.iter().find(|d| d.name == s));
        match found {
            None => diags.push(Diagnostic::error(
                "LNT-K006",
                format!("missing shared array {name:?}"),
            )),
            Some(d) if d.dims != dims => diags.push(
                Diagnostic::error(
                    "LNT-K006",
                    format!(
                        "shared array {name:?} has shape {:?}, expected {dims:?}",
                        d.dims
                    ),
                )
                .with("line", d.pos.line),
            ),
            Some(_) => {}
        }
    };
    if routine.staging_buffers() == 2 {
        expect_shared("tile_pair", vec![2, smem_h, smem_w]);
    } else {
        expect_shared("tile", vec![smem_h, smem_w]);
    }

    let mut expect_local = |name: &str, dims: Vec<i64>| {
        let found = kernel
            .syms
            .lookup(name)
            .and_then(|s| kernel.local_arrays.iter().find(|(n, _)| *n == s));
        match found {
            None => diags.push(Diagnostic::error(
                "LNT-K006",
                format!("missing per-thread array {name:?}"),
            )),
            Some((_, d)) if *d != dims => diags.push(Diagnostic::error(
                "LNT-K006",
                format!("per-thread array {name:?} has shape {d:?}, expected {dims:?}"),
            )),
            Some(_) => {}
        }
    };
    match routine.skeleton(spec.radius).compute {
        ComputeShape::Direct => expect_local("pipe", vec![ry, rx, 2 * r + 1]),
        ComputeShape::Pipelined => {
            expect_local("zhist", vec![ry, rx, r]);
            expect_local("queue", vec![ry, rx, r]);
        }
    }

    // CUDA kernels declare the constant coefficient array; its extent
    // must be exactly r + 1. (OpenCL passes coefficients as an
    // argument — no declaration to check.)
    if let Some(n) = kernel.coeff_len {
        if n != r + 1 {
            diags.push(
                Diagnostic::error(
                    "LNT-K006",
                    format!("coefficient array has extent {n}, expected R + 1"),
                )
                .with("expected", r + 1),
            );
        }
    }
}

/// A per-thread statement budget generous enough for any correct
/// kernel at these parameters, but tight enough that a runaway loop is
/// caught quickly.
fn step_budget(spec: &KernelSpec, config: &LaunchConfig, nz: i64) -> u64 {
    let r = spec.radius as u64;
    let vw = vector_width(spec).max(1) as u64;
    let smem = (config.tile_x() as u64 + 2 * r + 2 * vw) * (config.tile_y() as u64 + 2 * r);
    let nt = (config.tx * config.ty) as u64;
    let per_plane = 12 * (2 * smem / nt + 2) + (config.rx * config.ry) as u64 * (8 * r + 48);
    (nz as u64 + 2) * per_plane * 8 + 4096
}

/// Map one interpreter violation to its catalogued diagnostic.
fn violation_diag(v: &Violation, anchors: &[SourceAnchor]) -> Diagnostic {
    let code = match v.kind {
        ViolationKind::SharedOob | ViolationKind::LocalOob => "LNT-K001",
        ViolationKind::GlobalOob => "LNT-K002",
        ViolationKind::BarrierDivergence => "LNT-K003",
        ViolationKind::SharedRace => "LNT-K004",
        ViolationKind::Eval | ViolationKind::Budget => "LNT-K006",
    };
    let mut d = Diagnostic::error(code, v.detail.clone())
        .with("line", v.pos.line)
        .with("col", v.pos.col);
    if let Some(label) = phase_of(anchors, v.pos.line as usize) {
        d = d.with("phase", label);
    }
    d
}

/// The innermost emitter phase at or above `line`.
fn phase_of(anchors: &[SourceAnchor], line: usize) -> Option<&'static str> {
    anchors
        .iter()
        .rev()
        .find(|a| a.line <= line)
        .map(|a| a.label)
}

/// Fold one block's load/store events into the derived per-plane
/// traffic map. Loads are grouped per (site, buffer row) — distinct
/// blocks issue distinct transactions, so grouping never crosses a
/// block — then maximal contiguous runs are counted with the same
/// segment arithmetic as the oracle.
fn accumulate_traffic(events: &BlockEvents, env: &LaunchEnv, out: &mut KernelTraffic, seg: u64) {
    let mut rows: BTreeMap<(Pos, i64), Vec<i64>> = BTreeMap::new();
    for a in &events.loads {
        for lane in 0..a.len as i64 {
            let addr = a.addr + lane;
            rows.entry((a.pos, addr / env.stride))
                .or_default()
                .push(addr);
        }
    }
    for ((_site, _row), mut addrs) in rows {
        addrs.sort_unstable();
        let plane = (addrs[0] / env.pstride) as u64;
        let entry = out.loads.entry(plane).or_default();
        entry.cells += addrs.len() as u64;
        let (mut start, mut prev) = (addrs[0], addrs[0]);
        for &a in &addrs[1..] {
            if a == prev + 1 {
                prev = a;
                continue;
            }
            // A duplicate or a gap both end the run; duplicates inflate
            // the transaction count and fail the K005 comparison.
            entry.transactions +=
                row_transactions(start as u64, (prev - start + 1) as u64, out.word_bytes, seg);
            start = a;
            prev = a;
        }
        entry.transactions +=
            row_transactions(start as u64, (prev - start + 1) as u64, out.word_bytes, seg);
    }
    for s in &events.stores {
        for lane in 0..s.len as i64 {
            *out.stores
                .entry(((s.addr + lane) / env.pstride) as u64)
                .or_insert(0) += 1;
        }
    }
}

/// K005: exact per-plane equality of the derived and predicted maps.
fn compare_traffic(derived: &KernelTraffic, oracle: &KernelTraffic, diags: &mut Vec<Diagnostic>) {
    if derived == oracle {
        return;
    }
    const MAX_PLANE_DIAGS: usize = 4;
    let mut reported = 0usize;
    let planes: std::collections::BTreeSet<u64> = derived
        .loads
        .keys()
        .chain(oracle.loads.keys())
        .chain(derived.stores.keys())
        .chain(oracle.stores.keys())
        .copied()
        .collect();
    for p in planes {
        let d_load = derived.loads.get(&p).copied().unwrap_or_default();
        let o_load = oracle.loads.get(&p).copied().unwrap_or_default();
        let d_store = derived.stores.get(&p).copied().unwrap_or(0);
        let o_store = oracle.stores.get(&p).copied().unwrap_or(0);
        if d_load == o_load && d_store == o_store {
            continue;
        }
        if reported == MAX_PLANE_DIAGS {
            diags.push(Diagnostic::error(
                "LNT-K005",
                "further planes disagree with the traffic oracle (truncated)".to_string(),
            ));
            return;
        }
        reported += 1;
        diags.push(
            Diagnostic::error(
                "LNT-K005",
                format!("plane {p} traffic disagrees with the static oracle"),
            )
            .with("plane", p)
            .with("kernel_cells", d_load.cells)
            .with("oracle_cells", o_load.cells)
            .with("kernel_transactions", d_load.transactions)
            .with("oracle_transactions", o_load.transactions)
            .with("kernel_stores", d_store)
            .with("oracle_stores", o_store),
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use inplane_core::{Method, Variant};
    use stencil_grid::Precision;

    fn dims_for(
        spec: &KernelSpec,
        config: &LaunchConfig,
        gx: usize,
        gy: usize,
    ) -> (usize, usize, usize) {
        let r = spec.radius;
        (
            2 * r + gx * config.tile_x(),
            2 * r + gy * config.tile_y(),
            2 * r + 2,
        )
    }

    #[test]
    fn generated_cuda_kernels_verify_clean() {
        for routine in inplane_core::registry() {
            let method = routine.method();
            let spec = KernelSpec::star_order(method, 4, Precision::Single);
            let config = LaunchConfig::new(8, 2, 1, 2);
            let dims = dims_for(&spec, &config, 1, 1);
            let diags = verify_cuda_kernel(&spec, &config, dims);
            assert!(diags.is_empty(), "{method}: {:?}", diags);
        }
    }

    #[test]
    fn generated_opencl_kernels_verify_clean() {
        for method in [Method::ForwardPlane, Method::InPlane(Variant::FullSlice)] {
            let spec = KernelSpec::star_order(method, 4, Precision::Double);
            let config = LaunchConfig::new(8, 2, 1, 2);
            let dims = dims_for(&spec, &config, 2, 1);
            let diags = verify_opencl_kernel(&spec, &config, dims);
            assert!(diags.is_empty(), "{method}: {:?}", diags);
        }
    }

    #[test]
    fn generated_kernels_verify_clean_on_wave64_geometry() {
        // The same emitted text must pass the three-way proof under
        // the 64-byte segment geometry: kernels take stride/pstride as
        // runtime arguments, so only the abstract launch env changes.
        let hd7970 = gpu_sim::DeviceSpec::hd7970();
        for routine in inplane_core::registry() {
            let method = routine.method();
            let spec = KernelSpec::star_order(method, 4, Precision::Single);
            let config = LaunchConfig::new(8, 2, 1, 2);
            let dims = dims_for(&spec, &config, 1, 1);
            let diags = verify_cuda_kernel_on(&spec, &config, dims, &hd7970);
            assert!(diags.is_empty(), "{method}: {:?}", diags);
        }
        let spec =
            KernelSpec::star_order(Method::InPlane(Variant::FullSlice), 4, Precision::Double);
        let config = LaunchConfig::new(8, 2, 1, 2);
        let dims = dims_for(&spec, &config, 2, 1);
        let diags = verify_opencl_kernel_on(&spec, &config, dims, &hd7970);
        assert!(diags.is_empty(), "{:?}", diags);
    }

    #[test]
    fn dropped_barrier_is_flagged() {
        let spec =
            KernelSpec::star_order(Method::InPlane(Variant::FullSlice), 4, Precision::Single);
        let config = LaunchConfig::new(8, 2, 1, 2);
        let k = generate_kernel(&spec, &config);
        let tampered = k.source.replacen("__syncthreads();", "", 1);
        let dims = dims_for(&spec, &config, 1, 1);
        let diags = verify_kernel_source(&tampered, &k.name, &k.anchors, &spec, &config, dims);
        assert!(
            diags.iter().any(|d| d.code.starts_with("LNT-K")),
            "{diags:?}"
        );
    }

    #[test]
    fn unparseable_source_is_k006() {
        let spec = KernelSpec::star_order(Method::ForwardPlane, 2, Precision::Single);
        let config = LaunchConfig::new(8, 2, 1, 1);
        let dims = dims_for(&spec, &config, 1, 1);
        let diags = verify_kernel_source(
            "void broken(",
            "stencil_forward_plane",
            &[],
            &spec,
            &config,
            dims,
        );
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].code, "LNT-K006");
    }

    #[test]
    fn wrong_kernel_name_is_k006() {
        let spec = KernelSpec::star_order(Method::ForwardPlane, 2, Precision::Single);
        let config = LaunchConfig::new(8, 2, 1, 1);
        let k = generate_kernel(&spec, &config);
        let dims = dims_for(&spec, &config, 1, 1);
        let diags = verify_kernel_source(
            &k.source,
            "some_other_name",
            &k.anchors,
            &spec,
            &config,
            dims,
        );
        assert!(diags.iter().any(|d| d.code == "LNT-K006"), "{diags:?}");
    }

    #[test]
    fn shifted_refill_plane_breaks_the_oracle() {
        // Mutate the forward refill to fetch plane z + R + 2: every
        // address stays representable, but the per-plane map shifts —
        // only K005 (or a final-plane K002) can catch it.
        let spec = KernelSpec::star_order(Method::ForwardPlane, 2, Precision::Single);
        let config = LaunchConfig::new(8, 2, 1, 1);
        let k = generate_kernel(&spec, &config);
        let tampered = k.source.replace("(z + R + 1)", "(z + R + 2)");
        assert_ne!(tampered, k.source);
        let dims = dims_for(&spec, &config, 1, 1);
        let diags = verify_kernel_source(&tampered, &k.name, &k.anchors, &spec, &config, dims);
        assert!(
            diags
                .iter()
                .any(|d| d.code == "LNT-K005" || d.code == "LNT-K002"),
            "{diags:?}"
        );
    }

    #[test]
    fn phase_labels_attach_to_findings() {
        let anchors = [
            SourceAnchor {
                label: "defines",
                line: 1,
            },
            SourceAnchor {
                label: "compute",
                line: 40,
            },
        ];
        assert_eq!(phase_of(&anchors, 1), Some("defines"));
        assert_eq!(phase_of(&anchors, 39), Some("defines"));
        assert_eq!(phase_of(&anchors, 400), Some("compute"));
    }
}
