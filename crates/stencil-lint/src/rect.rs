//! Exact rectangle arithmetic for the coverage and schedule proofs.
//!
//! The analyzer proves "no gap, no overlap" over slabs that can reach a
//! few thousand cells on a side (`TX·RX` up to 4096), so the proofs are
//! carried out on half-open rectangles — area sums, pairwise
//! intersection and rectangle subtraction — rather than per-cell
//! bitmaps. The property tests cross-validate the rectangle algebra
//! against per-cell counting on small instances.

/// A half-open axis-aligned rectangle `[x0, x1) × [y0, y1)` in grid
/// coordinates.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Rect {
    /// Inclusive left edge.
    pub x0: isize,
    /// Exclusive right edge.
    pub x1: isize,
    /// Inclusive top edge.
    pub y0: isize,
    /// Exclusive bottom edge.
    pub y1: isize,
}

impl Rect {
    /// Build from the `(start, end)` span pairs the load planner uses.
    pub fn from_spans(x: (isize, isize), y: (isize, isize)) -> Self {
        Rect {
            x0: x.0,
            x1: x.1,
            y0: y.0,
            y1: y.1,
        }
    }

    /// True when the rectangle contains no cells.
    pub fn is_empty(&self) -> bool {
        self.x0 >= self.x1 || self.y0 >= self.y1
    }

    /// Number of cells covered.
    pub fn area(&self) -> u64 {
        if self.is_empty() {
            0
        } else {
            (self.x1 - self.x0) as u64 * (self.y1 - self.y0) as u64
        }
    }

    /// The overlap with `other`, if any.
    pub fn intersect(&self, other: &Rect) -> Option<Rect> {
        let r = Rect {
            x0: self.x0.max(other.x0),
            x1: self.x1.min(other.x1),
            y0: self.y0.max(other.y0),
            y1: self.y1.min(other.y1),
        };
        if r.is_empty() {
            None
        } else {
            Some(r)
        }
    }

    /// True when `other` lies entirely inside `self` (empty rectangles
    /// are contained everywhere).
    pub fn contains(&self, other: &Rect) -> bool {
        other.is_empty()
            || (self.x0 <= other.x0
                && other.x1 <= self.x1
                && self.y0 <= other.y0
                && other.y1 <= self.y1)
    }

    /// True when the cell `(x, y)` is inside.
    pub fn contains_cell(&self, x: isize, y: isize) -> bool {
        self.x0 <= x && x < self.x1 && self.y0 <= y && y < self.y1
    }

    /// `self` minus `cut`: at most four disjoint rectangles.
    pub fn subtract(&self, cut: &Rect) -> Vec<Rect> {
        let Some(overlap) = self.intersect(cut) else {
            return if self.is_empty() {
                Vec::new()
            } else {
                vec![*self]
            };
        };
        let mut out = Vec::with_capacity(4);
        // Band above the cut.
        if self.y0 < overlap.y0 {
            out.push(Rect {
                y1: overlap.y0,
                ..*self
            });
        }
        // Band below the cut.
        if overlap.y1 < self.y1 {
            out.push(Rect {
                y0: overlap.y1,
                ..*self
            });
        }
        // Left and right slivers within the cut's row band.
        if self.x0 < overlap.x0 {
            out.push(Rect {
                x1: overlap.x0,
                y0: overlap.y0,
                y1: overlap.y1,
                ..*self
            });
        }
        if overlap.x1 < self.x1 {
            out.push(Rect {
                x0: overlap.x1,
                y0: overlap.y0,
                y1: overlap.y1,
                ..*self
            });
        }
        out
    }
}

/// Subtract every rectangle in `cuts` from every rectangle in `base`,
/// returning the (disjoint) leftovers.
pub fn subtract_all(base: Vec<Rect>, cuts: &[Rect]) -> Vec<Rect> {
    let mut remaining = base;
    for cut in cuts {
        let mut next = Vec::with_capacity(remaining.len());
        for r in &remaining {
            next.extend(r.subtract(cut));
        }
        remaining = next;
    }
    remaining.retain(|r| !r.is_empty());
    remaining
}

/// Total area of a set of (assumed disjoint) rectangles.
pub fn total_area(rects: &[Rect]) -> u64 {
    rects.iter().map(Rect::area).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(x0: isize, x1: isize, y0: isize, y1: isize) -> Rect {
        Rect { x0, x1, y0, y1 }
    }

    #[test]
    fn area_and_empty() {
        assert_eq!(r(0, 4, 0, 3).area(), 12);
        assert!(r(2, 2, 0, 5).is_empty());
        assert_eq!(r(5, 2, 0, 5).area(), 0);
    }

    #[test]
    fn intersection() {
        assert_eq!(r(0, 4, 0, 4).intersect(&r(2, 6, 2, 6)), Some(r(2, 4, 2, 4)));
        assert_eq!(r(0, 4, 0, 4).intersect(&r(4, 8, 0, 4)), None);
    }

    #[test]
    fn subtract_interior_hole_gives_four_bands() {
        let base = r(0, 10, 0, 10);
        let hole = r(3, 7, 3, 7);
        let parts = base.subtract(&hole);
        assert_eq!(parts.len(), 4);
        assert_eq!(total_area(&parts), 100 - 16);
        // Parts are pairwise disjoint and avoid the hole.
        for (i, a) in parts.iter().enumerate() {
            assert!(a.intersect(&hole).is_none());
            for b in parts.iter().skip(i + 1) {
                assert!(a.intersect(b).is_none());
            }
        }
    }

    #[test]
    fn subtract_disjoint_is_identity() {
        let base = r(0, 4, 0, 4);
        assert_eq!(base.subtract(&r(10, 12, 0, 4)), vec![base]);
    }

    #[test]
    fn subtract_superset_is_empty() {
        assert!(r(2, 4, 2, 4).subtract(&r(0, 10, 0, 10)).is_empty());
    }

    #[test]
    fn subtract_all_matches_per_cell_counting() {
        // Randomised-ish small cases, checked cell by cell.
        let base = vec![r(0, 9, 0, 7)];
        let cuts = [r(0, 3, 0, 7), r(3, 9, 0, 2), r(5, 7, 4, 6)];
        let left = subtract_all(base, &cuts);
        for y in 0..7 {
            for x in 0..9 {
                let in_cut = cuts.iter().any(|c| c.contains_cell(x, y));
                let in_left = left.iter().filter(|l| l.contains_cell(x, y)).count();
                assert_eq!(in_left, usize::from(!in_cut), "cell ({x},{y})");
            }
        }
        assert_eq!(total_area(&left), 9 * 7 - 21 - 12 - 4);
    }

    #[test]
    fn contains() {
        assert!(r(0, 10, 0, 10).contains(&r(2, 4, 3, 5)));
        assert!(!r(0, 10, 0, 10).contains(&r(8, 12, 0, 2)));
        assert!(r(0, 1, 0, 1).contains(&r(5, 5, 5, 9)), "empty is contained");
    }
}
