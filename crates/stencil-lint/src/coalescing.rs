//! Coalescing and bank-conflict lint over the lowered warp instructions.
//!
//! For every load region the variant issues, the region is lowered to
//! its [`gpu_sim::WarpLoad`]s and the *measured* transaction count
//! (address-accurate coalescing against the device's segment size) is
//! compared with the *ideal* count (every requested byte moved in fully
//! packed segments). The measured-vs-ideal ratio is the profiler's
//! load-efficiency metric inverted, reported per region:
//!
//! * `LNT-M102` — a column-major side-halo region whose loads collapse
//!   into per-row transactions (the vertical variant's Fig 7 pathology);
//! * `LNT-M101` — any other region whose ratio exceeds the threshold
//!   (misaligned or strided loading);
//! * `LNT-M103` — shared-memory bank conflicts in the compute phase
//!   (narrow `TX` with a bank-multiple tile pitch).
//!
//! All three are warnings: the configuration is *legal*, the paper's
//! point is precisely that some legal layouts are slow. The autotuner's
//! ranking, not the lint, decides the winner; the lint explains why.

use crate::diag::Diagnostic;
use gpu_sim::{coalesce_transactions, stencil_phase_factor, DeviceSpec};
use inplane_core::layout::TileGeometry;
use inplane_core::loadplan::load_regions;
use inplane_core::regions::Assignment;
use inplane_core::resources::vector_width;
use inplane_core::{KernelSpec, LaunchConfig};

/// Ratio above which a column-major region is flagged (`LNT-M102`).
pub const COLUMN_MAJOR_RATIO: f64 = 1.5;
/// Ratio above which any other region is flagged (`LNT-M101`).
pub const GENERAL_RATIO: f64 = 2.0;
/// Bank-conflict serialisation factor above which `LNT-M103` fires.
pub const CONFLICT_FACTOR: f64 = 1.05;

/// Lint the memory behaviour of `(kernel, config)` on `device`:
/// transactions-per-warp-instruction per region, plus compute-phase
/// bank conflicts.
pub fn check_coalescing(
    kernel: &KernelSpec,
    config: &LaunchConfig,
    geom: &TileGeometry,
    device: &DeviceSpec,
) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    let seg = device.segment_bytes;

    for (i, region) in load_regions(kernel.method, geom, vector_width(kernel))
        .iter()
        .enumerate()
    {
        let loads = region.lower(geom, device.warp_size);
        if loads.is_empty() {
            continue;
        }
        let measured: usize = loads.iter().map(|l| coalesce_transactions(l, seg)).sum();
        let ideal: usize = loads
            .iter()
            .map(|l| (l.requested_bytes().div_ceil(seg)).max(1) as usize)
            .sum();
        let ratio = measured as f64 / ideal as f64;

        match region.assignment {
            Assignment::ColumnMajor if ratio > COLUMN_MAJOR_RATIO => {
                diags.push(
                    Diagnostic::warning(
                        "LNT-M102",
                        format!(
                            "column-major region {i} needs {measured} transactions where {ideal} would suffice ({ratio:.1}x)"
                        ),
                    )
                    .with("region", i)
                    .with("measured", measured)
                    .with("ideal", ideal)
                    .with("ratio", format!("{ratio:.2}")),
                );
            }
            Assignment::ColumnMajor => {}
            _ if ratio > GENERAL_RATIO => {
                diags.push(
                    Diagnostic::warning(
                        "LNT-M101",
                        format!(
                            "region {i} needs {measured} transactions where {ideal} would suffice ({ratio:.1}x)"
                        ),
                    )
                    .with("region", i)
                    .with("measured", measured)
                    .with("ideal", ideal)
                    .with("ratio", format!("{ratio:.2}")),
                );
            }
            _ => {}
        }
    }

    // Compute-phase bank conflicts on the staged tile, in units of the
    // device's LDS bank width.
    let pitch_words = (geom.wx + 2 * geom.r) * kernel.elem_bytes / device.smem_bank_bytes;
    let factor = stencil_phase_factor(
        config.tx,
        config.threads(),
        pitch_words,
        kernel.radius,
        device.warp_size,
        device.smem_banks,
    );
    if factor > CONFLICT_FACTOR {
        diags.push(
            Diagnostic::warning(
                "LNT-M103",
                format!(
                    "compute phase serialises {factor:.2}x on shared-memory banks (pitch {pitch_words} words, TX = {})",
                    config.tx
                ),
            )
            .with("factor", format!("{factor:.2}"))
            .with("pitch_words", pitch_words)
            .with("tx", config.tx),
        );
    }

    diags
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::diag::has_errors;
    use inplane_core::{Method, Variant};
    use stencil_grid::Precision;

    fn geom(c: &LaunchConfig, r: usize) -> TileGeometry {
        TileGeometry::interior(c, r, 4, 512, 128)
    }

    fn spec(method: Method, order: usize) -> KernelSpec {
        KernelSpec::star_order(method, order, Precision::Single)
    }

    #[test]
    fn coalescing_lint_never_errors() {
        let dev = DeviceSpec::gtx580();
        for method in [
            Method::ForwardPlane,
            Method::InPlane(Variant::Vertical),
            Method::InPlane(Variant::FullSlice),
        ] {
            let c = LaunchConfig::new(32, 8, 1, 1);
            let g = geom(&c, 2);
            let d = check_coalescing(&spec(method, 4), &c, &g, &dev);
            assert!(!has_errors(&d), "{method:?}: {d:?}");
        }
    }

    #[test]
    fn vertical_side_columns_flagged_m102() {
        let dev = DeviceSpec::gtx580();
        let c = LaunchConfig::new(32, 8, 1, 1);
        let g = geom(&c, 4);
        let d = check_coalescing(&spec(Method::InPlane(Variant::Vertical), 8), &c, &g, &dev);
        let m102: Vec<_> = d.iter().filter(|x| x.code == "LNT-M102").collect();
        // 2r = 8 side columns, every one collapses.
        assert_eq!(m102.len(), 8, "{d:?}");
        // The ratio context documents measured vs ideal.
        assert!(m102[0].context.iter().any(|(k, _)| *k == "ratio"));
    }

    #[test]
    fn full_slice_is_clean_of_region_warnings() {
        let dev = DeviceSpec::gtx580();
        // A realistic wide tile: the 128 B-segment fringe amortises and
        // the packed slab loads stay near the coalesced ideal. (On tiny
        // tiles the fringe legitimately dominates and M101 fires — that
        // is the lint working, not a false positive.)
        let c = LaunchConfig::new(128, 2, 1, 4);
        let g = geom(&c, 2);
        let d = check_coalescing(&spec(Method::InPlane(Variant::FullSlice), 4), &c, &g, &dev);
        assert!(
            !d.iter()
                .any(|x| x.code == "LNT-M101" || x.code == "LNT-M102"),
            "{d:?}"
        );
    }

    #[test]
    fn narrow_tx_with_bank_multiple_pitch_is_m103() {
        let dev = DeviceSpec::gtx580();
        // TX = 16, tile 16 wide + 2r = 32-word pitch: warp lanes 0 and 16
        // land in different rows 32 words apart -> same bank.
        let c = LaunchConfig::new(16, 8, 1, 1);
        let r = 8;
        let g = geom(&c, r);
        let d = check_coalescing(
            &spec(Method::InPlane(Variant::FullSlice), 2 * r),
            &c,
            &g,
            &dev,
        );
        assert!(d.iter().any(|x| x.code == "LNT-M103"), "{d:?}");
    }

    #[test]
    fn full_width_warps_have_no_conflicts() {
        let dev = DeviceSpec::gtx580();
        let c = LaunchConfig::new(32, 8, 1, 1);
        let g = geom(&c, 1);
        let d = check_coalescing(&spec(Method::InPlane(Variant::FullSlice), 2), &c, &g, &dev);
        assert!(!d.iter().any(|x| x.code == "LNT-M103"), "{d:?}");
    }
}
