//! Whole-plan dataflow analysis over the lowered [`StagePlan`] IR.
//!
//! The per-plane schedule proof (`LNT-S…`) and the coverage proof
//! (`LNT-C…`) reason about one abstract plane schedule; this pass
//! abstract-interprets an entire lowered plan — every block, every
//! buffer, every transform-level op — with a region lattice per
//! `(buffer, plane)` built on the exact rectangle algebra of
//! [`crate::rect`]. It proves three families of facts (`LNT-D…`):
//!
//! * **lifetime proofs** — reads of never-written buffer regions
//!   (`LNT-D002`), compute reads of never-staged tile cells
//!   (`LNT-D001`), dead stores/staging/exchanges (`LNT-D101`–`D103`,
//!   `LNT-D901`), redundant re-staging (`LNT-D104`);
//! * **cross-plan consistency** — every halo-exchange destination plane
//!   a sweep reads was last written by the exchange, not by the
//!   slab-local boundary copy it overwrites (`LNT-D004`, the
//!   happens-before proof across devices);
//! * **schedule shape** — section sequencing, rotation counts and
//!   feeds, publish alignment, compute/write-back shape per method
//!   (`LNT-D007`), block-level ops outside a block or its halo window
//!   (`LNT-D006`), buffer-reference validity (`LNT-D003`), and output
//!   interior coverage (`LNT-D005`, the static twin of the checked
//!   interpreter's `StageError::EMPTY_PLAN`).
//!
//! The analysis is *sound for the interpreter*: a clean lowered plan
//! (no error-severity findings) interprets without staging violations,
//! and the warnings on transformed plans (temporal windows, multi-GPU
//! slabs) are documented true positives of the box-granular transport
//! the transforms use — pinned by the differential tests, not noise.

use crate::diag::Diagnostic;
use crate::rect::{subtract_all, total_area, Rect};
use inplane_core::plan::{
    ComputeKind, PipelineFeed, PipelineKind, PlanOp, PlanRect, StagePlan, StageSource, Zone,
    INPUT_BUF, OUTPUT_BUF,
};
use inplane_core::{ComputeShape, ScheduleSkeleton, ZFeed};
use std::collections::HashSet;
use stencil_grid::Boundary;

/// Instance cap per diagnostic code: beyond this many findings of one
/// code the report keeps counting (see [`DataflowReport::histogram`])
/// but stops materialising `Diagnostic` values.
pub const MAX_INSTANCES_PER_CODE: usize = 8;

/// What kind of op last wrote a buffer region (the lattice's writer
/// tag, used for dead-store attribution and the `LNT-D004` staleness
/// proof).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum WriteKind {
    /// A `CopyBox` (scatter/gather traffic).
    Copy,
    /// A block `WriteBack`.
    WriteBack,
    /// An `ApplyBoundary` ring copy.
    Boundary,
    /// A `HaloExchange` plane move.
    Exchange,
}

impl WriteKind {
    fn label(self) -> &'static str {
        match self {
            WriteKind::Copy => "copy",
            WriteKind::WriteBack => "write-back",
            WriteKind::Boundary => "boundary",
            WriteKind::Exchange => "exchange",
        }
    }
}

/// Region lattice for one `(buffer, plane)`.
#[derive(Default)]
struct PlaneState {
    /// Union of every region the plan wrote (disjoint pieces).
    written: Vec<Rect>,
    /// Last-written pieces not yet read (working buffers only;
    /// exchange writes are tracked by `exchange_unread` instead).
    unread: Vec<(WriteKind, Rect)>,
    /// Pieces whose *last* writer was a boundary copy (the `LNT-D004`
    /// staleness set).
    last_boundary: Vec<Rect>,
    /// A halo exchange wrote this plane and nothing read it since.
    exchange_unread: bool,
}

/// One buffer's dims plus its per-plane lattice.
struct BufState {
    dims: (usize, usize, usize),
    /// Working buffers (`id ≥ 2`) get dead-store tracking; the
    /// caller's grids do not (their contents outlive the plan).
    tracked: bool,
    planes: Vec<PlaneState>,
}

impl BufState {
    fn new(dims: (usize, usize, usize), tracked: bool) -> Self {
        let mut planes = Vec::with_capacity(dims.2);
        planes.resize_with(dims.2, PlaneState::default);
        BufState {
            dims,
            tracked,
            planes,
        }
    }

    fn full_plane(&self) -> Rect {
        Rect {
            x0: 0,
            x1: self.dims.0 as isize,
            y0: 0,
            y1: self.dims.1 as isize,
        }
    }
}

/// One staged region of the current section, with its unread remainder.
struct StagedEntry {
    zone: Zone,
    rect: Rect,
    unread: Vec<Rect>,
}

/// Everything one staged plane's schedule did inside a block.
struct Section {
    plane: usize,
    z_rots: usize,
    q_rots: usize,
    barriers: usize,
    computes: Vec<(usize, ComputeKind)>,
    writebacks: Vec<(usize, usize)>,
    staged: Vec<StagedEntry>,
}

impl Section {
    fn new(plane: usize) -> Self {
        Section {
            plane,
            z_rots: 0,
            q_rots: 0,
            barriers: 0,
            computes: Vec::new(),
            writebacks: Vec::new(),
            staged: Vec::new(),
        }
    }
}

/// The abstract machine state of one emulated thread block.
struct BlockState {
    input: usize,
    output: usize,
    x0: usize,
    y0: usize,
    w: usize,
    h: usize,
    out_depth: usize,
    /// z-extent of the block's input buffer (local sweep depth).
    depth: usize,
    /// Tile plus halo frame, the containment window for `LNT-D006`.
    window: Rect,
    sections: Vec<Section>,
    z_rots_total: usize,
}

impl BlockState {
    fn tile(&self) -> Rect {
        Rect {
            x0: self.x0 as isize,
            x1: (self.x0 + self.w) as isize,
            y0: self.y0 as isize,
            y1: (self.y0 + self.h) as isize,
        }
    }

    /// The cross a full compute reads: tile interior plus the four
    /// corner-free halo arms of radius `r`.
    fn cross(&self, r: usize) -> Vec<Rect> {
        let t = self.tile();
        let ri = r as isize;
        vec![
            t,
            Rect {
                y0: t.y0 - ri,
                y1: t.y0,
                ..t
            },
            Rect {
                y0: t.y1,
                y1: t.y1 + ri,
                ..t
            },
            Rect {
                x0: t.x0 - ri,
                x1: t.x0,
                ..t
            },
            Rect {
                x0: t.x1,
                x1: t.x1 + ri,
                ..t
            },
        ]
    }
}

/// The result of [`analyze_plan`]: capped diagnostics plus exact
/// aggregate counters for every finding family.
#[derive(Debug, Default)]
pub struct DataflowReport {
    /// Materialised findings (at most [`MAX_INSTANCES_PER_CODE`] per
    /// code; aggregate warnings are one diagnostic each).
    pub diagnostics: Vec<Diagnostic>,
    /// Total finding events per code, including suppressed instances
    /// (errors count events; aggregate warnings count affected
    /// cells/planes).
    pub counts: Vec<(&'static str, u64)>,
    /// `LNT-D001`: tile cells read but never staged in their section.
    pub uninit_tile_cells: u64,
    /// `LNT-D002`: buffer cells read but never written.
    pub uninit_buffer_cells: u64,
    /// `LNT-D004`: halo-plane cells read while stale (last writer was a
    /// boundary copy, not the exchange).
    pub stale_halo_cells: u64,
    /// `LNT-D005`: output interior cells no op ever wrote.
    pub missing_output_cells: u64,
    /// `LNT-D101`: working-buffer cells written and never read.
    pub dead_store_cells: u64,
    /// `LNT-D102`: exchanged planes never read before overwrite or end.
    pub dead_exchange_planes: u64,
    /// `LNT-D103`: non-corner staged cells never read in their section.
    pub dead_staged_cells: u64,
    /// `LNT-D104`: cells staged more than once within one section.
    pub restaged_cells: u64,
    /// `LNT-D901`: corner cells staged and never read (full-slice).
    pub dead_corner_cells: u64,
}

impl DataflowReport {
    /// Error-severity findings.
    pub fn errors(&self) -> usize {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == crate::diag::Severity::Error)
            .count()
    }

    /// True when the plan produced no error-severity finding (warnings
    /// and infos — the documented transport redundancies — may remain).
    pub fn is_clean(&self) -> bool {
        self.errors() == 0
    }

    /// `(code, events)` histogram over every finding, including
    /// instances suppressed past the cap.
    pub fn histogram(&self) -> &[(&'static str, u64)] {
        &self.counts
    }

    /// JSON object rendering (hand-rolled; the workspace is std-only).
    pub fn to_json(&self) -> String {
        let diags: Vec<String> = self.diagnostics.iter().map(|d| d.to_json()).collect();
        let hist: Vec<String> = self
            .counts
            .iter()
            .map(|(c, n)| format!("{}:{}", crate::diag::json_string(c), n))
            .collect();
        format!(
            "{{\"errors\":{},\"clean\":{},\"histogram\":{{{}}},\"counters\":{{\
             \"uninit_tile_cells\":{},\"uninit_buffer_cells\":{},\"stale_halo_cells\":{},\
             \"missing_output_cells\":{},\"dead_store_cells\":{},\"dead_exchange_planes\":{},\
             \"dead_staged_cells\":{},\"restaged_cells\":{},\"dead_corner_cells\":{}}},\
             \"diagnostics\":[{}]}}",
            self.errors(),
            self.is_clean(),
            hist.join(","),
            self.uninit_tile_cells,
            self.uninit_buffer_cells,
            self.stale_halo_cells,
            self.missing_output_cells,
            self.dead_store_cells,
            self.dead_exchange_planes,
            self.dead_staged_cells,
            self.restaged_cells,
            self.dead_corner_cells,
            diags.join(",")
        )
    }
}

fn rect_of(r: &PlanRect) -> Rect {
    Rect {
        x0: r.x0,
        x1: r.x1,
        y0: r.y0,
        y1: r.y1,
    }
}

/// The dataflow abstract interpreter.
struct Flow {
    /// The plan's routine schedule skeleton — the structural contract
    /// every shape check (`LNT-D007`) is proven against.
    sk: ScheduleSkeleton,
    r: usize,
    bufs: Vec<BufState>,
    halo_dst: HashSet<(usize, usize)>,
    block: Option<BlockState>,
    report: DataflowReport,
}

impl Flow {
    fn bump(&mut self, code: &'static str, events: u64) -> bool {
        if let Some(entry) = self.report.counts.iter_mut().find(|(c, _)| *c == code) {
            entry.1 += events;
            self.report
                .diagnostics
                .iter()
                .filter(|d| d.code == code)
                .count()
                < MAX_INSTANCES_PER_CODE
        } else {
            self.report.counts.push((code, events));
            true
        }
    }

    fn emit(&mut self, code: &'static str, events: u64, build: impl FnOnce() -> Diagnostic) {
        if self.bump(code, events) {
            let d = build();
            debug_assert_eq!(d.code, code);
            self.report.diagnostics.push(d);
        }
    }

    /// A read of `rect` on `(buf, plane)`. `block_level` reads (stage
    /// loads, pipeline preloads/feeds) additionally run the `LNT-D004`
    /// staleness proof on exchange-destination planes.
    fn buffer_read(&mut self, buf: usize, plane: usize, rect: Rect, block_level: bool) {
        if rect.is_empty() {
            return;
        }
        if buf >= self.bufs.len() || plane >= self.bufs[buf].planes.len() {
            self.emit("LNT-D003", 1, || {
                Diagnostic::error("LNT-D003", "read through an invalid buffer reference")
                    .with("buf", buf)
                    .with("plane", plane)
            });
            return;
        }
        let defined = if self.bufs[buf].tracked {
            self.bufs[buf].planes[plane].written.clone()
        } else {
            vec![self.bufs[buf].full_plane()]
        };
        let missing = total_area(&subtract_all(vec![rect], &defined));
        if missing > 0 {
            self.report.uninit_buffer_cells += missing;
            self.emit("LNT-D002", 1, || {
                Diagnostic::error("LNT-D002", "read of a buffer region never written")
                    .with("buf", buf)
                    .with("plane", plane)
                    .with("cells", missing)
            });
        }
        if block_level && self.halo_dst.contains(&(buf, plane)) {
            let stale: u64 = self.bufs[buf].planes[plane]
                .last_boundary
                .iter()
                .filter_map(|b| b.intersect(&rect))
                .map(|i| i.area())
                .sum();
            if stale > 0 {
                self.report.stale_halo_cells += stale;
                self.emit("LNT-D004", 1, || {
                    Diagnostic::error(
                        "LNT-D004",
                        "sweep reads a halo plane last written by the boundary copy, \
                         not the exchange",
                    )
                    .with("buf", buf)
                    .with("plane", plane)
                    .with("cells", stale)
                });
            }
        }
        let state = &mut self.bufs[buf].planes[plane];
        let mut next = Vec::with_capacity(state.unread.len());
        for (kind, piece) in state.unread.drain(..) {
            for left in piece.subtract(&rect) {
                next.push((kind, left));
            }
        }
        state.unread = next;
        state.exchange_unread = false;
    }

    /// A write of `rect` on `(buf, plane)` by `kind`.
    fn buffer_write(&mut self, buf: usize, plane: usize, rect: Rect, kind: WriteKind) {
        if rect.is_empty() {
            return;
        }
        if buf == INPUT_BUF {
            self.emit("LNT-D003", 1, || {
                Diagnostic::error("LNT-D003", "plan writes the read-only input buffer")
                    .with("plane", plane)
            });
            return;
        }
        if buf >= self.bufs.len() || plane >= self.bufs[buf].planes.len() {
            self.emit("LNT-D003", 1, || {
                Diagnostic::error("LNT-D003", "write through an invalid buffer reference")
                    .with("buf", buf)
                    .with("plane", plane)
            });
            return;
        }
        let full = self.bufs[buf].full_plane();
        let state = &mut self.bufs[buf].planes[plane];
        // Dead-on-overwrite: last-write pieces clobbered while unread.
        let mut dead = 0u64;
        for (k, piece) in &state.unread {
            if *k != WriteKind::Exchange {
                if let Some(i) = piece.intersect(&rect) {
                    dead += i.area();
                }
            }
        }
        self.report.dead_store_cells += dead;
        if state.exchange_unread && (kind == WriteKind::Exchange || rect.contains(&full)) {
            self.report.dead_exchange_planes += 1;
            state.exchange_unread = false;
        }
        let mut next = Vec::with_capacity(state.unread.len());
        for (k, piece) in state.unread.drain(..) {
            for left in piece.subtract(&rect) {
                next.push((k, left));
            }
        }
        if self.bufs[buf].tracked && kind != WriteKind::Exchange {
            next.push((kind, rect));
        }
        let state = &mut self.bufs[buf].planes[plane];
        state.unread = next;
        if kind == WriteKind::Exchange {
            state.exchange_unread = true;
        }
        state.written = subtract_all(std::mem::take(&mut state.written), &[rect]);
        state.written.push(rect);
        state.last_boundary = subtract_all(std::mem::take(&mut state.last_boundary), &[rect]);
        if kind == WriteKind::Boundary {
            state.last_boundary.push(rect);
        }
    }

    /// A tile read of `rects` against the current section's staged
    /// entries: unmarks read pieces and proves `LNT-D001` coverage.
    fn tile_read(&mut self, rects: &[Rect], what: &'static str) {
        let Some(section) = self.block.as_mut().and_then(|b| b.sections.last_mut()) else {
            self.emit("LNT-D007", 1, || {
                Diagnostic::error("LNT-D007", "tile read before any plane was staged")
                    .with("read", what)
            });
            return;
        };
        let staged: Vec<Rect> = section.staged.iter().map(|e| e.rect).collect();
        let missing = total_area(&subtract_all(rects.to_vec(), &staged));
        for entry in &mut section.staged {
            entry.unread = subtract_all(std::mem::take(&mut entry.unread), rects);
        }
        let plane = section.plane;
        if missing > 0 {
            self.report.uninit_tile_cells += missing;
            self.emit("LNT-D001", 1, || {
                Diagnostic::error("LNT-D001", "compute reads tile cells never staged")
                    .with("read", what)
                    .with("plane", plane)
                    .with("cells", missing)
            });
        }
    }

    /// Close the current block: flush staged-dead counters and prove
    /// the per-section schedule shape against the method (`LNT-D007`).
    fn close_block(&mut self) {
        let Some(blk) = self.block.take() else {
            return;
        };
        // Dead staging (D103 / D901).
        for section in &blk.sections {
            for entry in &section.staged {
                let left = total_area(&entry.unread);
                if entry.zone == Zone::Corner {
                    self.report.dead_corner_cells += left;
                } else {
                    self.report.dead_staged_cells += left;
                }
            }
        }
        // Schedule shape, proven against the routine's skeleton.
        let depth = blk.depth;
        let r = self.r;
        let (lo, hi) = (r, depth.saturating_sub(self.sk.sweep_tail));
        let planes: Vec<usize> = blk.sections.iter().map(|s| s.plane).collect();
        let expected: Vec<usize> = (lo..hi).collect();
        if planes != expected {
            self.emit("LNT-D007", 1, || {
                Diagnostic::error(
                    "LNT-D007",
                    "staged-plane sequence deviates from the routine's sweep",
                )
                .with("expected", format!("{lo}..{hi}"))
                .with("got", format!("{planes:?}"))
            });
        }
        let n = blk.sections.len();
        let want_q = self.sk.q_rotations;
        for (i, s) in blk.sections.iter().enumerate() {
            let mut problems: Vec<String> = Vec::new();
            if s.barriers != self.sk.barriers_per_plane {
                problems.push(format!(
                    "{} barriers (want {})",
                    s.barriers, self.sk.barriers_per_plane
                ));
            }
            match self.sk.compute {
                ComputeShape::Direct => {
                    // The prefetch feed is guarded at the sweep's end:
                    // the last section has no plane left to fetch.
                    let want_z = usize::from(i + 1 < n);
                    if s.z_rots != want_z || s.q_rots != want_q {
                        problems.push(format!(
                            "rotations z={} q={} (want z={want_z} q={want_q})",
                            s.z_rots, s.q_rots
                        ));
                    }
                    let compute_ok = matches!(
                        s.computes.as_slice(),
                        [(slot, ComputeKind::ForwardFull)]
                            if s.writebacks == [(s.plane, *slot)]
                    );
                    if !compute_ok {
                        problems.push(format!(
                            "computes {:?} / writebacks {:?} are not one full \
                             evaluation written back to its plane",
                            s.computes, s.writebacks
                        ));
                    }
                }
                ComputeShape::Pipelined => {
                    if s.z_rots != 1 || s.q_rots != want_q {
                        problems.push(format!(
                            "rotations z={} q={} (want z=1 q={want_q})",
                            s.z_rots, s.q_rots
                        ));
                    }
                    let mut want: Vec<(usize, ComputeKind)> = Vec::new();
                    if s.plane < depth.saturating_sub(r) {
                        want.push((0, ComputeKind::InplanePartial));
                    }
                    for d in 1..=r {
                        if matches!(s.plane.checked_sub(d),
                                    Some(kd) if kd >= r && kd < depth.saturating_sub(r))
                        {
                            want.push((d, ComputeKind::FoldCentre { depth: d }));
                        }
                    }
                    let want_wb: Vec<(usize, usize)> = match s.plane.checked_sub(r) {
                        Some(done) if done >= r && done < depth.saturating_sub(r) => {
                            vec![(done, r)]
                        }
                        _ => Vec::new(),
                    };
                    if s.computes != want || s.writebacks != want_wb {
                        problems.push(format!(
                            "computes {:?} / writebacks {:?} deviate from the \
                             in-plane partial/fold/write-back shape",
                            s.computes, s.writebacks
                        ));
                    }
                }
            }
            if !problems.is_empty() {
                let plane = s.plane;
                let detail = problems.join("; ");
                self.emit("LNT-D007", 1, || {
                    Diagnostic::error("LNT-D007", "schedule-shape violation in a plane section")
                        .with("plane", plane)
                        .with("detail", detail)
                });
            }
        }
    }

    fn step(&mut self, op: &PlanOp) {
        match *op {
            PlanOp::Alloc { buf, dims } => {
                self.close_block();
                if buf != self.bufs.len() {
                    self.emit("LNT-D003", 1, || {
                        Diagnostic::error("LNT-D003", "buffer allocated out of order")
                            .with("buf", buf)
                    });
                }
                self.bufs.push(BufState::new(dims, true));
            }
            PlanOp::CopyBox {
                src,
                dst,
                src_org,
                dst_org,
                extent,
            } => {
                self.close_block();
                let (ex, ey, ez) = extent;
                let in_bounds = |buf: usize, org: (usize, usize, usize)| {
                    buf < self.bufs.len() && {
                        let d = self.bufs[buf].dims;
                        org.0 + ex <= d.0 && org.1 + ey <= d.1 && org.2 + ez <= d.2
                    }
                };
                if !in_bounds(src, src_org) || !in_bounds(dst, dst_org) {
                    self.emit("LNT-D003", 1, || {
                        Diagnostic::error("LNT-D003", "copy box outside its buffers")
                            .with("src", src)
                            .with("dst", dst)
                    });
                    return;
                }
                let src_rect = Rect {
                    x0: src_org.0 as isize,
                    x1: (src_org.0 + ex) as isize,
                    y0: src_org.1 as isize,
                    y1: (src_org.1 + ey) as isize,
                };
                let dst_rect = Rect {
                    x0: dst_org.0 as isize,
                    x1: (dst_org.0 + ex) as isize,
                    y0: dst_org.1 as isize,
                    y1: (dst_org.1 + ey) as isize,
                };
                for k in 0..ez {
                    self.buffer_read(src, src_org.2 + k, src_rect, false);
                    self.buffer_write(dst, dst_org.2 + k, dst_rect, WriteKind::Copy);
                }
            }
            PlanOp::BeginBlock {
                device: _,
                input,
                output,
                x0,
                y0,
                w,
                h,
                z_depth,
                out_depth,
            } => {
                self.close_block();
                if input >= self.bufs.len() || output >= self.bufs.len() || output == INPUT_BUF {
                    self.emit("LNT-D003", 1, || {
                        Diagnostic::error("LNT-D003", "block references an invalid buffer")
                            .with("input", input)
                            .with("output", output)
                    });
                    return;
                }
                let (nx, ny, depth) = self.bufs[input].dims;
                if x0 + w > nx || y0 + h > ny || z_depth > depth {
                    self.emit("LNT-D006", 1, || {
                        Diagnostic::error("LNT-D006", "block tile outside its input buffer")
                            .with("tile", format!("{w}x{h}@({x0},{y0})"))
                            .with("dims", format!("{nx}x{ny}x{depth}"))
                    });
                    return;
                }
                let want = (self.sk.z_depth, self.sk.out_depth);
                if (z_depth, out_depth) != want {
                    self.emit("LNT-D007", 1, || {
                        Diagnostic::error(
                            "LNT-D007",
                            "pipeline depths deviate from the routine's skeleton",
                        )
                        .with("got", format!("z={z_depth} q={out_depth}"))
                        .with("want", format!("z={} q={}", want.0, want.1))
                    });
                }
                let ri = self.r as isize;
                let blk = BlockState {
                    input,
                    output,
                    x0,
                    y0,
                    w,
                    h,
                    out_depth,
                    depth,
                    window: Rect {
                        x0: x0 as isize - ri,
                        x1: (x0 + w) as isize + ri,
                        y0: y0 as isize - ri,
                        y1: (y0 + h) as isize + ri,
                    },
                    sections: Vec::new(),
                    z_rots_total: 0,
                };
                let tile = blk.tile();
                self.block = Some(blk);
                // The z-pipeline preload reads planes 0 .. z_depth.
                for p in 0..z_depth {
                    self.buffer_read(input, p, tile, true);
                }
            }
            PlanOp::StageRegion {
                zone,
                rect,
                plane,
                source,
            } => {
                let Some(blk) = self.block.as_mut() else {
                    self.emit("LNT-D006", 1, || {
                        Diagnostic::error("LNT-D006", "StageRegion outside any block")
                            .with("plane", plane)
                    });
                    return;
                };
                let raw = rect_of(&rect);
                let (window, input, depth) = (blk.window, blk.input, blk.depth);
                let (nx, ny, _) = self.bufs[input].dims;
                if !window.contains(&raw) || plane >= depth {
                    self.emit("LNT-D006", 1, || {
                        Diagnostic::error(
                            "LNT-D006",
                            "staged region outside the block's halo window",
                        )
                        .with("rect", format!("{raw:?}"))
                        .with("plane", plane)
                    });
                    return;
                }
                let blk = self.block.as_mut().expect("block still open");
                if blk.sections.last().map(|s| s.plane) != Some(plane) {
                    blk.sections.push(Section::new(plane));
                }
                let clipped = Rect {
                    x0: raw.x0.max(0),
                    x1: raw.x1.min(nx as isize),
                    y0: raw.y0.max(0),
                    y1: raw.y1.min(ny as isize),
                };
                if clipped.is_empty() {
                    return;
                }
                let section = blk.sections.last_mut().expect("section just ensured");
                let overlap: u64 = section
                    .staged
                    .iter()
                    .filter_map(|e| e.rect.intersect(&clipped))
                    .map(|i| i.area())
                    .sum();
                section.staged.push(StagedEntry {
                    zone,
                    rect: clipped,
                    unread: vec![clipped],
                });
                if overlap > 0 {
                    self.report.restaged_cells += overlap;
                    self.bump("LNT-D104", overlap);
                }
                match source {
                    StageSource::Global => {
                        self.buffer_read(input, plane, clipped, true);
                    }
                    StageSource::PipelineCentre => {
                        let blk = self.block.as_ref().expect("block still open");
                        let aligned = self.sk.interior_source == StageSource::PipelineCentre
                            && plane >= self.r
                            && blk.z_rots_total == plane - self.r;
                        if !aligned {
                            let rots = blk.z_rots_total;
                            self.emit("LNT-D007", 1, || {
                                Diagnostic::error(
                                    "LNT-D007",
                                    "pipeline-centre publish misaligned with the z-rotation count",
                                )
                                .with("plane", plane)
                                .with("z_rotations", rots)
                            });
                        }
                    }
                }
            }
            PlanOp::Barrier => {
                if let Some(s) = self.block.as_mut().and_then(|b| b.sections.last_mut()) {
                    s.barriers += 1;
                }
            }
            PlanOp::ComputePoint { plane, slot, kind } => {
                let Some(blk) = self.block.as_mut() else {
                    self.emit("LNT-D006", 1, || {
                        Diagnostic::error("LNT-D006", "ComputePoint outside any block")
                            .with("plane", plane)
                    });
                    return;
                };
                let cur = blk.sections.last().map(|s| s.plane);
                let (out_depth, cross, tile) = (blk.out_depth, blk.cross(self.r), blk.tile());
                if cur != Some(plane) || slot >= out_depth {
                    self.emit("LNT-D007", 1, || {
                        Diagnostic::error(
                            "LNT-D007",
                            "compute misplaced: wrong section plane or out-queue slot",
                        )
                        .with("plane", plane)
                        .with("slot", slot)
                        .with("section", format!("{cur:?}"))
                    });
                }
                if let ComputeKind::FoldCentre { depth } = kind {
                    if depth != slot || depth == 0 || depth > self.r {
                        self.emit("LNT-D007", 1, || {
                            Diagnostic::error("LNT-D007", "fold depth disagrees with its slot")
                                .with("depth", depth)
                                .with("slot", slot)
                        });
                    }
                    self.tile_read(&[tile], "fold centre");
                } else {
                    self.tile_read(&cross, "stencil cross");
                }
                if let Some(s) = self.block.as_mut().and_then(|b| b.sections.last_mut()) {
                    s.computes.push((slot, kind));
                }
            }
            PlanOp::RotatePipeline { pipeline, feed } => {
                let Some(blk) = self.block.as_mut() else {
                    self.emit("LNT-D006", 1, || {
                        Diagnostic::error("LNT-D006", "RotatePipeline outside any block")
                    });
                    return;
                };
                let cur = blk.sections.last().map(|s| s.plane);
                let (input, tile, depth) = (blk.input, blk.tile(), blk.depth);
                match pipeline {
                    PipelineKind::ZValues => {
                        if let Some(s) = blk.sections.last_mut() {
                            s.z_rots += 1;
                        }
                        blk.z_rots_total += 1;
                        match (self.sk.z_feed, feed) {
                            (ZFeed::PrefetchLead { lead }, PipelineFeed::GlobalPlane(kp)) => {
                                let want = cur.map(|k| k + lead);
                                if Some(kp) != want || kp >= depth {
                                    self.emit("LNT-D007", 1, || {
                                        Diagnostic::error(
                                            "LNT-D007",
                                            "z-rotation prefetches the wrong plane",
                                        )
                                        .with("plane", kp)
                                        .with("want", format!("{want:?}"))
                                    });
                                }
                                if kp < depth {
                                    self.buffer_read(input, kp, tile, true);
                                }
                            }
                            (ZFeed::StagedCentre, PipelineFeed::StagedCentre) => {
                                self.tile_read(&[tile], "z-history advance");
                            }
                            _ => {
                                self.emit("LNT-D007", 1, || {
                                    Diagnostic::error(
                                        "LNT-D007",
                                        "z-rotation feed disagrees with the routine's z-feed",
                                    )
                                    .with("feed", format!("{feed:?}"))
                                });
                            }
                        }
                    }
                    PipelineKind::OutQueue => {
                        if let Some(s) = blk.sections.last_mut() {
                            s.q_rots += 1;
                        }
                        if feed != PipelineFeed::None {
                            self.emit("LNT-D007", 1, || {
                                Diagnostic::error("LNT-D007", "out-queue rotation takes no feed")
                            });
                        }
                    }
                }
            }
            PlanOp::WriteBack { plane, slot } => {
                let Some(blk) = self.block.as_mut() else {
                    self.emit("LNT-D006", 1, || {
                        Diagnostic::error("LNT-D006", "WriteBack outside any block")
                            .with("plane", plane)
                    });
                    return;
                };
                let (output, tile, out_depth) = (blk.output, blk.tile(), blk.out_depth);
                let mut stale = false;
                if let Some(s) = blk.sections.last_mut() {
                    // The slot being drained must have been produced by a
                    // compute earlier in this same section — a write-back
                    // that precedes its compute drains stale values.
                    stale = !s.computes.iter().any(|&(cs, _)| cs == slot);
                    s.writebacks.push((plane, slot));
                }
                if stale {
                    self.emit("LNT-D007", 1, || {
                        Diagnostic::error("LNT-D007", "write-back precedes its compute")
                            .with("plane", plane)
                            .with("slot", slot)
                    });
                }
                if slot >= out_depth {
                    self.emit("LNT-D007", 1, || {
                        Diagnostic::error("LNT-D007", "write-back from a slot past the out-queue")
                            .with("slot", slot)
                            .with("out_depth", out_depth)
                    });
                }
                self.buffer_write(output, plane, tile, WriteKind::WriteBack);
            }
            PlanOp::ApplyBoundary {
                input,
                output,
                boundary,
            } => {
                self.close_block();
                if boundary == Boundary::LeaveOutput {
                    return;
                }
                if input >= self.bufs.len()
                    || output >= self.bufs.len()
                    || self.bufs[input].dims != self.bufs[output].dims
                {
                    self.emit("LNT-D003", 1, || {
                        Diagnostic::error("LNT-D003", "boundary copy between mismatched buffers")
                            .with("input", input)
                            .with("output", output)
                    });
                    return;
                }
                let (nx, ny, nz) = self.bufs[input].dims;
                let (rx, ry) = (self.r.min(nx) as isize, self.r.min(ny) as isize);
                let full = self.bufs[input].full_plane();
                for k in 0..nz {
                    let rects: Vec<Rect> = if k < self.r || k + self.r >= nz {
                        vec![full]
                    } else {
                        vec![
                            Rect { y1: ry, ..full },
                            Rect {
                                y0: ny as isize - ry,
                                ..full
                            },
                            Rect {
                                x1: rx,
                                y0: ry,
                                y1: ny as isize - ry,
                                ..full
                            },
                            Rect {
                                x0: nx as isize - rx,
                                y0: ry,
                                y1: ny as isize - ry,
                                ..full
                            },
                        ]
                    };
                    for rect in rects {
                        self.buffer_read(input, k, rect, false);
                        self.buffer_write(output, k, rect, WriteKind::Boundary);
                    }
                }
            }
            PlanOp::SwapBufs { a, b } => {
                self.close_block();
                if a < 2 || b < 2 || a >= self.bufs.len() || b >= self.bufs.len() || a == b {
                    self.emit("LNT-D003", 1, || {
                        Diagnostic::error("LNT-D003", "swap needs two distinct working buffers")
                            .with("a", a)
                            .with("b", b)
                    });
                    return;
                }
                self.bufs.swap(a, b);
            }
            PlanOp::HaloExchange {
                device: _,
                src,
                dst,
                src_plane,
                dst_plane,
            } => {
                self.close_block();
                let ok = src < self.bufs.len()
                    && dst < self.bufs.len()
                    && src_plane < self.bufs[src].planes.len()
                    && dst_plane < self.bufs[dst].planes.len();
                if !ok {
                    self.emit("LNT-D003", 1, || {
                        Diagnostic::error("LNT-D003", "halo exchange references invalid planes")
                            .with("src", src)
                            .with("dst", dst)
                    });
                    return;
                }
                let src_full = self.bufs[src].full_plane();
                let dst_full = self.bufs[dst].full_plane();
                self.buffer_read(src, src_plane, src_full, false);
                self.buffer_write(dst, dst_plane, dst_full, WriteKind::Exchange);
            }
        }
    }

    fn finish(mut self, plan: &StagePlan) -> DataflowReport {
        self.close_block();
        // End-of-plan dead stores and unread exchanges.
        let mut by_kind: Vec<(WriteKind, u64)> = Vec::new();
        for buf in &self.bufs {
            if !buf.tracked {
                continue;
            }
            for plane in &buf.planes {
                for (kind, piece) in &plane.unread {
                    let a = piece.area();
                    self.report.dead_store_cells += a;
                    match by_kind.iter_mut().find(|(k, _)| k == kind) {
                        Some(e) => e.1 += a,
                        None => by_kind.push((*kind, a)),
                    }
                }
                if plane.exchange_unread {
                    self.report.dead_exchange_planes += 1;
                }
            }
        }
        // Output interior coverage (D005): the static twin of the
        // checked interpreter's empty-plan StageError.
        let (nx, ny, nz) = plan.dims;
        let r = self.r;
        if nx > 2 * r && ny > 2 * r && nz > 2 * r {
            let interior = Rect {
                x0: r as isize,
                x1: (nx - r) as isize,
                y0: r as isize,
                y1: (ny - r) as isize,
            };
            let mut missing = 0u64;
            for k in r..nz - r {
                missing += total_area(&subtract_all(
                    vec![interior],
                    &self.bufs[OUTPUT_BUF].planes[k].written,
                ));
            }
            if missing > 0 {
                self.report.missing_output_cells = missing;
                self.emit("LNT-D005", 1, || {
                    Diagnostic::error("LNT-D005", "output interior cells never written")
                        .with("cells", missing)
                        .with(
                            "interior",
                            ((nx - 2 * r) * (ny - 2 * r) * (nz - 2 * r)) as u64,
                        )
                });
            }
        }
        // Aggregate warnings / infos.
        if self.report.dead_store_cells > 0 {
            let cells = self.report.dead_store_cells;
            let detail = by_kind
                .iter()
                .map(|(k, n)| format!("{} = {n}", k.label()))
                .collect::<Vec<_>>()
                .join(", ");
            self.emit("LNT-D101", cells, || {
                Diagnostic::warning(
                    "LNT-D101",
                    "cells written to working buffers and never read \
                     (box-granular transport redundancy)",
                )
                .with("cells", cells)
                .with("by_kind", detail)
            });
        }
        if self.report.dead_exchange_planes > 0 {
            let planes = self.report.dead_exchange_planes;
            self.emit("LNT-D102", planes, || {
                Diagnostic::warning("LNT-D102", "exchanged halo planes never read")
                    .with("planes", planes)
            });
        }
        if self.report.dead_staged_cells > 0 {
            let cells = self.report.dead_staged_cells;
            self.emit("LNT-D103", cells, || {
                Diagnostic::warning(
                    "LNT-D103",
                    "non-corner cells staged but never read in their plane's section",
                )
                .with("cells", cells)
            });
        }
        if self.report.restaged_cells > 0 {
            let cells = self.report.restaged_cells;
            self.emit("LNT-D104", 0, || {
                Diagnostic::warning("LNT-D104", "cells staged more than once within one section")
                    .with("cells", cells)
            });
        }
        if self.report.dead_corner_cells > 0 {
            let cells = self.report.dead_corner_cells;
            self.emit("LNT-D901", cells, || {
                Diagnostic::info(
                    "LNT-D901",
                    "full-slice corner cells staged and never read (documented policy)",
                )
                .with("cells", cells)
            });
        }
        self.report
    }
}

/// Abstract-interpret a lowered plan and prove its buffer lifetimes,
/// cross-plan happens-before consistency and schedule shape, emitting
/// `LNT-D…` diagnostics. A clean lowered plan has zero error-severity
/// findings; warnings/infos document the transport redundancies the
/// transforms accept by design.
pub fn analyze_plan(plan: &StagePlan) -> DataflowReport {
    let mut halo_dst = HashSet::new();
    for op in &plan.ops {
        if let PlanOp::HaloExchange { dst, dst_plane, .. } = op {
            halo_dst.insert((*dst, *dst_plane));
        }
    }
    let mut flow = Flow {
        sk: plan.method.routine().skeleton(plan.radius),
        r: plan.radius,
        bufs: vec![
            BufState::new(plan.dims, false),
            BufState::new(plan.dims, false),
        ],
        halo_dst,
        block: None,
        report: DataflowReport::default(),
    };
    for op in &plan.ops {
        flow.step(op);
    }
    flow.finish(plan)
}

#[cfg(test)]
mod tests {
    use super::*;
    use inplane_core::plan::lower_step;
    use inplane_core::{LaunchConfig, Method, Variant};

    fn forward_plan() -> StagePlan {
        lower_step(
            Method::ForwardPlane,
            &LaunchConfig::new(4, 4, 1, 1),
            1,
            (10, 10, 8),
        )
    }

    #[test]
    fn lowered_forward_plan_is_clean() {
        let rep = analyze_plan(&forward_plan());
        assert!(rep.is_clean(), "{:?}", rep.diagnostics);
        assert_eq!(rep.uninit_tile_cells, 0);
        assert_eq!(rep.uninit_buffer_cells, 0);
        assert_eq!(rep.missing_output_cells, 0);
        assert_eq!(rep.dead_staged_cells, 0);
        assert_eq!(rep.restaged_cells, 0);
    }

    #[test]
    fn inplane_plans_report_only_the_documented_dead_arms() {
        for variant in [
            Variant::FullSlice,
            Variant::Horizontal,
            Variant::Vertical,
            Variant::Classical,
        ] {
            let plan = lower_step(
                Method::InPlane(variant),
                &LaunchConfig::new(4, 4, 1, 1),
                2,
                (12, 12, 10),
            );
            let rep = analyze_plan(&plan);
            assert!(rep.is_clean(), "{variant:?}: {:?}", rep.diagnostics);
            // The trailing r sections stage arms no fold ever reads.
            assert!(rep.dead_staged_cells > 0, "{variant:?}");
            assert_eq!(
                rep.dead_corner_cells > 0,
                variant == Variant::FullSlice,
                "{variant:?}"
            );
        }
    }

    #[test]
    fn dropped_interior_stage_is_an_uninitialized_tile_read() {
        let mut plan = forward_plan();
        let idx = plan
            .ops
            .iter()
            .position(|op| {
                matches!(
                    op,
                    PlanOp::StageRegion {
                        zone: Zone::Interior,
                        ..
                    }
                )
            })
            .unwrap();
        plan.ops.remove(idx);
        let rep = analyze_plan(&plan);
        assert!(!rep.is_clean());
        assert!(rep.diagnostics.iter().any(|d| d.code == "LNT-D001"));
        assert!(rep.uninit_tile_cells > 0);
    }

    #[test]
    fn dropped_writeback_is_an_output_gap() {
        let mut plan = forward_plan();
        let idx = plan
            .ops
            .iter()
            .position(|op| matches!(op, PlanOp::WriteBack { .. }))
            .unwrap();
        plan.ops.remove(idx);
        let rep = analyze_plan(&plan);
        assert!(rep.diagnostics.iter().any(|d| d.code == "LNT-D005"));
        assert!(rep.diagnostics.iter().any(|d| d.code == "LNT-D007"));
        assert!(rep.missing_output_cells > 0);
    }

    #[test]
    fn duplicated_stage_is_redundant_restaging() {
        let mut plan = forward_plan();
        let idx = plan
            .ops
            .iter()
            .position(|op| {
                matches!(
                    op,
                    PlanOp::StageRegion {
                        zone: Zone::Top,
                        ..
                    }
                )
            })
            .unwrap();
        let dup = plan.ops[idx];
        plan.ops.insert(idx, dup);
        let rep = analyze_plan(&plan);
        assert!(rep.restaged_cells > 0);
        assert!(rep.diagnostics.iter().any(|d| d.code == "LNT-D104"));
    }

    #[test]
    fn dropped_rotation_breaks_the_publish_alignment() {
        let mut plan = forward_plan();
        let idx = plan
            .ops
            .iter()
            .position(|op| matches!(op, PlanOp::RotatePipeline { .. }))
            .unwrap();
        plan.ops.remove(idx);
        let rep = analyze_plan(&plan);
        assert!(
            rep.diagnostics.iter().any(|d| d.code == "LNT-D007"),
            "{:?}",
            rep.diagnostics
        );
    }

    #[test]
    fn block_ops_outside_a_block_are_rejected() {
        let mut plan = forward_plan();
        let idx = plan
            .ops
            .iter()
            .position(|op| matches!(op, PlanOp::BeginBlock { .. }))
            .unwrap();
        plan.ops.remove(idx);
        let rep = analyze_plan(&plan);
        assert!(rep.diagnostics.iter().any(|d| d.code == "LNT-D006"));
    }

    #[test]
    fn empty_plan_reports_full_interior_missing() {
        let plan = StagePlan {
            method: Method::ForwardPlane,
            radius: 1,
            dims: (8, 8, 8),
            ops: Vec::new(),
        };
        let rep = analyze_plan(&plan);
        assert!(rep.diagnostics.iter().any(|d| d.code == "LNT-D005"));
        assert_eq!(rep.missing_output_cells, 6 * 6 * 6);
    }

    #[test]
    fn instance_cap_keeps_counting() {
        // Remove every interior stage: one D001 event per compute, far
        // past the cap, but the histogram keeps the true count.
        let mut plan = forward_plan();
        plan.ops.retain(|op| {
            !matches!(
                op,
                PlanOp::StageRegion {
                    zone: Zone::Interior,
                    ..
                }
            )
        });
        let rep = analyze_plan(&plan);
        let emitted = rep
            .diagnostics
            .iter()
            .filter(|d| d.code == "LNT-D001")
            .count();
        assert!(emitted <= MAX_INSTANCES_PER_CODE);
        let total = rep
            .histogram()
            .iter()
            .find(|(c, _)| *c == "LNT-D001")
            .map(|(_, n)| *n)
            .unwrap();
        assert!(total as usize > emitted);
    }

    #[test]
    fn report_json_is_structured() {
        let rep = analyze_plan(&forward_plan());
        let j = rep.to_json();
        assert!(j.contains("\"clean\":true"));
        assert!(j.contains("\"dead_store_cells\":0"));
    }
}
