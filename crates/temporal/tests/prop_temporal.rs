//! Property-based tests for temporal blocking: for arbitrary tile
//! shapes and temporal depths, overlapped tiling equals the global
//! iteration, and the performance plan respects its scaling laws.

use gpu_sim::{DeviceSpec, GridDims, SimOptions};
use inplane_core::{KernelSpec, LaunchConfig, Method, Variant};
use proptest::prelude::*;
use stencil_grid::{
    apply_reference, iterate_stencil_loop, max_abs_diff, Boundary, FillPattern, Grid3, StarStencil,
};
use stencil_temporal::{execute_temporal, simulate_temporal, temporal_plan, TemporalConfig};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Overlapped temporal tiling equals T global Jacobi steps for any
    /// tile shape and depth.
    #[test]
    fn temporal_equals_global(
        tile_x in 2usize..9,
        tile_y in 2usize..9,
        t_steps in 1usize..4,
        seed in 0u64..200,
    ) {
        let s: StarStencil<f64> = StarStencil::diffusion(1);
        let n = 13;
        let input: Grid3<f64> =
            FillPattern::Random { lo: -1.0, hi: 1.0, seed }.build(n, n, 7);
        let mut out = Grid3::new(n, n, 7);
        execute_temporal(&s, &input, &mut out, tile_x, tile_y, t_steps);
        let (golden, _) = iterate_stencil_loop(input, 1, t_steps, |i, o| {
            apply_reference(&s, i, o, Boundary::CopyInput)
        });
        prop_assert!(max_abs_diff(&out, &golden) < 1e-12);
    }

    /// Per-step DRAM traffic never increases with temporal depth (while
    /// the configuration stays feasible).
    #[test]
    fn per_step_traffic_is_monotone_in_t(
        tx in prop::sample::select(vec![32usize, 64, 128]),
        ty in prop::sample::select(vec![4usize, 8]),
    ) {
        let dev = DeviceSpec::gtx580();
        let dims = GridDims::paper();
        let kernel = KernelSpec::star_order(Method::InPlane(Variant::FullSlice), 2, Precision::Single);
        use stencil_grid::Precision;
        let mut prev = f64::INFINITY;
        for t in 1..=4 {
            let cfg = TemporalConfig::new(LaunchConfig::new(tx, ty, 1, 1), t);
            let (rep, _) = simulate_temporal(&dev, &kernel, &cfg, dims, &SimOptions::default());
            if !rep.feasible() {
                break;
            }
            let per_step = rep.mem.transferred_bytes as f64 / t as f64;
            prop_assert!(per_step <= prev * 1.001, "T = {t}: {per_step} vs {prev}");
            prev = per_step;
        }
    }

    /// Redundant flops grow with T exactly as the shrinking-shell sum.
    #[test]
    fn plan_flops_follow_the_shell_sum(
        t in 1usize..6,
        order in prop::sample::select(vec![2usize, 4]),
    ) {
        use stencil_grid::Precision;
        let dev = DeviceSpec::gtx580();
        let dims = GridDims::paper();
        let kernel = KernelSpec::star_order(Method::InPlane(Variant::FullSlice), order, Precision::Single);
        let launch = LaunchConfig::new(64, 8, 1, 1);
        let plan = temporal_plan(&dev, &kernel, &TemporalConfig::new(launch, t), dims);
        let r = order / 2;
        let expect: u64 = (1..=t)
            .map(|s| {
                let shrink = 2 * r * (t - s);
                ((64 + shrink) * (8 + shrink)) as u64 * kernel.flops_per_point as u64
            })
            .sum();
        prop_assert_eq!(plan.plane.flops, expect);
    }
}
