//! Functional overlapped temporal tiling.
//!
//! The grid is covered by xy-tiles. For a temporal depth `T`, each tile
//! is widened by a halo of `r·T` on every side, copied into a private
//! working grid, advanced `T` Jacobi steps locally (the halo shell
//! shrinks by `r` per step, so after `T` steps the tile interior is
//! exact), and the interior is written back. Tiles are independent —
//! the GPU formulation runs them as thread blocks, and the redundant
//! shell recomputation is the price paid for touching global memory
//! once per `T` steps.

use stencil_grid::{apply_reference, Boundary, Grid3, Real, StarStencil};

/// Statistics from a temporal-tiling pass.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TemporalStats {
    /// Tiles processed.
    pub tiles: usize,
    /// Points computed including redundant shell work.
    pub points_computed: u64,
    /// Useful (written-back) points.
    pub points_written: u64,
}

impl TemporalStats {
    /// Redundant-work factor: computed / written (≥ 1).
    pub fn redundancy(&self) -> f64 {
        if self.points_written == 0 {
            1.0
        } else {
            self.points_computed as f64 / self.points_written as f64
        }
    }
}

/// Advance `input` by `t_steps` Jacobi steps of `stencil` using
/// overlapped temporal tiles of interior size `tile_x × tile_y`, writing
/// the result to `out`. Boundary ring (width `r`) follows the global
/// Jacobi semantics: held at the input values throughout.
///
/// ```
/// use stencil_grid::{FillPattern, Grid3, StarStencil};
/// use stencil_temporal::execute_temporal;
///
/// let s: StarStencil<f64> = StarStencil::diffusion(1);
/// let input: Grid3<f64> = FillPattern::HashNoise.build(16, 16, 8);
/// let mut out = Grid3::new(16, 16, 8);
/// let stats = execute_temporal(&s, &input, &mut out, 4, 4, 3);
/// // Three steps per pass; redundant shell work is the price.
/// assert!(stats.redundancy() > 1.0);
/// ```
///
/// # Panics
/// Panics if the grid is too small for the stencil radius or
/// `t_steps == 0`.
pub fn execute_temporal<T: Real>(
    stencil: &StarStencil<T>,
    input: &Grid3<T>,
    out: &mut Grid3<T>,
    tile_x: usize,
    tile_y: usize,
    t_steps: usize,
) -> TemporalStats {
    assert!(t_steps >= 1, "temporal depth must be at least 1");
    assert_eq!(input.dims(), out.dims());
    let r = stencil.radius();
    let (nx, ny, nz) = input.dims();
    assert!(
        nx > 2 * r && ny > 2 * r && nz > 2 * r,
        "grid too small for radius {r}"
    );
    let halo = r * t_steps;
    let mut stats = TemporalStats::default();

    // The boundary ring is invariant under the global iteration; copy it
    // up front so tiles only need to produce the interior.
    stencil_grid::boundary::copy_boundary_ring(input, out, r);

    let mut y0 = r;
    while y0 < ny - r {
        let th = tile_y.min(ny - r - y0);
        let mut x0 = r;
        while x0 < nx - r {
            let tw = tile_x.min(nx - r - x0);
            stats.tiles += 1;

            // Halo-expanded window, clipped to the allocation.
            let wx0 = x0.saturating_sub(halo);
            let wy0 = y0.saturating_sub(halo);
            let wx1 = (x0 + tw + halo).min(nx);
            let wy1 = (y0 + th + halo).min(ny);
            let (ww, wh) = (wx1 - wx0, wy1 - wy0);

            // Private working grids covering the window over all z.
            let mut a: Grid3<T> = Grid3::new(ww, wh, nz);
            a.fill_with(|i, j, k| input.get(wx0 + i, wy0 + j, k));
            let mut b = a.clone();

            // Advance T steps locally. The window's outer shell becomes
            // stale by r per step, but points within distance
            // (T - s)·r of the tile stay exact at step s — in
            // particular the tile interior after T steps. Where the
            // window edge coincides with the true grid boundary the ring
            // is genuinely Dirichlet, matching the global semantics.
            for _ in 0..t_steps {
                apply_reference(stencil, &a, &mut b, Boundary::CopyInput);
                std::mem::swap(&mut a, &mut b);
                stats.points_computed += ((ww - 2 * r) * (wh - 2 * r) * (nz - 2 * r)) as u64;
            }

            // Write back the exact interior tile.
            for k in r..nz - r {
                for j in y0..y0 + th {
                    for i in x0..x0 + tw {
                        out.set(i, j, k, a.get(i - wx0, j - wy0, k));
                    }
                }
            }
            stats.points_written += (tw * th * (nz - 2 * r)) as u64;

            x0 += tile_x;
        }
        y0 += tile_y;
    }
    stats
}

#[cfg(test)]
mod tests {
    use super::*;
    use stencil_grid::{iterate_stencil_loop, max_abs_diff, FillPattern};

    fn golden<T: Real>(stencil: &StarStencil<T>, input: &Grid3<T>, steps: usize) -> Grid3<T> {
        let (g, _) = iterate_stencil_loop(input.clone(), stencil.radius(), steps, |i, o| {
            apply_reference(stencil, i, o, Boundary::CopyInput)
        });
        g
    }

    #[test]
    fn one_step_equals_plain_reference() {
        let s: StarStencil<f64> = StarStencil::diffusion(1);
        let input: Grid3<f64> = FillPattern::Random {
            lo: -1.0,
            hi: 1.0,
            seed: 1,
        }
        .build(14, 14, 10);
        let mut out = Grid3::new(14, 14, 10);
        execute_temporal(&s, &input, &mut out, 4, 4, 1);
        let expect = golden(&s, &input, 1);
        assert_eq!(max_abs_diff(&out, &expect), 0.0);
    }

    #[test]
    fn deep_temporal_blocks_match_global_iteration() {
        for (radius, t_steps) in [(1usize, 2usize), (1, 4), (2, 3)] {
            let s: StarStencil<f64> = StarStencil::diffusion(radius);
            let n = 4 * radius * t_steps + 7;
            let input: Grid3<f64> = FillPattern::Random {
                lo: -1.0,
                hi: 1.0,
                seed: 7,
            }
            .build(n, n, 2 * radius + 4);
            let mut out = Grid3::new(n, n, 2 * radius + 4);
            execute_temporal(&s, &input, &mut out, 5, 3, t_steps);
            let expect = golden(&s, &input, t_steps);
            assert!(
                max_abs_diff(&out, &expect) < 1e-12,
                "r={radius} T={t_steps}: mismatch"
            );
        }
    }

    #[test]
    fn tile_size_does_not_change_the_answer() {
        let s: StarStencil<f64> = StarStencil::diffusion(1);
        let input: Grid3<f64> = FillPattern::Random {
            lo: 0.0,
            hi: 1.0,
            seed: 3,
        }
        .build(18, 18, 8);
        let mut a = Grid3::new(18, 18, 8);
        let mut b = Grid3::new(18, 18, 8);
        execute_temporal(&s, &input, &mut a, 3, 7, 3);
        execute_temporal(&s, &input, &mut b, 16, 2, 3);
        assert_eq!(max_abs_diff(&a, &b), 0.0);
    }

    #[test]
    fn redundancy_grows_with_temporal_depth_and_shrinks_with_tile() {
        let s: StarStencil<f64> = StarStencil::diffusion(1);
        let input: Grid3<f64> = FillPattern::HashNoise.build(34, 34, 8);
        let run = |tile: usize, t: usize| {
            let mut out = Grid3::new(34, 34, 8);
            execute_temporal(&s, &input, &mut out, tile, tile, t).redundancy()
        };
        assert!(
            run(8, 4) > run(8, 2),
            "deeper T must cost more redundant work"
        );
        assert!(run(16, 4) < run(8, 4), "bigger tiles amortise the shell");
        assert!(run(8, 1) >= 1.0);
    }

    #[test]
    fn boundary_ring_is_held_fixed() {
        let s: StarStencil<f64> = StarStencil::diffusion(2);
        let input: Grid3<f64> = FillPattern::Random {
            lo: -1.0,
            hi: 1.0,
            seed: 5,
        }
        .build(13, 13, 9);
        let mut out = Grid3::new(13, 13, 9);
        execute_temporal(&s, &input, &mut out, 4, 4, 3);
        for ((i, j, k), v) in out.iter_logical() {
            let dims = (13, 13, 9);
            if stencil_grid::boundary::in_boundary_ring(dims, 2, i, j, k) {
                assert_eq!(v, input.get(i, j, k), "ring moved at ({i},{j},{k})");
            }
        }
    }

    #[test]
    #[should_panic(expected = "temporal depth")]
    fn zero_steps_rejected() {
        let s: StarStencil<f32> = StarStencil::diffusion(1);
        let input: Grid3<f32> = Grid3::new(8, 8, 8);
        let mut out = Grid3::new(8, 8, 8);
        execute_temporal(&s, &input, &mut out, 4, 4, 0);
    }
}
