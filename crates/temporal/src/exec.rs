//! Functional overlapped temporal tiling, as a **plan transform**.
//!
//! The grid is covered by xy-tiles. For a temporal depth `T`, each tile
//! is widened by a halo of `r·T` on every side, copied into a private
//! working grid, advanced `T` Jacobi steps locally (the halo shell
//! shrinks by `r` per step, so after `T` steps the tile interior is
//! exact), and the interior is written back. Tiles are independent —
//! the GPU formulation runs them as thread blocks, and the redundant
//! shell recomputation is the price paid for touching global memory
//! once per `T` steps.
//!
//! [`temporal_stage_plan`] expresses that schedule in the
//! [`StagePlan`] IR: per tile it allocates two working buffers, scatters
//! the halo-expanded window in with a [`PlanOp::CopyBox`], splices in
//! `T` retargeted copies of the forward-plane step lowering (each
//! followed by a boundary ring copy and a buffer swap), and gathers the
//! exact interior back out. [`execute_temporal`] just interprets that
//! plan — the same instrumented interpreter every other path runs on.

use inplane_core::plan::{PlanOp, StagePlan, INPUT_BUF, OUTPUT_BUF};
use inplane_core::{interpret_plan, lower_forward, ExecStats, LaunchConfig};
use stencil_grid::{Boundary, Grid3, Real, StarStencil};

/// Statistics from a temporal-tiling pass.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TemporalStats {
    /// Tiles processed.
    pub tiles: usize,
    /// Points computed including redundant shell work.
    pub points_computed: u64,
    /// Useful (written-back) points.
    pub points_written: u64,
    /// Full interpreter counters for the transformed plan (staging
    /// traffic, barriers, pipeline rotations, gather volume, ...).
    pub exec: ExecStats,
}

impl TemporalStats {
    /// Redundant-work factor: computed / written (≥ 1). Defined (1.0)
    /// for degenerate runs that wrote nothing, so a 1-tile/1-step
    /// configuration can never divide by zero.
    pub fn redundancy(&self) -> f64 {
        if self.points_written == 0 {
            1.0
        } else {
            self.points_computed as f64 / self.points_written as f64
        }
    }
}

/// Lower a whole temporal-tiling pass over `dims` to a [`StagePlan`]:
/// the per-tile scatter / `T`-step local iteration / gather schedule
/// described in the module docs. Pure function of the arguments.
///
/// # Panics
/// Panics if `t_steps == 0` or the grid is too small for `r`.
pub fn temporal_stage_plan(
    r: usize,
    dims: (usize, usize, usize),
    tile_x: usize,
    tile_y: usize,
    t_steps: usize,
) -> StagePlan {
    assert!(t_steps >= 1, "temporal depth must be at least 1");
    let (nx, ny, nz) = dims;
    assert!(
        nx > 2 * r && ny > 2 * r && nz > 2 * r,
        "grid too small for radius {r}"
    );
    let halo = r * t_steps;

    // The boundary ring is invariant under the global iteration; copy it
    // up front so tiles only need to produce the interior.
    let mut ops = vec![PlanOp::ApplyBoundary {
        input: INPUT_BUF,
        output: OUTPUT_BUF,
        boundary: Boundary::CopyInput,
    }];
    let mut next_buf = 2;

    let mut y0 = r;
    while y0 < ny - r {
        let th = tile_y.min(ny - r - y0);
        let mut x0 = r;
        while x0 < nx - r {
            let tw = tile_x.min(nx - r - x0);

            // Halo-expanded window, clipped to the allocation.
            let wx0 = x0.saturating_sub(halo);
            let wy0 = y0.saturating_sub(halo);
            let wx1 = (x0 + tw + halo).min(nx);
            let wy1 = (y0 + th + halo).min(ny);
            let (ww, wh) = (wx1 - wx0, wy1 - wy0);

            // Two private working buffers covering the window over all z.
            let (a, b) = (next_buf, next_buf + 1);
            next_buf += 2;
            ops.push(PlanOp::Alloc {
                buf: a,
                dims: (ww, wh, nz),
            });
            ops.push(PlanOp::Alloc {
                buf: b,
                dims: (ww, wh, nz),
            });
            ops.push(PlanOp::CopyBox {
                src: INPUT_BUF,
                dst: a,
                src_org: (wx0, wy0, 0),
                dst_org: (0, 0, 0),
                extent: (ww, wh, nz),
            });

            // Advance T steps locally: each step is the ordinary
            // forward-plane lowering of the window, retargeted at the
            // working buffers. The window's outer shell becomes stale by
            // r per step, but points within distance (T - s)·r of the
            // tile stay exact at step s — in particular the tile
            // interior after T steps. Where the window edge coincides
            // with the true grid boundary the ring is genuinely
            // Dirichlet, matching the global semantics.
            let cfg = LaunchConfig::new(ww - 2 * r, wh - 2 * r, 1, 1);
            for _ in 0..t_steps {
                let mut step = lower_forward(&cfg, r, (ww, wh, nz));
                step.retarget_buffers(|id| match id {
                    INPUT_BUF => a,
                    OUTPUT_BUF => b,
                    other => other,
                });
                ops.extend(step.ops);
                ops.push(PlanOp::ApplyBoundary {
                    input: a,
                    output: b,
                    boundary: Boundary::CopyInput,
                });
                ops.push(PlanOp::SwapBufs { a, b });
            }

            // Gather the exact interior tile.
            ops.push(PlanOp::CopyBox {
                src: a,
                dst: OUTPUT_BUF,
                src_org: (x0 - wx0, y0 - wy0, r),
                dst_org: (x0, y0, r),
                extent: (tw, th, nz - 2 * r),
            });

            x0 += tile_x;
        }
        y0 += tile_y;
    }

    StagePlan {
        method: inplane_core::Method::ForwardPlane,
        radius: r,
        dims,
        ops,
    }
}

/// Advance `input` by `t_steps` Jacobi steps of `stencil` using
/// overlapped temporal tiles of interior size `tile_x × tile_y`, writing
/// the result to `out`. Boundary ring (width `r`) follows the global
/// Jacobi semantics: held at the input values throughout.
///
/// ```
/// use stencil_grid::{FillPattern, Grid3, StarStencil};
/// use stencil_temporal::execute_temporal;
///
/// let s: StarStencil<f64> = StarStencil::diffusion(1);
/// let input: Grid3<f64> = FillPattern::HashNoise.build(16, 16, 8);
/// let mut out = Grid3::new(16, 16, 8);
/// let stats = execute_temporal(&s, &input, &mut out, 4, 4, 3);
/// // Three steps per pass; redundant shell work is the price.
/// assert!(stats.redundancy() > 1.0);
/// ```
///
/// # Panics
/// Panics if the grid is too small for the stencil radius or
/// `t_steps == 0`.
pub fn execute_temporal<T: Real>(
    stencil: &StarStencil<T>,
    input: &Grid3<T>,
    out: &mut Grid3<T>,
    tile_x: usize,
    tile_y: usize,
    t_steps: usize,
) -> TemporalStats {
    assert_eq!(input.dims(), out.dims());
    let plan = temporal_stage_plan(stencil.radius(), input.dims(), tile_x, tile_y, t_steps);
    let tiles = plan
        .ops
        .iter()
        .filter(|op| matches!(op, PlanOp::Alloc { .. }))
        .count()
        / 2;
    let exec = interpret_plan(&plan, stencil, input, out);
    TemporalStats {
        tiles,
        points_computed: exec.points_computed,
        points_written: exec.cells_copied_out,
        exec,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stencil_grid::{apply_reference, iterate_stencil_loop, max_abs_diff, FillPattern};

    fn golden<T: Real>(stencil: &StarStencil<T>, input: &Grid3<T>, steps: usize) -> Grid3<T> {
        let (g, _) = iterate_stencil_loop(input.clone(), stencil.radius(), steps, |i, o| {
            apply_reference(stencil, i, o, Boundary::CopyInput)
        });
        g
    }

    #[test]
    fn one_step_equals_plain_reference() {
        let s: StarStencil<f64> = StarStencil::diffusion(1);
        let input: Grid3<f64> = FillPattern::Random {
            lo: -1.0,
            hi: 1.0,
            seed: 1,
        }
        .build(14, 14, 10);
        let mut out = Grid3::new(14, 14, 10);
        execute_temporal(&s, &input, &mut out, 4, 4, 1);
        let expect = golden(&s, &input, 1);
        assert_eq!(max_abs_diff(&out, &expect), 0.0);
    }

    #[test]
    fn deep_temporal_blocks_match_global_iteration() {
        for (radius, t_steps) in [(1usize, 2usize), (1, 4), (2, 3)] {
            let s: StarStencil<f64> = StarStencil::diffusion(radius);
            let n = 4 * radius * t_steps + 7;
            let input: Grid3<f64> = FillPattern::Random {
                lo: -1.0,
                hi: 1.0,
                seed: 7,
            }
            .build(n, n, 2 * radius + 4);
            let mut out = Grid3::new(n, n, 2 * radius + 4);
            execute_temporal(&s, &input, &mut out, 5, 3, t_steps);
            let expect = golden(&s, &input, t_steps);
            assert!(
                max_abs_diff(&out, &expect) < 1e-12,
                "r={radius} T={t_steps}: mismatch"
            );
        }
    }

    #[test]
    fn tile_size_does_not_change_the_answer() {
        let s: StarStencil<f64> = StarStencil::diffusion(1);
        let input: Grid3<f64> = FillPattern::Random {
            lo: 0.0,
            hi: 1.0,
            seed: 3,
        }
        .build(18, 18, 8);
        let mut a = Grid3::new(18, 18, 8);
        let mut b = Grid3::new(18, 18, 8);
        execute_temporal(&s, &input, &mut a, 3, 7, 3);
        execute_temporal(&s, &input, &mut b, 16, 2, 3);
        assert_eq!(max_abs_diff(&a, &b), 0.0);
    }

    #[test]
    fn redundancy_grows_with_temporal_depth_and_shrinks_with_tile() {
        let s: StarStencil<f64> = StarStencil::diffusion(1);
        let input: Grid3<f64> = FillPattern::HashNoise.build(34, 34, 8);
        let run = |tile: usize, t: usize| {
            let mut out = Grid3::new(34, 34, 8);
            execute_temporal(&s, &input, &mut out, tile, tile, t).redundancy()
        };
        assert!(
            run(8, 4) > run(8, 2),
            "deeper T must cost more redundant work"
        );
        assert!(run(16, 4) < run(8, 4), "bigger tiles amortise the shell");
        assert!(run(8, 1) >= 1.0);
    }

    #[test]
    fn boundary_ring_is_held_fixed() {
        let s: StarStencil<f64> = StarStencil::diffusion(2);
        let input: Grid3<f64> = FillPattern::Random {
            lo: -1.0,
            hi: 1.0,
            seed: 5,
        }
        .build(13, 13, 9);
        let mut out = Grid3::new(13, 13, 9);
        execute_temporal(&s, &input, &mut out, 4, 4, 3);
        for ((i, j, k), v) in out.iter_logical() {
            let dims = (13, 13, 9);
            if stencil_grid::boundary::in_boundary_ring(dims, 2, i, j, k) {
                assert_eq!(v, input.get(i, j, k), "ring moved at ({i},{j},{k})");
            }
        }
    }

    #[test]
    fn exec_stats_agree_with_the_legacy_counters() {
        let s: StarStencil<f64> = StarStencil::diffusion(1);
        let input: Grid3<f64> = FillPattern::HashNoise.build(16, 16, 8);
        let mut out = Grid3::new(16, 16, 8);
        let stats = execute_temporal(&s, &input, &mut out, 4, 4, 2);
        // One working window per tile: 14×14 interior over 4×4 tiles.
        assert_eq!(stats.tiles, 4 * 4);
        assert_eq!(stats.points_computed, stats.exec.points_computed);
        assert_eq!(stats.points_written, stats.exec.cells_copied_out);
        // Every tile gathers its exact interior: the useful points are
        // the global interior, written exactly once.
        assert_eq!(stats.points_written, 14 * 14 * 6);
        assert!(stats.exec.barriers > 0);
        assert!(stats.exec.cells_staged > 0);
        assert!(stats.exec.redundancy() > 1.0);
    }

    #[test]
    fn degenerate_single_tile_single_step_redundancy_is_defined() {
        // Regression: a tile covering the whole interior at T = 1 does
        // no redundant work — the ratio must be exactly 1, not NaN/inf.
        let s: StarStencil<f64> = StarStencil::diffusion(1);
        let input: Grid3<f64> = FillPattern::HashNoise.build(10, 10, 6);
        let mut out = Grid3::new(10, 10, 6);
        let stats = execute_temporal(&s, &input, &mut out, 64, 64, 1);
        assert_eq!(stats.tiles, 1);
        assert!(stats.redundancy().is_finite());
        assert_eq!(stats.redundancy(), 1.0);
        // And the all-zero default (nothing ran at all) is defined too.
        assert_eq!(TemporalStats::default().redundancy(), 1.0);
        assert_eq!(ExecStats::default().redundancy(), 1.0);
    }

    #[test]
    #[should_panic(expected = "temporal depth")]
    fn zero_steps_rejected() {
        let s: StarStencil<f32> = StarStencil::diffusion(1);
        let input: Grid3<f32> = Grid3::new(8, 8, 8);
        let mut out = Grid3::new(8, 8, 8);
        execute_temporal(&s, &input, &mut out, 4, 4, 0);
    }
}
