#![forbid(unsafe_code)]
#![warn(missing_docs)]

//! # stencil-temporal
//!
//! Temporal (3.5-D) blocking — the strongest related-work baseline the
//! paper positions itself against (§II, §V-B: Nguyen *et al.*'s "3.5-D
//! blocking optimization", 1-D temporal blocking combined with 2.5-D
//! spatial blocking).
//!
//! Where the in-plane method reduces the *per-step* halo traffic,
//! temporal blocking amortises the grid traffic over `T` time steps:
//! each block loads a halo-expanded tile (halo width `r·T`), advances it
//! `T` steps locally (redundantly recomputing the shrinking halo shell),
//! and writes back only the valid interior. Traffic per point per step
//! approaches `(read + write)/T`, at the cost of `(1 + 2rT/W)²`-fold
//! redundant compute and a much larger working set.
//!
//! Two faces, like every kernel in this workspace:
//!
//! * [`exec`] — functional overlapped temporal tiling, verified to equal
//!   `T` global Jacobi steps exactly on the interior;
//! * [`perf`] — a [`gpu_sim`]-priced plan for the 3.5-D GPU kernel, used
//!   by the `temporal` benchmark to locate the crossover between the
//!   in-plane method and temporal blocking.

pub mod exec;
pub mod perf;

pub use exec::{execute_temporal, temporal_stage_plan, TemporalStats};
pub use perf::{simulate_temporal, temporal_plan, TemporalConfig};
