//! Performance plan for the 3.5-D GPU kernel.
//!
//! Per z-plane, the temporal kernel loads one plane of the halo-expanded
//! tile (`(W + 2rT)` wide per axis), advances the temporal pipeline —
//! intermediate time steps live in shared memory, the z-pipelines of the
//! current step in registers — and stores one fully-advanced plane. One
//! sweep of the grid therefore performs `T` Jacobi steps: the effective
//! throughput is `T ×` the sweep rate, which is how temporal blocking
//! beats the DRAM roofline that caps every single-step method.

use gpu_sim::occupancy::BlockResources;
use gpu_sim::plan::{BlockPlan, GridDims, LaunchGeometry, PlanePlan};
use gpu_sim::{apply_noise, DeviceSpec, SimOptions, SimReport};
use inplane_core::layout::TileGeometry;
use inplane_core::regions::{Assignment, Region};
use inplane_core::resources::BASE_REGS;
use inplane_core::{EvalContext, KernelSpec, LaunchConfig, PlanKey};

/// A temporally blocked launch: spatial blocking plus temporal depth.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TemporalConfig {
    /// Spatial blocking factors.
    pub launch: LaunchConfig,
    /// Time steps advanced per sweep (`T`; 1 = plain 2.5-D blocking).
    pub t_steps: usize,
}

impl TemporalConfig {
    /// Construct; `t_steps` must be at least 1.
    pub fn new(launch: LaunchConfig, t_steps: usize) -> Self {
        assert!(t_steps >= 1, "temporal depth must be at least 1");
        TemporalConfig { launch, t_steps }
    }

    /// Halo width of the expanded tile: `r · T`.
    pub fn halo(&self, radius: usize) -> usize {
        radius * self.t_steps
    }
}

/// Build the per-plane block plan for the 3.5-D kernel.
pub fn temporal_plan(
    device: &DeviceSpec,
    kernel: &KernelSpec,
    config: &TemporalConfig,
    dims: GridDims,
) -> BlockPlan {
    let r = kernel.radius;
    let halo = config.halo(r);
    let (wx, wy) = (config.launch.tile_x(), config.launch.tile_y());
    let vw = kernel.precision().max_vector_width();

    // Geometry with the temporally expanded halo standing in for `r`.
    let geom = TileGeometry::interior(
        &config.launch,
        halo,
        kernel.elem_bytes as u64,
        dims.lx,
        device.segment_bytes,
    );

    // Loads: one packed vectorised sweep over the expanded slab.
    let (sx_s, sx_e) = geom.slab_x();
    let (sy_s, sy_e) = geom.slab_y();
    let slab = Region {
        x: (sx_s, sx_e),
        y: (sy_s, sy_e),
        vector_width: vw,
        assignment: Assignment::Packed,
    };
    let loads = slab.lower(&geom, device.warp_size);

    // Stores: the tile, coalesced rows.
    let store = Region {
        x: geom.interior_x(),
        y: geom.interior_y(),
        vector_width: 1,
        assignment: Assignment::PerRow,
    };
    let stores = store.lower(&geom, device.warp_size);

    // Compute: T steps over shrinking shells.
    let flops: u64 = (1..=config.t_steps)
        .map(|s| {
            let shrink = 2 * r * (config.t_steps - s);
            ((wx + shrink) * (wy + shrink)) as u64 * kernel.flops_per_point as u64
        })
        .sum();

    // Shared memory: one staged plane per in-flight time step plus the
    // incoming plane, all at the expanded width.
    let slab_elems = (wx + 2 * halo) * (wy + 2 * halo);
    let smem_bytes = (config.t_steps + 1) * slab_elems * kernel.elem_bytes;

    // Registers: the current step's z-pipeline per point plus fixed
    // overhead (intermediate steps live in shared memory).
    let regs = BASE_REGS
        + (2 * r + 1) * config.launch.points_per_thread() * (kernel.elem_bytes / 4)
        + 2 * (kernel.elem_bytes / 4);

    let warps = config.launch.threads().div_ceil(device.warp_size) as u64;
    let smem_reads = warps
        * config.launch.points_per_thread() as u64
        * (4 * r as u64 + 1)
        * config.t_steps as u64;

    BlockPlan {
        plane: PlanePlan {
            smem_warp_instrs: loads.len() as u64 + smem_reads,
            loads,
            stores,
            bank_conflict_factor: 1.0,
            flops,
            dependent_rounds: config.t_steps as f64, // step-to-step dependency chain
            ilp: config.launch.points_per_thread() as f64,
            syncthreads: 2 * config.t_steps as u64, // two barriers per time step
        },
        resources: BlockResources {
            threads: config.launch.threads(),
            regs_per_thread: regs,
            smem_bytes,
        },
        geometry: LaunchGeometry {
            blocks: config.launch.blocks_per_plane(dims.lx, dims.ly),
            threads_per_block: config.launch.threads(),
            planes: dims.lz,
        },
        elem_bytes: kernel.elem_bytes,
    }
}

/// Simulate one sweep and return `(report, effective_mpoints)`: a sweep
/// advances the whole grid by `T` steps, so the effective rate is `T ×`
/// points over the sweep time.
///
/// Routes through the global [`EvalContext`]: the temporal plan and its
/// clean price are memoized under a key salted with `T` (so a `T`-deep
/// plan never aliases the plain spatial lowering of the same launch);
/// noise, if enabled in `opts`, is applied after the cache.
pub fn simulate_temporal(
    device: &DeviceSpec,
    kernel: &KernelSpec,
    config: &TemporalConfig,
    dims: GridDims,
    opts: &SimOptions,
) -> (SimReport, f64) {
    let key = PlanKey::with_salt(device, kernel, &config.launch, dims, config.t_steps as u64);
    let mut report = EvalContext::global().price_with(device, &key, dims, opts, || {
        temporal_plan(device, kernel, config, dims)
    });
    apply_noise(
        &mut report,
        key.noise_key(),
        opts.noise_seed,
        opts.noise_amplitude,
    );
    let effective = report.mpoints_per_s() * config.t_steps as f64;
    (report, effective)
}

#[cfg(test)]
mod tests {
    use super::*;
    use inplane_core::{Method, Variant};
    use stencil_grid::Precision;

    fn kernel() -> KernelSpec {
        KernelSpec::star_order(Method::InPlane(Variant::FullSlice), 2, Precision::Single)
    }

    #[test]
    fn t1_behaves_like_a_spatial_kernel() {
        let dev = DeviceSpec::gtx580();
        let dims = GridDims::paper();
        let cfg = TemporalConfig::new(LaunchConfig::new(64, 8, 1, 1), 1);
        let (rep, eff) = simulate_temporal(&dev, &kernel(), &cfg, dims, &SimOptions::default());
        assert!(rep.feasible());
        assert!((eff - rep.mpoints_per_s()).abs() < 1e-9);
    }

    #[test]
    fn moderate_depth_amortises_traffic() {
        // Effective bytes per point per step must drop with T.
        let dev = DeviceSpec::gtx580();
        let dims = GridDims::paper();
        let per_step_bytes = |t: usize| {
            let cfg = TemporalConfig::new(LaunchConfig::new(64, 8, 1, 1), t);
            let (rep, _) = simulate_temporal(&dev, &kernel(), &cfg, dims, &SimOptions::default());
            rep.mem.transferred_bytes as f64 / (rep.points as f64 * t as f64)
        };
        assert!(per_step_bytes(2) < per_step_bytes(1));
        assert!(per_step_bytes(4) < per_step_bytes(2));
    }

    #[test]
    fn excessive_depth_runs_out_of_shared_memory() {
        let dev = DeviceSpec::gtx580();
        let dims = GridDims::paper();
        let cfg = TemporalConfig::new(LaunchConfig::new(64, 8, 1, 1), 16);
        let (rep, _) = simulate_temporal(&dev, &kernel(), &cfg, dims, &SimOptions::default());
        assert!(
            !rep.feasible(),
            "T = 16 slabs cannot fit 48 KB of shared memory"
        );
    }

    #[test]
    fn there_is_a_sweet_spot_in_t() {
        // Effective throughput should rise from T = 1 and eventually
        // fall (or die) as redundancy and resources bite.
        let dev = DeviceSpec::gtx580();
        let dims = GridDims::paper();
        let eff = |t: usize| {
            let cfg = TemporalConfig::new(LaunchConfig::new(64, 8, 1, 1), t);
            simulate_temporal(&dev, &kernel(), &cfg, dims, &SimOptions::default()).1
        };
        let e1 = eff(1);
        let best = (2..=8).map(eff).fold(0.0f64, f64::max);
        assert!(
            best > e1,
            "some T > 1 must beat T = 1 for a bandwidth-bound kernel"
        );
        let deep = eff(8);
        let mid = eff(2).max(eff(3)).max(eff(4));
        assert!(deep < mid || deep == 0.0, "very deep T should fall off");
    }

    #[test]
    #[should_panic(expected = "temporal depth")]
    fn zero_depth_rejected() {
        TemporalConfig::new(LaunchConfig::new(32, 4, 1, 1), 0);
    }
}
