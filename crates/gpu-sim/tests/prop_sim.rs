//! Property-based tests for the GPU simulator: coalescing invariants,
//! occupancy monotonicity, and timing-engine sanity.

use gpu_sim::occupancy::{active_blocks, BlockResources};
use gpu_sim::{coalesce_transactions, DeviceSpec, MemCounters, WarpLoad};
use proptest::prelude::*;

fn arb_load() -> impl Strategy<Value = WarpLoad> {
    (
        prop::collection::vec(0u64..100_000, 1..32),
        prop::sample::select(vec![4u64, 8, 16]),
    )
        .prop_map(|(addrs, bytes)| WarpLoad {
            lane_addresses: addrs.into_iter().map(|a| a * 4).collect(),
            bytes_per_lane: bytes,
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Transactions are bounded below by the footprint and above by the
    /// per-lane segment spans.
    #[test]
    fn transaction_count_bounds(load in arb_load(), seg in prop::sample::select(vec![32u64, 128])) {
        let tx = coalesce_transactions(&load, seg) as u64;
        // Upper bound: each lane touches at most spans segments.
        let max_spans: u64 = load
            .lane_addresses
            .iter()
            .map(|&a| (a + load.bytes_per_lane - 1) / seg - a / seg + 1)
            .sum();
        prop_assert!(tx <= max_spans);
        // Lower bound: at least the unique bytes / segment size.
        let unique: std::collections::HashSet<u64> = load
            .lane_addresses
            .iter()
            .flat_map(|&a| (a..a + load.bytes_per_lane).step_by(4))
            .collect();
        let min_tx = (unique.len() as u64 * 4).div_ceil(seg);
        prop_assert!(tx >= min_tx, "tx {tx} < floor {min_tx}");
        prop_assert!(tx >= 1);
    }

    /// Coalescing is invariant under lane permutation and duplication.
    #[test]
    fn coalescing_invariant_under_permutation(load in arb_load(), rot in 0usize..31) {
        let tx = coalesce_transactions(&load, 128);
        let mut rotated = load.clone();
        let n = rotated.lane_addresses.len();
        rotated.lane_addresses.rotate_left(rot % n);
        prop_assert_eq!(coalesce_transactions(&rotated, 128), tx);
        let mut dup = load.clone();
        dup.lane_addresses.extend(load.lane_addresses.iter().copied());
        prop_assert_eq!(coalesce_transactions(&dup, 128), tx);
    }

    /// Smaller segments can only split transactions, never merge them:
    /// bus bytes with 32-byte sectors never exceed 128-byte lines.
    #[test]
    fn finer_segments_move_fewer_or_equal_bytes(load in arb_load()) {
        let bytes_128 = coalesce_transactions(&load, 128) as u64 * 128;
        let bytes_32 = coalesce_transactions(&load, 32) as u64 * 32;
        prop_assert!(bytes_32 <= bytes_128);
    }

    /// Load efficiency is a fraction and scaling counters preserves it.
    #[test]
    fn efficiency_is_a_fraction(loads in prop::collection::vec(arb_load(), 1..8), n in 1u64..100) {
        let mut c = MemCounters::default();
        c.record_all(&loads, 128);
        prop_assert!(c.efficiency() > 0.0 && c.efficiency() <= 1.0 + 1e-12);
        let s = c.scaled(n);
        prop_assert!((s.efficiency() - c.efficiency()).abs() < 1e-12);
    }

    /// More resource use never increases occupancy (monotonicity).
    #[test]
    fn occupancy_monotone_in_resources(
        threads in 32usize..512,
        regs in 8usize..48,
        smem in 0usize..32768,
        extra_regs in 0usize..15,
        extra_smem in 0usize..8192,
    ) {
        let dev = DeviceSpec::gtx580();
        let base = active_blocks(&dev, &BlockResources { threads, regs_per_thread: regs, smem_bytes: smem });
        let more = active_blocks(
            &dev,
            &BlockResources {
                threads,
                regs_per_thread: regs + extra_regs,
                smem_bytes: smem + extra_smem,
            },
        );
        prop_assert!(more.active_blocks <= base.active_blocks);
        prop_assert!(more.occupancy <= base.occupancy + 1e-12);
    }

    /// Occupancy never exceeds the hardware warp slots.
    #[test]
    fn occupancy_respects_warp_slots(
        threads in 1usize..1025,
        regs in 1usize..64,
        smem in 0usize..49153,
    ) {
        for dev in DeviceSpec::paper_devices() {
            let occ = active_blocks(&dev, &BlockResources { threads, regs_per_thread: regs, smem_bytes: smem });
            prop_assert!(occ.active_warps <= dev.max_warps_per_sm);
            prop_assert!(occ.occupancy <= 1.0 + 1e-12);
            prop_assert!(occ.active_blocks <= dev.max_blocks_per_sm);
        }
    }

    /// Measurement noise is always within its amplitude and reproducible.
    #[test]
    fn noise_bounds(key in "[a-z]{1,12}", seed in 0u64..1000, amp in 0.0f64..0.2) {
        let f = gpu_sim::measurement_noise(&key, seed, amp);
        prop_assert!((1.0 - amp..=1.0 + amp).contains(&f));
        prop_assert_eq!(f, gpu_sim::measurement_noise(&key, seed, amp));
    }
}
