//! The timing engine: pricing one kernel launch on one device.
//!
//! Structure follows the paper's Eqns (6)–(9) — blocks per plane, active
//! blocks per SM, stages, remainder stage — but each per-plane cost is
//! computed from the address-accurate workload instead of the coarse
//! closed forms of Eqns (10)–(13):
//!
//! ```text
//! plane_cycles(A) = max( mem_cycles(A), lsu_cycles(A), compute_cycles(A) )
//!                 + exposed_latency(A) + barrier_overhead
//! ```
//!
//! * `mem_cycles`  — transferred bytes of `A` resident blocks against the
//!   SM's share of *achieved* DRAM bandwidth,
//! * `lsu_cycles`  — every warp memory instruction (global and shared,
//!   bank-conflict-scaled) through the load/store units,
//! * `compute_cycles` — flops against the SM's SP/DP rate,
//! * `exposed_latency` — `dependent_rounds × Lat × (1 − hide)` where
//!   `hide` is the paper's linear latency-hiding function `f(·)` evaluated
//!   on resident warps scaled by per-thread ILP,
//! * `barrier_overhead` — a fixed cost per `__syncthreads()`.
//!
//! The paper's own analytic model (Eqns (10)–(14), implemented in
//! `stencil-autotune`) ignores bank conflicts, scheduling overhead and
//! cache effects; this engine includes the first two and a launch
//! overhead, which is precisely why the two disagree by a few percent —
//! the gap Fig 12 studies.

use crate::counters::{LimitingFactor, SimReport};
use crate::device::DeviceSpec;
use crate::mem::MemCounters;
use crate::noise::{measurement_noise, measurement_noise_keyed, NoiseKey};
use crate::occupancy::{active_blocks, Occupancy};
use crate::plan::{BlockPlan, GridDims};

/// How latency hiding scales with resident parallelism (the shape of
/// the paper's `f(·)`). The paper specifies linear; the saturating
/// variant exists for the ablation study in `stencil-bench`.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum HidingModel {
    /// Linear interpolation between one warp (nothing hidden) and a
    /// full SM (everything hidden) — the paper's choice.
    #[default]
    Linear,
    /// Exponential saturation: a third of the warp slots already hides
    /// most latency, as heavily memory-parallel kernels behave.
    Saturating,
}

/// Tunable simulation options.
#[derive(Clone, Debug, PartialEq)]
pub struct SimOptions {
    /// Fixed kernel launch overhead, seconds (driver + scheduling).
    pub launch_overhead_s: f64,
    /// Cycles per `__syncthreads()` barrier.
    pub barrier_cycles: f64,
    /// Multiplicative measurement noise amplitude (0 disables).
    pub noise_amplitude: f64,
    /// Seed for the deterministic noise hash.
    pub noise_seed: u64,
    /// Extra identifying string mixed into the noise (set this to the
    /// kernel/config label so distinct configurations de-correlate).
    pub noise_key: String,
    /// Latency-hiding shape.
    pub hiding: HidingModel,
}

impl Default for SimOptions {
    fn default() -> Self {
        SimOptions {
            launch_overhead_s: 5e-6,
            barrier_cycles: 32.0,
            noise_amplitude: 0.0,
            noise_seed: 0,
            noise_key: String::new(),
            hiding: HidingModel::Linear,
        }
    }
}

impl SimOptions {
    /// Options with measurement noise enabled at `amplitude`, keyed by
    /// `key` (typically the config label) and `seed`.
    pub fn with_noise(key: impl Into<String>, seed: u64, amplitude: f64) -> Self {
        SimOptions {
            noise_amplitude: amplitude,
            noise_seed: seed,
            noise_key: key.into(),
            ..SimOptions::default()
        }
    }

    /// Fingerprint of the fields that affect the *clean* (pre-noise)
    /// simulated time. Two option sets with equal fingerprints produce
    /// bit-identical [`simulate_clean`] results, so the fingerprint is
    /// the cache discriminant for memoized pricing; the noise fields are
    /// deliberately excluded because noise is applied after pricing.
    pub fn pricing_fingerprint(&self) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        let mut fold = |w: u64| {
            for b in w.to_le_bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x100_0000_01b3);
            }
        };
        fold(self.launch_overhead_s.to_bits());
        fold(self.barrier_cycles.to_bits());
        fold(match self.hiding {
            HidingModel::Linear => 0,
            HidingModel::Saturating => 1,
        });
        h
    }
}

/// The paper's latency-hiding function `f(·)`: linear between fully
/// serialised execution (one warp resident) and perfect hiding (the SM's
/// warp slots full). `parallelism` is resident warps × per-thread ILP.
pub fn latency_hiding_fraction(device: &DeviceSpec, parallelism: f64) -> f64 {
    let full = device.max_warps_per_sm as f64;
    ((parallelism - 1.0) / (full - 1.0)).clamp(0.0, 1.0)
}

/// Saturating alternative for the ablation: hiding approaches 1
/// exponentially with scale one third of the SM's warp slots.
pub fn latency_hiding_fraction_saturating(device: &DeviceSpec, parallelism: f64) -> f64 {
    let scale = device.max_warps_per_sm as f64 / 3.0;
    (1.0 - (-(parallelism - 1.0).max(0.0) / scale).exp()).clamp(0.0, 1.0)
}

/// Per-plane cycle cost for `resident` blocks of this plan on one SM,
/// with the default (linear) hiding model.
/// Returns `(cycles, limiting_factor)`.
pub fn plane_cycles(
    device: &DeviceSpec,
    plan: &BlockPlan,
    resident: usize,
) -> (f64, LimitingFactor) {
    plane_cycles_with(device, plan, resident, HidingModel::Linear)
}

/// Per-plane cycle cost under an explicit hiding model.
pub fn plane_cycles_with(
    device: &DeviceSpec,
    plan: &BlockPlan,
    resident: usize,
    hiding: HidingModel,
) -> (f64, LimitingFactor) {
    let a = resident as f64;
    let plane = &plan.plane;

    // Per-block per-plane traffic (address-accurate). Loads get cache
    // credit for duplicate segment references (Fermi L1); stores write
    // through and pay per transaction.
    let mut per_block = MemCounters::default();
    per_block.record_all(&plane.loads, device.segment_bytes);
    per_block.record_all(&plane.stores, device.segment_bytes);
    let mut store_ctr = MemCounters::default();
    store_ctr.record_all(&plane.stores, device.segment_bytes);
    let dram_bytes =
        crate::mem::effective_load_bytes(&plane.loads, device.segment_bytes, device.l1_dup_charge)
            + store_ctr.transferred_bytes as f64;

    let mem_cycles = dram_bytes * a / device.bytes_per_cycle_per_sm();

    let global_instrs = per_block.instructions as f64;
    let smem_instrs = plane.smem_warp_instrs as f64 * plane.bank_conflict_factor;
    let lsu_cycles = (global_instrs + smem_instrs) * a * device.lsu_cycles_per_warp_instr();

    let compute_cycles = plane.flops as f64 * a / device.flops_per_cycle_per_sm(plan.elem_bytes);

    let warps = plan.resources.threads.div_ceil(device.warp_size) as f64;
    let parallelism = a * warps * plane.ilp.max(1.0);
    let hide = match hiding {
        HidingModel::Linear => latency_hiding_fraction(device, parallelism),
        HidingModel::Saturating => latency_hiding_fraction_saturating(device, parallelism),
    };
    let exposed = plane.dependent_rounds * device.mem_latency_cycles * (1.0 - hide);

    // Exposed latency partially overlaps with the streaming work of the
    // other resident warps: the larger of the two sets the floor, and
    // half of the smaller leaks through (dependent address chains and
    // region boundaries stall the LSU front-end even while other warps
    // stream). Full addition would double-charge kernels with deep
    // chains at high occupancy; a pure max would make chain depth free
    // whenever any traffic exists.
    let busy = mem_cycles.max(lsu_cycles).max(compute_cycles);

    let limiting = if exposed > busy {
        LimitingFactor::Latency
    } else if busy == mem_cycles {
        LimitingFactor::MemoryBandwidth
    } else if busy == lsu_cycles {
        LimitingFactor::IssueLsu
    } else {
        LimitingFactor::Compute
    };
    (busy.max(exposed) + 0.5 * busy.min(exposed), limiting)
}

/// Simulate one full grid sweep of `plan` on `device`, then apply the
/// string-keyed measurement noise configured in `opts` (if any).
///
/// This is the historical all-in-one entry point. New code should price
/// with [`simulate_clean`] and perturb with [`apply_noise`] so the pure
/// part can be memoized; this wrapper keeps the two-step split invisible
/// to callers that still pass a `noise_key` string.
pub fn simulate(
    device: &DeviceSpec,
    plan: &BlockPlan,
    dims: &GridDims,
    opts: &SimOptions,
) -> SimReport {
    let mut report = simulate_clean(device, plan, dims, opts);
    if opts.noise_amplitude > 0.0 && report.feasible() {
        report.time_s *= measurement_noise(
            &format!(
                "{}|{}|{}",
                device.name, opts.noise_key, plan.geometry.blocks
            ),
            opts.noise_seed,
            opts.noise_amplitude,
        );
    }
    report
}

/// Multiply a priced report's time by the deterministic measurement
/// noise for `(key, seed)`. The pure counterpart of the noise step that
/// [`simulate`] performs inline; separated so clean [`SimReport`]s can
/// be cached once and re-noised per seed. Infeasible reports pass
/// through untouched.
pub fn apply_noise(report: &mut SimReport, key: NoiseKey, seed: u64, amplitude: f64) {
    if amplitude > 0.0 && report.feasible() {
        report.time_s *= measurement_noise_keyed(key, seed, amplitude);
    }
}

/// Price one full grid sweep of `plan` on `device` — the pure pricing
/// layer. Deterministic in its arguments; the noise fields of `opts`
/// are ignored (only the fields covered by
/// [`SimOptions::pricing_fingerprint`] matter), which is what makes the
/// result safely memoizable.
pub fn simulate_clean(
    device: &DeviceSpec,
    plan: &BlockPlan,
    dims: &GridDims,
    opts: &SimOptions,
) -> SimReport {
    let occ: Occupancy = active_blocks(device, &plan.resources);
    if occ.active_blocks == 0 {
        return SimReport::infeasible(dims.points(), occ);
    }

    let blocks = plan.geometry.blocks;
    let planes = plan.geometry.planes as u64;

    // Eqns (8)–(9): stages of fully-resident SMs plus a remainder stage.
    let per_round = device.sm_count * occ.active_blocks;
    let stages = blocks.div_ceil(per_round);
    let rem_blocks_total = blocks - (stages - 1) * per_round;
    let rem_per_sm = rem_blocks_total.div_ceil(device.sm_count);

    let (full_cycles, limiting_full) =
        plane_cycles_with(device, plan, occ.active_blocks, opts.hiding);
    let (rem_cycles, limiting_rem) =
        plane_cycles_with(device, plan, rem_per_sm.max(1), opts.hiding);
    let barrier = plan.plane.syncthreads as f64 * opts.barrier_cycles;

    let total_cycles =
        planes as f64 * ((stages as f64 - 1.0) * (full_cycles + barrier) + (rem_cycles + barrier));
    let time_s = total_cycles / device.clock_hz() + opts.launch_overhead_s;

    // Whole-sweep traffic: every block runs every plane.
    let mut per_block = MemCounters::default();
    per_block.record_all(&plan.plane.loads, device.segment_bytes);
    per_block.record_all(&plan.plane.stores, device.segment_bytes);
    let mem = per_block.scaled(blocks as u64 * planes);

    let flops = plan.plane.flops * blocks as u64 * planes;

    let limiting = if stages > 1 {
        limiting_full
    } else {
        limiting_rem
    };

    SimReport {
        time_s,
        points: dims.points(),
        mem,
        occupancy: occ,
        limiting,
        stages,
        flops,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mem::WarpLoad;
    use crate::occupancy::BlockResources;
    use crate::plan::{LaunchGeometry, PlanePlan};

    /// A simple streaming plan: `n_loads` coalesced SP warp loads and one
    /// coalesced store per plane, per block of 256 threads.
    fn stream_plan(n_loads: usize, flops: u64) -> BlockPlan {
        let loads = (0..n_loads)
            .map(|i| WarpLoad::contiguous(i as u64 * 128, 32, 4))
            .collect();
        BlockPlan {
            plane: PlanePlan {
                loads,
                stores: vec![WarpLoad::contiguous(1 << 20, 32, 4)],
                smem_warp_instrs: 0,
                bank_conflict_factor: 1.0,
                flops,
                dependent_rounds: 1.0,
                ilp: 1.0,
                syncthreads: 1,
            },
            resources: BlockResources {
                threads: 256,
                regs_per_thread: 20,
                smem_bytes: 4096,
            },
            geometry: LaunchGeometry {
                blocks: 1024,
                threads_per_block: 256,
                planes: 64,
            },
            elem_bytes: 4,
        }
    }

    #[test]
    fn infeasible_plan_reports_infinity() {
        let mut plan = stream_plan(8, 100);
        plan.resources.smem_bytes = 1 << 20;
        let rep = simulate(
            &DeviceSpec::gtx580(),
            &plan,
            &GridDims::paper(),
            &SimOptions::default(),
        );
        assert!(!rep.feasible());
    }

    #[test]
    fn memory_bound_plan_approaches_achieved_bandwidth() {
        // Lots of perfectly coalesced traffic, negligible flops: the
        // simulated sweep must run at ~the device's achieved bandwidth.
        let plan = stream_plan(32, 1);
        let dev = DeviceSpec::gtx580();
        let rep = simulate(&dev, &plan, &GridDims::paper(), &SimOptions::default());
        assert!(rep.feasible());
        let bw = rep.achieved_bandwidth_gbs();
        let target = dev.achieved_bandwidth() / 1e9;
        assert!(
            (bw - target).abs() / target < 0.05,
            "streaming bandwidth {bw} GB/s should be near {target} GB/s"
        );
        assert_eq!(rep.limiting, LimitingFactor::MemoryBandwidth);
    }

    #[test]
    fn compute_bound_plan_approaches_peak_flops() {
        // Tiny traffic, enormous flops: should land near peak SP.
        let mut plan = stream_plan(1, 0);
        plan.plane.flops = 50_000_000;
        let dev = DeviceSpec::gtx580();
        let rep = simulate(&dev, &plan, &GridDims::paper(), &SimOptions::default());
        let gf = rep.gflops();
        let peak = dev.peak_sp_flops() / 1e9;
        assert!(
            (gf - peak).abs() / peak < 0.05,
            "compute-bound rate {gf} GFlop/s should be near peak {peak}"
        );
        assert_eq!(rep.limiting, LimitingFactor::Compute);
    }

    #[test]
    fn dp_compute_is_dp_ratio_slower() {
        let mut sp = stream_plan(1, 0);
        sp.plane.flops = 50_000_000;
        let mut dp = sp.clone();
        dp.elem_bytes = 8;
        let dev = DeviceSpec::gtx580();
        let o = SimOptions {
            launch_overhead_s: 0.0,
            ..SimOptions::default()
        };
        let t_sp = simulate(&dev, &sp, &GridDims::paper(), &o).time_s;
        let t_dp = simulate(&dev, &dp, &GridDims::paper(), &o).time_s;
        assert!(
            (t_dp / t_sp - 8.0).abs() < 0.5,
            "GTX580 DP should be ~8x slower when compute-bound, got {}",
            t_dp / t_sp
        );
    }

    #[test]
    fn poor_coalescing_is_slower_than_good() {
        let good = stream_plan(8, 100);
        let mut bad = good.clone();
        // Same requested bytes, but strided: one transaction per lane.
        bad.plane.loads = (0..8)
            .map(|i| WarpLoad {
                lane_addresses: (0..32u64).map(|l| (i * 32 + l) * 2048).collect(),
                bytes_per_lane: 4,
            })
            .collect();
        let dev = DeviceSpec::gtx580();
        let o = SimOptions::default();
        let t_good = simulate(&dev, &good, &GridDims::paper(), &o).time_s;
        let t_bad = simulate(&dev, &bad, &GridDims::paper(), &o).time_s;
        assert!(t_bad > 2.0 * t_good, "strided loads must be much slower");
    }

    #[test]
    fn low_occupancy_exposes_latency() {
        let mut plan = stream_plan(2, 100);
        // Huge smem: one resident block of 8 warps → poor hiding.
        plan.resources.smem_bytes = 40 * 1024;
        plan.plane.dependent_rounds = 4.0;
        let dev = DeviceSpec::gtx580();
        let o = SimOptions::default();
        let low = simulate(&dev, &plan, &GridDims::paper(), &o);
        let mut plan_hi = plan.clone();
        plan_hi.resources.smem_bytes = 4096;
        let hi = simulate(&dev, &plan_hi, &GridDims::paper(), &o);
        assert!(
            low.time_s > hi.time_s,
            "lower occupancy must not be faster here"
        );
    }

    #[test]
    fn ilp_improves_latency_hiding() {
        let mut plan = stream_plan(2, 100);
        plan.resources.smem_bytes = 40 * 1024; // low occupancy
        plan.plane.dependent_rounds = 4.0;
        let dev = DeviceSpec::gtx580();
        let o = SimOptions::default();
        let base = simulate(&dev, &plan, &GridDims::paper(), &o).time_s;
        plan.plane.ilp = 8.0;
        let ilp = simulate(&dev, &plan, &GridDims::paper(), &o).time_s;
        assert!(ilp < base, "ILP must shorten latency-exposed plans");
    }

    #[test]
    fn latency_hiding_fraction_endpoints() {
        let dev = DeviceSpec::gtx580();
        assert_eq!(latency_hiding_fraction(&dev, 1.0), 0.0);
        assert_eq!(latency_hiding_fraction(&dev, 48.0), 1.0);
        assert_eq!(latency_hiding_fraction(&dev, 500.0), 1.0);
        let mid = latency_hiding_fraction(&dev, 24.5);
        assert!((mid - 0.5).abs() < 1e-12);
    }

    #[test]
    fn saturating_hiding_dominates_linear_at_mid_occupancy() {
        // The ablation's alternative: faster early rise, same endpoints.
        let dev = DeviceSpec::gtx580();
        assert_eq!(latency_hiding_fraction_saturating(&dev, 1.0), 0.0);
        assert!(latency_hiding_fraction_saturating(&dev, 1000.0) > 0.999);
        for p in [4.0, 12.0, 24.0, 40.0] {
            let sat = latency_hiding_fraction_saturating(&dev, p);
            let lin = latency_hiding_fraction(&dev, p);
            assert!(
                sat > lin,
                "parallelism {p}: saturating {sat:.3} vs linear {lin:.3}"
            );
        }
    }

    #[test]
    fn saturating_model_helps_low_occupancy_plans() {
        // At low occupancy the saturating curve hides more latency than
        // the paper's linear f(·); only at exactly-full occupancy does
        // linear's hard 1.0 beat the asymptote.
        let mut plan = stream_plan(2, 100);
        plan.resources.smem_bytes = 40 * 1024; // one resident block
        plan.plane.dependent_rounds = 5.0;
        let dev = DeviceSpec::gtx580();
        let lin = SimOptions::default();
        let sat = SimOptions {
            hiding: HidingModel::Saturating,
            ..SimOptions::default()
        };
        let t_lin = simulate(&dev, &plan, &GridDims::paper(), &lin).time_s;
        let t_sat = simulate(&dev, &plan, &GridDims::paper(), &sat).time_s;
        assert!(
            t_sat < t_lin,
            "saturating {t_sat} should beat linear {t_lin} here"
        );
    }

    #[test]
    fn stages_match_eqn8() {
        let plan = stream_plan(4, 100);
        let dev = DeviceSpec::gtx580();
        let rep = simulate(&dev, &plan, &GridDims::paper(), &SimOptions::default());
        // occupancy: smem 4096 → 8 blocks (block-slot limited; 8 warps each
        // → warp limit 48/8 = 6). regs 20*32=640→granule 640*8 warps...
        // just check Eqn (8) arithmetic against the reported occupancy.
        let per_round = dev.sm_count * rep.occupancy.active_blocks;
        assert_eq!(rep.stages, 1024_usize.div_ceil(per_round));
    }

    #[test]
    fn noise_is_bounded_and_deterministic() {
        let plan = stream_plan(4, 100);
        let dev = DeviceSpec::gtx580();
        let clean = simulate(&dev, &plan, &GridDims::paper(), &SimOptions::default()).time_s;
        let o = SimOptions::with_noise("cfg", 7, 0.02);
        let a = simulate(&dev, &plan, &GridDims::paper(), &o).time_s;
        let b = simulate(&dev, &plan, &GridDims::paper(), &o).time_s;
        assert_eq!(a, b);
        assert!((a / clean - 1.0).abs() <= 0.021);
    }

    #[test]
    fn more_planes_cost_proportionally_more() {
        let plan = stream_plan(8, 100);
        let dev = DeviceSpec::gtx580();
        let o = SimOptions {
            launch_overhead_s: 0.0,
            ..SimOptions::default()
        };
        let d1 = GridDims::new(512, 512, 64);
        let d2 = GridDims::new(512, 512, 128);
        let mut p1 = plan.clone();
        p1.geometry.planes = 64;
        let mut p2 = plan;
        p2.geometry.planes = 128;
        let t1 = simulate(&dev, &p1, &d1, &o).time_s;
        let t2 = simulate(&dev, &p2, &d2, &o).time_s;
        assert!((t2 / t1 - 2.0).abs() < 1e-9);
    }

    #[test]
    fn simulate_is_clean_plus_string_noise() {
        let plan = stream_plan(4, 100);
        let dev = DeviceSpec::gtx580();
        let o = SimOptions::default();
        let clean = simulate_clean(&dev, &plan, &GridDims::paper(), &o);
        let composed = simulate(&dev, &plan, &GridDims::paper(), &o);
        assert_eq!(clean.time_s, composed.time_s);
        let noisy_opts = SimOptions::with_noise("k", 3, 0.02);
        // Clean pricing ignores the noise fields entirely.
        assert_eq!(
            simulate_clean(&dev, &plan, &GridDims::paper(), &noisy_opts).time_s,
            clean.time_s
        );
    }

    #[test]
    fn apply_noise_is_deterministic_and_bounded() {
        let plan = stream_plan(4, 100);
        let dev = DeviceSpec::gtx580();
        let clean = simulate_clean(&dev, &plan, &GridDims::paper(), &SimOptions::default());
        let key = NoiseKey::from_words(&[1, 2, 3]);
        let mut a = clean.clone();
        apply_noise(&mut a, key, 7, 0.02);
        let mut b = clean.clone();
        apply_noise(&mut b, key, 7, 0.02);
        assert_eq!(a.time_s, b.time_s);
        assert!((a.time_s / clean.time_s - 1.0).abs() <= 0.02);
        let mut c = clean.clone();
        apply_noise(&mut c, key, 8, 0.02);
        assert_ne!(
            a.time_s, c.time_s,
            "different seeds must perturb differently"
        );
        let mut z = clean.clone();
        apply_noise(&mut z, key, 7, 0.0);
        assert_eq!(z.time_s, clean.time_s, "zero amplitude is identity");
    }

    #[test]
    fn apply_noise_leaves_infeasible_untouched() {
        let mut plan = stream_plan(8, 100);
        plan.resources.smem_bytes = 1 << 20;
        let dev = DeviceSpec::gtx580();
        let mut rep = simulate_clean(&dev, &plan, &GridDims::paper(), &SimOptions::default());
        let before = rep.time_s;
        apply_noise(&mut rep, NoiseKey::from_words(&[9]), 1, 0.02);
        assert_eq!(rep.time_s.to_bits(), before.to_bits());
    }

    #[test]
    fn pricing_fingerprint_tracks_only_pricing_fields() {
        let base = SimOptions::default();
        let noisy = SimOptions::with_noise("anything", 99, 0.05);
        assert_eq!(base.pricing_fingerprint(), noisy.pricing_fingerprint());
        let slower = SimOptions {
            barrier_cycles: 64.0,
            ..SimOptions::default()
        };
        assert_ne!(base.pricing_fingerprint(), slower.pricing_fingerprint());
        let sat = SimOptions {
            hiding: HidingModel::Saturating,
            ..SimOptions::default()
        };
        assert_ne!(base.pricing_fingerprint(), sat.pricing_fingerprint());
        let overhead = SimOptions {
            launch_overhead_s: 0.0,
            ..SimOptions::default()
        };
        assert_ne!(base.pricing_fingerprint(), overhead.pricing_fingerprint());
    }

    #[test]
    fn report_counts_all_traffic() {
        let plan = stream_plan(2, 10);
        let dev = DeviceSpec::gtx580();
        let rep = simulate(&dev, &plan, &GridDims::paper(), &SimOptions::default());
        // 2 loads + 1 store per plane per block, 128 B each, 1024 blocks, 64 planes.
        assert_eq!(rep.mem.transferred_bytes, 3 * 128 * 1024 * 64);
        assert_eq!(rep.flops, 10 * 1024 * 64);
    }
}
