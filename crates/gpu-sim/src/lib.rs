#![forbid(unsafe_code)]
#![warn(missing_docs)]

//! # gpu-sim
//!
//! A deterministic GPU execution/timing simulator standing in for the
//! paper's three test cards (GeForce GTX580, GeForce GTX680, Tesla
//! C2070). The paper's effects are architectural — memory-transaction
//! coalescing of halo loads, occupancy limits from register/shared-memory
//! budgets, latency hiding as a function of resident warps, and the SP/DP
//! compute-throughput gap — and this crate models exactly those
//! mechanisms:
//!
//! * **Address-accurate coalescing** ([`mem`]): kernel variants hand the
//!   simulator per-warp address lists; the memory model groups them into
//!   aligned segments exactly as the hardware's load/store units do, which
//!   is where the in-plane method's benefit comes from.
//! * **Occupancy** ([`occupancy`]): active blocks per SM from register,
//!   shared-memory, warp-slot and block-slot limits with hardware
//!   allocation granularities (Eqn (7) of the paper, with granularity).
//! * **Timing** ([`timing`]): a stage-based engine (Eqns (6)–(9)
//!   structure) where each z-plane costs the max of memory, compute and
//!   issue cycles plus exposed latency scaled by a latency-hiding factor
//!   (the paper's `f(·)`), plus effects the paper's analytic model
//!   *deliberately ignores* — shared-memory bank conflicts, barrier
//!   overhead, and measurement noise — so that the Section VI model
//!   approximates but does not equal the "measured" numbers (the gap
//!   Fig 12 quantifies).
//!
//! Everything is a pure function of its inputs; a fixed seed makes whole
//! experiment suites bit-reproducible.

pub mod counters;
pub mod device;
pub mod mem;
pub mod microbench;
pub mod microsim;
pub mod noise;
pub mod occupancy;
pub mod plan;
pub mod roofline;
pub mod smem;
pub mod timing;

pub use counters::{LimitingFactor, SimReport};
pub use device::{Architecture, DeviceSpec, LEGACY_COALESCE_SEGMENT_BYTES, LEGACY_SMEM_BANK_BYTES};
pub use mem::{coalesce_transactions, MemCounters, WarpLoad};
pub use microbench::measure_achieved_bandwidth;
pub use microsim::{simulate_block_plane, MicrosimResult};
pub use noise::{measurement_noise, measurement_noise_keyed, NoiseKey};
pub use occupancy::{active_blocks, Occupancy};
pub use plan::{BlockPlan, GridDims, LaunchGeometry, PlanePlan};
pub use roofline::{
    attainable_gflops, intensity, mpoints_ceiling, regime, ridge_point, RooflineRegime,
};
pub use smem::{conflict_factor, stencil_phase_factor};
pub use timing::{apply_noise, simulate, simulate_clean, SimOptions};
