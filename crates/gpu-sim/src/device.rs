//! Device specifications for the simulated GPUs.
//!
//! The first three presets are the cards of the paper's Table III.
//! Published micro-architecture limits (CUDA compute capability 2.0 for
//! Fermi, 3.0 for Kepler) supply the occupancy bounds; the
//! achieved-bandwidth fractions are calibrated to the paper's own
//! measurements (§IV-A: 161, 150 and 117.5 GB/s — "typically around 75%
//! to 85% of the pin bandwidths").
//!
//! Two cross-vendor presets extend the registry past the paper's cards:
//! a GCN-class wavefront-64 part ([`DeviceSpec::hd7970`]) and a modern
//! NVIDIA part ([`DeviceSpec::rtx3090`]). Every execution-width and
//! memory-geometry assumption the analysis stack makes — SIMT width,
//! coalescing segment, LDS bank shape, allocation granularities — is a
//! field here, never a literal in a consumer crate.

/// Coalescing/padding segment of the paper's original NVIDIA targets,
/// bytes. The pre-parameterization stack hard-coded this value; devices
/// whose [`DeviceSpec::coalesce_segment_bytes`] equals it are elided
/// from [`DeviceSpec::fingerprint`] so legacy fingerprints (and every
/// tune-store key derived from them) survive the field addition.
pub const LEGACY_COALESCE_SEGMENT_BYTES: u64 = 128;

/// Shared-memory bank width of every NVIDIA generation the paper
/// targets, bytes. Elided from [`DeviceSpec::fingerprint`] like
/// [`LEGACY_COALESCE_SEGMENT_BYTES`].
pub const LEGACY_SMEM_BANK_BYTES: usize = 4;

/// Shared-memory bank count the pre-parameterization plane-plan
/// builder hard-coded (all presets currently agree, so this is a
/// default for device-less entry points, not a fingerprint concern).
pub const LEGACY_SMEM_BANKS: usize = 32;

/// GPU micro-architecture family.
///
/// The enum is SIMT-width-agnostic: execution width, segment sizes and
/// bank shapes live in [`DeviceSpec`] fields, so adding a family never
/// smuggles a width assumption into consumer crates.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Architecture {
    /// CC 2.0: GTX580, Tesla C2070. 128-byte cached global transactions,
    /// 16 LSUs and 2 warp schedulers per SM, 32 K registers.
    Fermi,
    /// CC 3.0: GTX680. 32-byte L2 sectors, 32 LSUs and 4 dual-issue warp
    /// schedulers per SMX, 64 K registers.
    Kepler,
    /// AMD Graphics Core Next: wavefront-64 compute units with four
    /// 16-lane SIMDs, a 64 KB LDS and 64-byte cache lines.
    Gcn,
    /// CC 8.6: modern NVIDIA (GA102-class). 32-byte L2 sectors, unified
    /// 128 KB L1/shared, 64 K registers per SM.
    Ampere,
}

impl Architecture {
    /// Stable code folded into [`DeviceSpec::fingerprint`]. Codes are
    /// append-only: Fermi and Kepler keep their pre-parameterization
    /// values so legacy fingerprints survive.
    pub fn fingerprint_code(self) -> u64 {
        match self {
            Architecture::Fermi => 0,
            Architecture::Kepler => 1,
            Architecture::Gcn => 2,
            Architecture::Ampere => 3,
        }
    }

    /// Vendor label for reports and per-vendor figure artifacts.
    pub fn vendor(self) -> &'static str {
        match self {
            Architecture::Fermi | Architecture::Kepler | Architecture::Ampere => "nvidia",
            Architecture::Gcn => "amd",
        }
    }
}

/// Full specification of a simulated device.
///
/// All rates are per-SM unless stated otherwise; clocks are in MHz,
/// memory sizes in bytes, bandwidths in bytes/second.
#[derive(Clone, Debug, PartialEq)]
pub struct DeviceSpec {
    /// Marketing name as used in the paper's tables.
    pub name: &'static str,
    /// Micro-architecture family.
    pub arch: Architecture,
    /// Number of streaming multiprocessors.
    pub sm_count: usize,
    /// CUDA cores (SP lanes) per SM.
    pub cores_per_sm: usize,
    /// Shader (core) clock in MHz — the clock compute and issue run at.
    pub clock_mhz: f64,
    /// 32-bit registers per SM.
    pub regs_per_sm: usize,
    /// Register allocation granularity per warp (registers are handed out
    /// in units of this many per warp).
    pub reg_alloc_per_warp: usize,
    /// Maximum registers addressable by one thread.
    pub max_regs_per_thread: usize,
    /// Shared memory per SM, bytes.
    pub smem_per_sm: usize,
    /// Shared-memory allocation granularity, bytes.
    pub smem_alloc_granularity: usize,
    /// Hardware limit on threads per block.
    pub max_threads_per_block: usize,
    /// Hardware limit on resident warps per SM (`Warp_SM` in the paper).
    pub max_warps_per_sm: usize,
    /// Hardware limit on resident blocks per SM (`Blk_SM` in the paper).
    pub max_blocks_per_sm: usize,
    /// Threads per warp.
    pub warp_size: usize,
    /// Pin (theoretical peak) memory bandwidth, bytes/s.
    pub peak_bandwidth: f64,
    /// Fraction of pin bandwidth a tuned streaming kernel achieves
    /// (calibrated to the paper's measured 161/150/117.5 GB/s).
    pub achieved_bw_fraction: f64,
    /// Global-memory transaction (segment) size in bytes: 128 for Fermi's
    /// cached loads, 32 for Kepler's and Ampere's L2 sectors, 64 for
    /// GCN's cache lines.
    pub segment_bytes: u64,
    /// Coalescing/padding segment in bytes: the granularity the traffic
    /// oracle counts row transactions against and the host allocator
    /// pads row strides to. 128 on every NVIDIA part (cache-line
    /// padding), 64 on GCN-class parts.
    pub coalesce_segment_bytes: u64,
    /// Global memory latency, cycles (`Lat` in the paper's model).
    pub mem_latency_cycles: f64,
    /// Load/store units per SM (warp load issue cost = warp_size / lsu).
    pub lsu_per_sm: usize,
    /// Warp instructions the schedulers can issue per cycle per SM.
    pub issue_per_cycle: f64,
    /// DP throughput as a fraction of SP throughput (1/8 GTX580, 1/24
    /// GTX680, 1/2 C2070).
    pub dp_ratio: f64,
    /// Shared-memory (LDS) banks.
    pub smem_banks: usize,
    /// Width of one shared-memory (LDS) bank, bytes. 4 on every NVIDIA
    /// generation here and on GCN.
    pub smem_bank_bytes: usize,
    /// Fraction of *duplicate* segment fetches (the same segment touched
    /// by more than one load instruction within one block-plane) that
    /// still reach DRAM. Fermi caches global loads in L1, so roughly half
    /// of such re-references hit cache (0.5, limited by the 16 KB L1
    /// versus the resident working set); Kepler GK104 does not cache
    /// global loads in L1 at all (1.0).
    pub l1_dup_charge: f64,
}

impl DeviceSpec {
    /// GeForce GTX580 (Fermi GF110): 16 SM × 32 cores, 1544 MHz shader
    /// clock, 192.4 GB/s pin bandwidth, measured 161 GB/s.
    pub fn gtx580() -> Self {
        DeviceSpec {
            name: "GeForce GTX580",
            arch: Architecture::Fermi,
            sm_count: 16,
            cores_per_sm: 32,
            clock_mhz: 1544.0,
            regs_per_sm: 32 * 1024,
            reg_alloc_per_warp: 64,
            max_regs_per_thread: 63,
            smem_per_sm: 48 * 1024,
            smem_alloc_granularity: 128,
            max_threads_per_block: 1024,
            max_warps_per_sm: 48,
            max_blocks_per_sm: 8,
            warp_size: 32,
            peak_bandwidth: 192.4e9,
            achieved_bw_fraction: 161.0 / 192.4,
            segment_bytes: 128,
            coalesce_segment_bytes: LEGACY_COALESCE_SEGMENT_BYTES,
            mem_latency_cycles: 560.0,
            lsu_per_sm: 16,
            issue_per_cycle: 2.0,
            dp_ratio: 1.0 / 8.0,
            smem_banks: 32,
            smem_bank_bytes: LEGACY_SMEM_BANK_BYTES,
            l1_dup_charge: 0.5,
        }
    }

    /// GeForce GTX680 (Kepler GK104): 8 SMX × 192 cores, 1006 MHz,
    /// 192.3 GB/s pin bandwidth, measured 150 GB/s.
    pub fn gtx680() -> Self {
        DeviceSpec {
            name: "GeForce GTX680",
            arch: Architecture::Kepler,
            sm_count: 8,
            cores_per_sm: 192,
            clock_mhz: 1006.0,
            regs_per_sm: 64 * 1024,
            reg_alloc_per_warp: 256,
            max_regs_per_thread: 63,
            smem_per_sm: 48 * 1024,
            smem_alloc_granularity: 256,
            max_threads_per_block: 1024,
            max_warps_per_sm: 64,
            max_blocks_per_sm: 16,
            warp_size: 32,
            peak_bandwidth: 192.3e9,
            achieved_bw_fraction: 150.0 / 192.3,
            segment_bytes: 32,
            coalesce_segment_bytes: LEGACY_COALESCE_SEGMENT_BYTES,
            mem_latency_cycles: 440.0,
            lsu_per_sm: 32,
            issue_per_cycle: 7.0,
            dp_ratio: 1.0 / 24.0,
            smem_banks: 32,
            smem_bank_bytes: LEGACY_SMEM_BANK_BYTES,
            l1_dup_charge: 1.0,
        }
    }

    /// Tesla C2070 (Fermi GF100): 14 SM × 32 cores, 1150 MHz, 144 GB/s
    /// pin bandwidth, measured 117.5 GB/s; full-rate DP (1/2 of SP).
    pub fn c2070() -> Self {
        DeviceSpec {
            name: "Tesla C2070",
            arch: Architecture::Fermi,
            sm_count: 14,
            cores_per_sm: 32,
            clock_mhz: 1150.0,
            regs_per_sm: 32 * 1024,
            reg_alloc_per_warp: 64,
            max_regs_per_thread: 63,
            smem_per_sm: 48 * 1024,
            smem_alloc_granularity: 128,
            max_threads_per_block: 1024,
            max_warps_per_sm: 48,
            max_blocks_per_sm: 8,
            warp_size: 32,
            peak_bandwidth: 144.0e9,
            achieved_bw_fraction: 117.5 / 144.0,
            segment_bytes: 128,
            coalesce_segment_bytes: LEGACY_COALESCE_SEGMENT_BYTES,
            mem_latency_cycles: 600.0,
            lsu_per_sm: 16,
            issue_per_cycle: 2.0,
            dp_ratio: 1.0 / 2.0,
            smem_banks: 32,
            smem_bank_bytes: LEGACY_SMEM_BANK_BYTES,
            l1_dup_charge: 0.5,
        }
    }

    /// Radeon HD 7970 (GCN "Tahiti"): 32 CUs × 64 lanes, 925 MHz,
    /// 264 GB/s pin bandwidth, calibrated 209 GB/s achieved. Wavefront
    /// width 64, 64-byte cache lines (both the transaction segment and
    /// the coalescing/padding granularity), 64 KB LDS per CU in 32
    /// 4-byte banks, quarter-rate DP.
    pub fn hd7970() -> Self {
        DeviceSpec {
            name: "Radeon HD 7970",
            arch: Architecture::Gcn,
            sm_count: 32,
            cores_per_sm: 64,
            clock_mhz: 925.0,
            regs_per_sm: 64 * 1024,
            reg_alloc_per_warp: 256,
            max_regs_per_thread: 255,
            smem_per_sm: 64 * 1024,
            smem_alloc_granularity: 512,
            max_threads_per_block: 1024,
            max_warps_per_sm: 40,
            max_blocks_per_sm: 16,
            warp_size: 64,
            peak_bandwidth: 264.0e9,
            achieved_bw_fraction: 209.0 / 264.0,
            segment_bytes: 64,
            coalesce_segment_bytes: 64,
            mem_latency_cycles: 600.0,
            lsu_per_sm: 16,
            issue_per_cycle: 4.0,
            dp_ratio: 1.0 / 4.0,
            smem_banks: 32,
            smem_bank_bytes: 4,
            l1_dup_charge: 0.5,
        }
    }

    /// GeForce RTX 3090 (Ampere GA102): 82 SMs × 128 cores, 1695 MHz,
    /// 936 GB/s pin bandwidth, calibrated ~768 GB/s achieved. 32-byte
    /// L2 sectors but 128-byte cache-line padding, 1/64-rate DP.
    pub fn rtx3090() -> Self {
        DeviceSpec {
            name: "GeForce RTX 3090",
            arch: Architecture::Ampere,
            sm_count: 82,
            cores_per_sm: 128,
            clock_mhz: 1695.0,
            regs_per_sm: 64 * 1024,
            reg_alloc_per_warp: 256,
            max_regs_per_thread: 255,
            smem_per_sm: 100 * 1024,
            smem_alloc_granularity: 128,
            max_threads_per_block: 1024,
            max_warps_per_sm: 48,
            max_blocks_per_sm: 16,
            warp_size: 32,
            peak_bandwidth: 936.2e9,
            achieved_bw_fraction: 0.82,
            segment_bytes: 32,
            coalesce_segment_bytes: LEGACY_COALESCE_SEGMENT_BYTES,
            mem_latency_cycles: 400.0,
            lsu_per_sm: 16,
            issue_per_cycle: 4.0,
            dp_ratio: 1.0 / 64.0,
            smem_banks: 32,
            smem_bank_bytes: LEGACY_SMEM_BANK_BYTES,
            l1_dup_charge: 0.25,
        }
    }

    /// The paper's three evaluation devices, in table order.
    pub fn paper_devices() -> Vec<DeviceSpec> {
        vec![Self::gtx580(), Self::gtx680(), Self::c2070()]
    }

    /// Every registered device: the paper's three NVIDIA cards plus the
    /// cross-vendor presets (wave64 GCN, modern NVIDIA). Sweep suites
    /// and the per-vendor figure binary iterate this list.
    pub fn all_devices() -> Vec<DeviceSpec> {
        vec![
            Self::gtx580(),
            Self::gtx680(),
            Self::c2070(),
            Self::hd7970(),
            Self::rtx3090(),
        ]
    }

    /// Half the SIMT execution width — the §IV-C `TX` enumeration step
    /// (a half-warp on NVIDIA, a half-wavefront on GCN).
    #[inline]
    pub fn half_wavefront(&self) -> usize {
        self.warp_size / 2
    }

    /// Vendor label ("nvidia" / "amd") for per-vendor reports.
    #[inline]
    pub fn vendor(&self) -> &'static str {
        self.arch.vendor()
    }

    /// Shader clock in Hz.
    #[inline]
    pub fn clock_hz(&self) -> f64 {
        self.clock_mhz * 1e6
    }

    /// Peak single-precision throughput, flop/s (2 flops per core-cycle —
    /// FMA counts as two). Matches Table III: 1581 / 3090 / 1030 GFlop/s.
    pub fn peak_sp_flops(&self) -> f64 {
        self.sm_count as f64 * self.cores_per_sm as f64 * 2.0 * self.clock_hz()
    }

    /// Peak double-precision throughput, flop/s. Matches Table III:
    /// 198 / 129 / 515 GFlop/s.
    pub fn peak_dp_flops(&self) -> f64 {
        self.peak_sp_flops() * self.dp_ratio
    }

    /// Bandwidth a tuned streaming kernel can sustain, bytes/s.
    #[inline]
    pub fn achieved_bandwidth(&self) -> f64 {
        self.peak_bandwidth * self.achieved_bw_fraction
    }

    /// Achieved bandwidth per SM (`BW_SM` in the paper's model), bytes/s.
    #[inline]
    pub fn bandwidth_per_sm(&self) -> f64 {
        self.achieved_bandwidth() / self.sm_count as f64
    }

    /// Achieved bytes per shader-clock cycle per SM.
    #[inline]
    pub fn bytes_per_cycle_per_sm(&self) -> f64 {
        self.bandwidth_per_sm() / self.clock_hz()
    }

    /// Peak flops per cycle per SM at the given element width (4 = SP,
    /// 8 = DP).
    pub fn flops_per_cycle_per_sm(&self, elem_bytes: usize) -> f64 {
        let base = self.cores_per_sm as f64 * 2.0;
        match elem_bytes {
            4 => base,
            8 => base * self.dp_ratio,
            other => panic!("unsupported element width: {other} bytes"),
        }
    }

    /// Cycles for one warp-wide load/store instruction to clear the LSUs.
    #[inline]
    pub fn lsu_cycles_per_warp_instr(&self) -> f64 {
        self.warp_size as f64 / self.lsu_per_sm as f64
    }

    /// Stable 64-bit identity covering every field that influences
    /// simulated timing. Two specs with equal fingerprints price
    /// identically, so this is the device component of memoization keys
    /// (hashing float fields by bit pattern sidesteps `f64: Hash`).
    ///
    /// Fields added by the architecture parameterization
    /// (`coalesce_segment_bytes`, `smem_bank_bytes`) fold in **only when
    /// they deviate from the legacy NVIDIA defaults**: the paper's three
    /// cards keep their pre-parameterization fingerprints byte for byte,
    /// so every persisted tune-store optimum stays warm. The
    /// `legacy_device_fingerprints_are_pinned` test holds this line.
    pub fn fingerprint(&self) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        let mut fold_bytes = |bytes: &[u8]| {
            for &b in bytes {
                h ^= b as u64;
                h = h.wrapping_mul(0x100_0000_01b3);
            }
        };
        fold_bytes(self.name.as_bytes());
        let words = [
            self.arch.fingerprint_code(),
            self.sm_count as u64,
            self.cores_per_sm as u64,
            self.clock_mhz.to_bits(),
            self.regs_per_sm as u64,
            self.reg_alloc_per_warp as u64,
            self.max_regs_per_thread as u64,
            self.smem_per_sm as u64,
            self.smem_alloc_granularity as u64,
            self.max_threads_per_block as u64,
            self.max_warps_per_sm as u64,
            self.max_blocks_per_sm as u64,
            self.warp_size as u64,
            self.peak_bandwidth.to_bits(),
            self.achieved_bw_fraction.to_bits(),
            self.segment_bytes,
            self.mem_latency_cycles.to_bits(),
            self.lsu_per_sm as u64,
            self.issue_per_cycle.to_bits(),
            self.dp_ratio.to_bits(),
            self.smem_banks as u64,
            self.l1_dup_charge.to_bits(),
        ];
        for w in words {
            fold_bytes(&w.to_le_bytes());
        }
        // Legacy-default elision: geometry fields the original stack
        // hard-coded contribute only when a device deviates, tagged so
        // distinct deviating fields can never alias each other.
        if self.coalesce_segment_bytes != LEGACY_COALESCE_SEGMENT_BYTES {
            fold_bytes(&1u64.to_le_bytes());
            fold_bytes(&self.coalesce_segment_bytes.to_le_bytes());
        }
        if self.smem_bank_bytes != LEGACY_SMEM_BANK_BYTES {
            fold_bytes(&2u64.to_le_bytes());
            fold_bytes(&(self.smem_bank_bytes as u64).to_le_bytes());
        }
        h
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table3_peak_sp_flops() {
        // Paper Table III: 1581, 3090, 1030 GFlop/s.
        assert!((DeviceSpec::gtx580().peak_sp_flops() / 1e9 - 1581.0).abs() < 1.0);
        assert!((DeviceSpec::gtx680().peak_sp_flops() / 1e9 - 3090.0).abs() < 1.0);
        assert!((DeviceSpec::c2070().peak_sp_flops() / 1e9 - 1030.0).abs() < 1.0);
    }

    #[test]
    fn table3_peak_dp_flops() {
        // Paper Table III: 198, 129, 515 GFlop/s.
        assert!((DeviceSpec::gtx580().peak_dp_flops() / 1e9 - 197.6).abs() < 1.0);
        assert!((DeviceSpec::gtx680().peak_dp_flops() / 1e9 - 128.8).abs() < 1.0);
        assert!((DeviceSpec::c2070().peak_dp_flops() / 1e9 - 515.2).abs() < 1.0);
    }

    #[test]
    fn achieved_bandwidth_matches_measurements() {
        // Paper §IV-A: 161, 150, 117.5 GB/s.
        assert!((DeviceSpec::gtx580().achieved_bandwidth() / 1e9 - 161.0).abs() < 0.1);
        assert!((DeviceSpec::gtx680().achieved_bandwidth() / 1e9 - 150.0).abs() < 0.1);
        assert!((DeviceSpec::c2070().achieved_bandwidth() / 1e9 - 117.5).abs() < 0.1);
    }

    #[test]
    fn achieved_fraction_is_75_to_85_percent() {
        for d in DeviceSpec::paper_devices() {
            assert!(
                (0.75..=0.85).contains(&d.achieved_bw_fraction),
                "{}: fraction {}",
                d.name,
                d.achieved_bw_fraction
            );
        }
    }

    #[test]
    fn core_counts_match_paper() {
        assert_eq!(
            DeviceSpec::gtx580().sm_count * DeviceSpec::gtx580().cores_per_sm,
            512
        );
        assert_eq!(
            DeviceSpec::gtx680().sm_count * DeviceSpec::gtx680().cores_per_sm,
            1536
        );
        assert_eq!(
            DeviceSpec::c2070().sm_count * DeviceSpec::c2070().cores_per_sm,
            448
        );
    }

    #[test]
    fn register_files_match_paper() {
        // §IV-A: 32K registers on Fermi SMs, 65536 on Kepler SMX.
        assert_eq!(DeviceSpec::gtx580().regs_per_sm, 32768);
        assert_eq!(DeviceSpec::gtx680().regs_per_sm, 65536);
        assert_eq!(DeviceSpec::gtx580().smem_per_sm, 48 * 1024);
    }

    #[test]
    fn dp_flops_per_cycle_uses_ratio() {
        let d = DeviceSpec::gtx580();
        assert!((d.flops_per_cycle_per_sm(8) - d.flops_per_cycle_per_sm(4) / 8.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic]
    fn bad_element_width_panics() {
        DeviceSpec::gtx580().flops_per_cycle_per_sm(16);
    }

    #[test]
    fn lsu_cycles() {
        assert_eq!(DeviceSpec::gtx580().lsu_cycles_per_warp_instr(), 2.0);
        assert_eq!(DeviceSpec::gtx680().lsu_cycles_per_warp_instr(), 1.0);
    }

    #[test]
    fn fingerprints_distinguish_devices_and_track_fields() {
        let devs = DeviceSpec::all_devices();
        for a in &devs {
            for b in &devs {
                if a.name == b.name {
                    assert_eq!(a.fingerprint(), b.fingerprint());
                } else {
                    assert_ne!(a.fingerprint(), b.fingerprint());
                }
            }
        }
        let mut tweaked = DeviceSpec::gtx580();
        tweaked.mem_latency_cycles += 1.0;
        assert_ne!(tweaked.fingerprint(), DeviceSpec::gtx580().fingerprint());
    }

    #[test]
    fn legacy_device_fingerprints_are_pinned() {
        // Captured before `coalesce_segment_bytes` / `smem_bank_bytes`
        // were added to the spec: the legacy-default elision must keep
        // them byte-identical so persisted tune-store optima stay warm.
        assert_eq!(DeviceSpec::gtx580().fingerprint(), 0xb918_beb1_e8a8_43bc);
        assert_eq!(DeviceSpec::gtx680().fingerprint(), 0xb20e_b1aa_2c5a_778e);
        assert_eq!(DeviceSpec::c2070().fingerprint(), 0x1972_ea53_7613_347e);
    }

    #[test]
    fn non_default_geometry_fields_do_change_the_fingerprint() {
        let base = DeviceSpec::gtx580();
        let mut seg = base.clone();
        seg.coalesce_segment_bytes = 64;
        assert_ne!(seg.fingerprint(), base.fingerprint());
        let mut bank = base.clone();
        bank.smem_bank_bytes = 8;
        assert_ne!(bank.fingerprint(), base.fingerprint());
        // The two deviations are tagged: deviating in different fields
        // with the same raw value cannot alias.
        let mut a = base.clone();
        a.coalesce_segment_bytes = 8;
        let mut b = base.clone();
        b.smem_bank_bytes = 8;
        assert_ne!(a.fingerprint(), b.fingerprint());
    }

    #[test]
    fn wave64_preset_is_wave64_end_to_end() {
        let d = DeviceSpec::hd7970();
        assert_eq!(d.arch, Architecture::Gcn);
        assert_eq!(d.warp_size, 64);
        assert_eq!(d.half_wavefront(), 32);
        assert_eq!(d.coalesce_segment_bytes, 64);
        assert_eq!(d.segment_bytes, 64);
        assert_eq!(d.vendor(), "amd");
        // Tahiti peak SP: 32 CU x 64 lanes x 2 x 925 MHz = 3789 GFlop/s.
        assert!((d.peak_sp_flops() / 1e9 - 3789.0).abs() < 1.0);
        assert!((d.peak_dp_flops() / 1e9 - 947.2).abs() < 1.0);
        assert!((0.75..=0.85).contains(&d.achieved_bw_fraction));
    }

    #[test]
    fn ampere_preset_keeps_legacy_padding_geometry() {
        let d = DeviceSpec::rtx3090();
        assert_eq!(d.arch, Architecture::Ampere);
        assert_eq!(d.warp_size, 32);
        assert_eq!(d.coalesce_segment_bytes, LEGACY_COALESCE_SEGMENT_BYTES);
        assert_eq!(d.segment_bytes, 32);
        assert_eq!(d.vendor(), "nvidia");
        // GA102 peak SP: 82 SM x 128 lanes x 2 x 1695 MHz = 35581 GFlop/s.
        assert!((d.peak_sp_flops() / 1e9 - 35581.4).abs() < 2.0);
    }

    #[test]
    fn all_devices_extends_paper_devices() {
        let all = DeviceSpec::all_devices();
        let paper = DeviceSpec::paper_devices();
        assert_eq!(all.len(), 5);
        for (a, p) in all.iter().zip(&paper) {
            assert_eq!(a.name, p.name);
        }
        assert!(all.iter().any(|d| d.warp_size == 64));
    }

    #[test]
    fn bandwidth_per_sm_partitions_total() {
        let d = DeviceSpec::c2070();
        assert!((d.bandwidth_per_sm() * d.sm_count as f64 - d.achieved_bandwidth()).abs() < 1.0);
    }
}
