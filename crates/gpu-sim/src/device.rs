//! Device specifications for the simulated GPUs.
//!
//! The three presets are the cards of the paper's Table III. Published
//! micro-architecture limits (CUDA compute capability 2.0 for Fermi, 3.0
//! for Kepler) supply the occupancy bounds; the achieved-bandwidth
//! fractions are calibrated to the paper's own measurements (§IV-A: 161,
//! 150 and 117.5 GB/s — "typically around 75% to 85% of the pin
//! bandwidths").

/// GPU micro-architecture family.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Architecture {
    /// CC 2.0: GTX580, Tesla C2070. 128-byte cached global transactions,
    /// 16 LSUs and 2 warp schedulers per SM, 32 K registers.
    Fermi,
    /// CC 3.0: GTX680. 32-byte L2 sectors, 32 LSUs and 4 dual-issue warp
    /// schedulers per SMX, 64 K registers.
    Kepler,
}

/// Full specification of a simulated device.
///
/// All rates are per-SM unless stated otherwise; clocks are in MHz,
/// memory sizes in bytes, bandwidths in bytes/second.
#[derive(Clone, Debug, PartialEq)]
pub struct DeviceSpec {
    /// Marketing name as used in the paper's tables.
    pub name: &'static str,
    /// Micro-architecture family.
    pub arch: Architecture,
    /// Number of streaming multiprocessors.
    pub sm_count: usize,
    /// CUDA cores (SP lanes) per SM.
    pub cores_per_sm: usize,
    /// Shader (core) clock in MHz — the clock compute and issue run at.
    pub clock_mhz: f64,
    /// 32-bit registers per SM.
    pub regs_per_sm: usize,
    /// Register allocation granularity per warp (registers are handed out
    /// in units of this many per warp).
    pub reg_alloc_per_warp: usize,
    /// Maximum registers addressable by one thread.
    pub max_regs_per_thread: usize,
    /// Shared memory per SM, bytes.
    pub smem_per_sm: usize,
    /// Shared-memory allocation granularity, bytes.
    pub smem_alloc_granularity: usize,
    /// Hardware limit on threads per block.
    pub max_threads_per_block: usize,
    /// Hardware limit on resident warps per SM (`Warp_SM` in the paper).
    pub max_warps_per_sm: usize,
    /// Hardware limit on resident blocks per SM (`Blk_SM` in the paper).
    pub max_blocks_per_sm: usize,
    /// Threads per warp.
    pub warp_size: usize,
    /// Pin (theoretical peak) memory bandwidth, bytes/s.
    pub peak_bandwidth: f64,
    /// Fraction of pin bandwidth a tuned streaming kernel achieves
    /// (calibrated to the paper's measured 161/150/117.5 GB/s).
    pub achieved_bw_fraction: f64,
    /// Global-memory transaction (segment) size in bytes: 128 for Fermi's
    /// cached loads, 32 for Kepler's L2 sectors.
    pub segment_bytes: u64,
    /// Global memory latency, cycles (`Lat` in the paper's model).
    pub mem_latency_cycles: f64,
    /// Load/store units per SM (warp load issue cost = warp_size / lsu).
    pub lsu_per_sm: usize,
    /// Warp instructions the schedulers can issue per cycle per SM.
    pub issue_per_cycle: f64,
    /// DP throughput as a fraction of SP throughput (1/8 GTX580, 1/24
    /// GTX680, 1/2 C2070).
    pub dp_ratio: f64,
    /// Shared memory banks (32 on both generations).
    pub smem_banks: usize,
    /// Fraction of *duplicate* segment fetches (the same segment touched
    /// by more than one load instruction within one block-plane) that
    /// still reach DRAM. Fermi caches global loads in L1, so roughly half
    /// of such re-references hit cache (0.5, limited by the 16 KB L1
    /// versus the resident working set); Kepler GK104 does not cache
    /// global loads in L1 at all (1.0).
    pub l1_dup_charge: f64,
}

impl DeviceSpec {
    /// GeForce GTX580 (Fermi GF110): 16 SM × 32 cores, 1544 MHz shader
    /// clock, 192.4 GB/s pin bandwidth, measured 161 GB/s.
    pub fn gtx580() -> Self {
        DeviceSpec {
            name: "GeForce GTX580",
            arch: Architecture::Fermi,
            sm_count: 16,
            cores_per_sm: 32,
            clock_mhz: 1544.0,
            regs_per_sm: 32 * 1024,
            reg_alloc_per_warp: 64,
            max_regs_per_thread: 63,
            smem_per_sm: 48 * 1024,
            smem_alloc_granularity: 128,
            max_threads_per_block: 1024,
            max_warps_per_sm: 48,
            max_blocks_per_sm: 8,
            warp_size: 32,
            peak_bandwidth: 192.4e9,
            achieved_bw_fraction: 161.0 / 192.4,
            segment_bytes: 128,
            mem_latency_cycles: 560.0,
            lsu_per_sm: 16,
            issue_per_cycle: 2.0,
            dp_ratio: 1.0 / 8.0,
            smem_banks: 32,
            l1_dup_charge: 0.5,
        }
    }

    /// GeForce GTX680 (Kepler GK104): 8 SMX × 192 cores, 1006 MHz,
    /// 192.3 GB/s pin bandwidth, measured 150 GB/s.
    pub fn gtx680() -> Self {
        DeviceSpec {
            name: "GeForce GTX680",
            arch: Architecture::Kepler,
            sm_count: 8,
            cores_per_sm: 192,
            clock_mhz: 1006.0,
            regs_per_sm: 64 * 1024,
            reg_alloc_per_warp: 256,
            max_regs_per_thread: 63,
            smem_per_sm: 48 * 1024,
            smem_alloc_granularity: 256,
            max_threads_per_block: 1024,
            max_warps_per_sm: 64,
            max_blocks_per_sm: 16,
            warp_size: 32,
            peak_bandwidth: 192.3e9,
            achieved_bw_fraction: 150.0 / 192.3,
            segment_bytes: 32,
            mem_latency_cycles: 440.0,
            lsu_per_sm: 32,
            issue_per_cycle: 7.0,
            dp_ratio: 1.0 / 24.0,
            smem_banks: 32,
            l1_dup_charge: 1.0,
        }
    }

    /// Tesla C2070 (Fermi GF100): 14 SM × 32 cores, 1150 MHz, 144 GB/s
    /// pin bandwidth, measured 117.5 GB/s; full-rate DP (1/2 of SP).
    pub fn c2070() -> Self {
        DeviceSpec {
            name: "Tesla C2070",
            arch: Architecture::Fermi,
            sm_count: 14,
            cores_per_sm: 32,
            clock_mhz: 1150.0,
            regs_per_sm: 32 * 1024,
            reg_alloc_per_warp: 64,
            max_regs_per_thread: 63,
            smem_per_sm: 48 * 1024,
            smem_alloc_granularity: 128,
            max_threads_per_block: 1024,
            max_warps_per_sm: 48,
            max_blocks_per_sm: 8,
            warp_size: 32,
            peak_bandwidth: 144.0e9,
            achieved_bw_fraction: 117.5 / 144.0,
            segment_bytes: 128,
            mem_latency_cycles: 600.0,
            lsu_per_sm: 16,
            issue_per_cycle: 2.0,
            dp_ratio: 1.0 / 2.0,
            smem_banks: 32,
            l1_dup_charge: 0.5,
        }
    }

    /// The paper's three evaluation devices, in table order.
    pub fn paper_devices() -> Vec<DeviceSpec> {
        vec![Self::gtx580(), Self::gtx680(), Self::c2070()]
    }

    /// Shader clock in Hz.
    #[inline]
    pub fn clock_hz(&self) -> f64 {
        self.clock_mhz * 1e6
    }

    /// Peak single-precision throughput, flop/s (2 flops per core-cycle —
    /// FMA counts as two). Matches Table III: 1581 / 3090 / 1030 GFlop/s.
    pub fn peak_sp_flops(&self) -> f64 {
        self.sm_count as f64 * self.cores_per_sm as f64 * 2.0 * self.clock_hz()
    }

    /// Peak double-precision throughput, flop/s. Matches Table III:
    /// 198 / 129 / 515 GFlop/s.
    pub fn peak_dp_flops(&self) -> f64 {
        self.peak_sp_flops() * self.dp_ratio
    }

    /// Bandwidth a tuned streaming kernel can sustain, bytes/s.
    #[inline]
    pub fn achieved_bandwidth(&self) -> f64 {
        self.peak_bandwidth * self.achieved_bw_fraction
    }

    /// Achieved bandwidth per SM (`BW_SM` in the paper's model), bytes/s.
    #[inline]
    pub fn bandwidth_per_sm(&self) -> f64 {
        self.achieved_bandwidth() / self.sm_count as f64
    }

    /// Achieved bytes per shader-clock cycle per SM.
    #[inline]
    pub fn bytes_per_cycle_per_sm(&self) -> f64 {
        self.bandwidth_per_sm() / self.clock_hz()
    }

    /// Peak flops per cycle per SM at the given element width (4 = SP,
    /// 8 = DP).
    pub fn flops_per_cycle_per_sm(&self, elem_bytes: usize) -> f64 {
        let base = self.cores_per_sm as f64 * 2.0;
        match elem_bytes {
            4 => base,
            8 => base * self.dp_ratio,
            other => panic!("unsupported element width: {other} bytes"),
        }
    }

    /// Cycles for one warp-wide load/store instruction to clear the LSUs.
    #[inline]
    pub fn lsu_cycles_per_warp_instr(&self) -> f64 {
        self.warp_size as f64 / self.lsu_per_sm as f64
    }

    /// Stable 64-bit identity covering every field that influences
    /// simulated timing. Two specs with equal fingerprints price
    /// identically, so this is the device component of memoization keys
    /// (hashing float fields by bit pattern sidesteps `f64: Hash`).
    pub fn fingerprint(&self) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        let mut fold_bytes = |bytes: &[u8]| {
            for &b in bytes {
                h ^= b as u64;
                h = h.wrapping_mul(0x100_0000_01b3);
            }
        };
        fold_bytes(self.name.as_bytes());
        let words = [
            match self.arch {
                Architecture::Fermi => 0u64,
                Architecture::Kepler => 1,
            },
            self.sm_count as u64,
            self.cores_per_sm as u64,
            self.clock_mhz.to_bits(),
            self.regs_per_sm as u64,
            self.reg_alloc_per_warp as u64,
            self.max_regs_per_thread as u64,
            self.smem_per_sm as u64,
            self.smem_alloc_granularity as u64,
            self.max_threads_per_block as u64,
            self.max_warps_per_sm as u64,
            self.max_blocks_per_sm as u64,
            self.warp_size as u64,
            self.peak_bandwidth.to_bits(),
            self.achieved_bw_fraction.to_bits(),
            self.segment_bytes,
            self.mem_latency_cycles.to_bits(),
            self.lsu_per_sm as u64,
            self.issue_per_cycle.to_bits(),
            self.dp_ratio.to_bits(),
            self.smem_banks as u64,
            self.l1_dup_charge.to_bits(),
        ];
        for w in words {
            fold_bytes(&w.to_le_bytes());
        }
        h
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table3_peak_sp_flops() {
        // Paper Table III: 1581, 3090, 1030 GFlop/s.
        assert!((DeviceSpec::gtx580().peak_sp_flops() / 1e9 - 1581.0).abs() < 1.0);
        assert!((DeviceSpec::gtx680().peak_sp_flops() / 1e9 - 3090.0).abs() < 1.0);
        assert!((DeviceSpec::c2070().peak_sp_flops() / 1e9 - 1030.0).abs() < 1.0);
    }

    #[test]
    fn table3_peak_dp_flops() {
        // Paper Table III: 198, 129, 515 GFlop/s.
        assert!((DeviceSpec::gtx580().peak_dp_flops() / 1e9 - 197.6).abs() < 1.0);
        assert!((DeviceSpec::gtx680().peak_dp_flops() / 1e9 - 128.8).abs() < 1.0);
        assert!((DeviceSpec::c2070().peak_dp_flops() / 1e9 - 515.2).abs() < 1.0);
    }

    #[test]
    fn achieved_bandwidth_matches_measurements() {
        // Paper §IV-A: 161, 150, 117.5 GB/s.
        assert!((DeviceSpec::gtx580().achieved_bandwidth() / 1e9 - 161.0).abs() < 0.1);
        assert!((DeviceSpec::gtx680().achieved_bandwidth() / 1e9 - 150.0).abs() < 0.1);
        assert!((DeviceSpec::c2070().achieved_bandwidth() / 1e9 - 117.5).abs() < 0.1);
    }

    #[test]
    fn achieved_fraction_is_75_to_85_percent() {
        for d in DeviceSpec::paper_devices() {
            assert!(
                (0.75..=0.85).contains(&d.achieved_bw_fraction),
                "{}: fraction {}",
                d.name,
                d.achieved_bw_fraction
            );
        }
    }

    #[test]
    fn core_counts_match_paper() {
        assert_eq!(
            DeviceSpec::gtx580().sm_count * DeviceSpec::gtx580().cores_per_sm,
            512
        );
        assert_eq!(
            DeviceSpec::gtx680().sm_count * DeviceSpec::gtx680().cores_per_sm,
            1536
        );
        assert_eq!(
            DeviceSpec::c2070().sm_count * DeviceSpec::c2070().cores_per_sm,
            448
        );
    }

    #[test]
    fn register_files_match_paper() {
        // §IV-A: 32K registers on Fermi SMs, 65536 on Kepler SMX.
        assert_eq!(DeviceSpec::gtx580().regs_per_sm, 32768);
        assert_eq!(DeviceSpec::gtx680().regs_per_sm, 65536);
        assert_eq!(DeviceSpec::gtx580().smem_per_sm, 48 * 1024);
    }

    #[test]
    fn dp_flops_per_cycle_uses_ratio() {
        let d = DeviceSpec::gtx580();
        assert!((d.flops_per_cycle_per_sm(8) - d.flops_per_cycle_per_sm(4) / 8.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic]
    fn bad_element_width_panics() {
        DeviceSpec::gtx580().flops_per_cycle_per_sm(16);
    }

    #[test]
    fn lsu_cycles() {
        assert_eq!(DeviceSpec::gtx580().lsu_cycles_per_warp_instr(), 2.0);
        assert_eq!(DeviceSpec::gtx680().lsu_cycles_per_warp_instr(), 1.0);
    }

    #[test]
    fn fingerprints_distinguish_devices_and_track_fields() {
        let devs = DeviceSpec::paper_devices();
        for a in &devs {
            for b in &devs {
                if a.name == b.name {
                    assert_eq!(a.fingerprint(), b.fingerprint());
                } else {
                    assert_ne!(a.fingerprint(), b.fingerprint());
                }
            }
        }
        let mut tweaked = DeviceSpec::gtx580();
        tweaked.mem_latency_cycles += 1.0;
        assert_ne!(tweaked.fingerprint(), DeviceSpec::gtx580().fingerprint());
    }

    #[test]
    fn bandwidth_per_sm_partitions_total() {
        let d = DeviceSpec::c2070();
        assert!((d.bandwidth_per_sm() * d.sm_count as f64 - d.achieved_bandwidth()).abs() < 1.0);
    }
}
