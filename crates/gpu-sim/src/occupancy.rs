//! Occupancy: how many blocks fit on one SM.
//!
//! This is Eqn (7) of the paper,
//!
//! ```text
//! ActBlks = min( Reg/K_R, Smem/K_S, Warp_SM/Warp_Blk, Blk_SM )
//! ```
//!
//! refined with the hardware allocation granularities the CUDA occupancy
//! calculator applies: registers are allocated per warp in units of
//! `reg_alloc_per_warp`, shared memory in units of
//! `smem_alloc_granularity`.

use crate::device::DeviceSpec;

/// Resource usage of one launched block.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct BlockResources {
    /// Threads per block (`TX × TY`).
    pub threads: usize,
    /// Registers per thread (`K_R` per thread).
    pub regs_per_thread: usize,
    /// Shared memory per block, bytes (`K_S`).
    pub smem_bytes: usize,
}

/// The outcome of an occupancy calculation.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Occupancy {
    /// Blocks resident per SM (`ActBlks`); zero means the launch is
    /// infeasible on this device.
    pub active_blocks: usize,
    /// Resident warps per SM.
    pub active_warps: usize,
    /// Fraction of the SM's warp slots occupied (0..=1).
    pub occupancy: f64,
    /// Which resource bound `active_blocks` (for diagnostics).
    pub limited_by: OccupancyLimit,
}

/// The binding resource in Eqn (7).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum OccupancyLimit {
    /// Register file exhausted first.
    Registers,
    /// Shared memory exhausted first.
    SharedMemory,
    /// Warp slots exhausted first.
    WarpSlots,
    /// Hardware block-slot limit reached first.
    BlockSlots,
    /// The block itself violates a per-block hardware limit.
    Infeasible,
}

/// Warps per block, rounded up (partial warps occupy a full slot).
pub fn warps_per_block(device: &DeviceSpec, threads: usize) -> usize {
    threads.div_ceil(device.warp_size)
}

/// Compute Eqn (7) with allocation granularities.
pub fn active_blocks(device: &DeviceSpec, res: &BlockResources) -> Occupancy {
    let infeasible = Occupancy {
        active_blocks: 0,
        active_warps: 0,
        occupancy: 0.0,
        limited_by: OccupancyLimit::Infeasible,
    };
    if res.threads == 0
        || res.threads > device.max_threads_per_block
        || res.regs_per_thread > device.max_regs_per_thread
        || res.smem_bytes > device.smem_per_sm
    {
        return infeasible;
    }
    let warps = warps_per_block(device, res.threads);
    if warps > device.max_warps_per_sm {
        return infeasible;
    }

    // Registers: allocated per warp in granules.
    let regs_per_warp_raw = res.regs_per_thread * device.warp_size;
    let regs_per_warp =
        regs_per_warp_raw.div_ceil(device.reg_alloc_per_warp) * device.reg_alloc_per_warp;
    let regs_per_block = (regs_per_warp * warps).max(1);
    let by_regs = device.regs_per_sm / regs_per_block;

    // Shared memory: rounded up to the allocation granularity.
    let smem = res
        .smem_bytes
        .div_ceil(device.smem_alloc_granularity)
        .max(1)
        * device.smem_alloc_granularity;
    let by_smem = device.smem_per_sm / smem;

    let by_warps = device.max_warps_per_sm / warps;
    let by_slots = device.max_blocks_per_sm;

    let (active, limited_by) = [
        (by_regs, OccupancyLimit::Registers),
        (by_smem, OccupancyLimit::SharedMemory),
        (by_warps, OccupancyLimit::WarpSlots),
        (by_slots, OccupancyLimit::BlockSlots),
    ]
    .into_iter()
    .min_by_key(|&(n, _)| n)
    .expect("non-empty candidate list");

    if active == 0 {
        return infeasible;
    }
    let active_warps = active * warps;
    Occupancy {
        active_blocks: active,
        active_warps,
        occupancy: active_warps as f64 / device.max_warps_per_sm as f64,
        limited_by,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dev() -> DeviceSpec {
        DeviceSpec::gtx580()
    }

    #[test]
    fn small_block_is_slot_limited() {
        // 64 threads, 16 regs, tiny smem: 8-block hardware cap binds.
        let occ = active_blocks(
            &dev(),
            &BlockResources {
                threads: 64,
                regs_per_thread: 16,
                smem_bytes: 1024,
            },
        );
        assert_eq!(occ.active_blocks, 8);
        assert_eq!(occ.limited_by, OccupancyLimit::BlockSlots);
        assert_eq!(occ.active_warps, 16);
    }

    #[test]
    fn warp_slot_limit() {
        // 1024-thread blocks = 32 warps each; 48 warp slots → 1 block.
        let occ = active_blocks(
            &dev(),
            &BlockResources {
                threads: 1024,
                regs_per_thread: 16,
                smem_bytes: 1024,
            },
        );
        assert_eq!(occ.active_blocks, 1);
        assert_eq!(occ.limited_by, OccupancyLimit::WarpSlots);
    }

    #[test]
    fn register_limit() {
        // 256 threads × 63 regs = 16128 regs (granule-rounded 16384):
        // 32768-register file → 2 blocks.
        let occ = active_blocks(
            &dev(),
            &BlockResources {
                threads: 256,
                regs_per_thread: 63,
                smem_bytes: 1024,
            },
        );
        assert_eq!(occ.limited_by, OccupancyLimit::Registers);
        assert_eq!(occ.active_blocks, 2);
    }

    #[test]
    fn smem_limit() {
        // 20 KB per block on a 48 KB SM → 2 blocks.
        let occ = active_blocks(
            &dev(),
            &BlockResources {
                threads: 128,
                regs_per_thread: 16,
                smem_bytes: 20 * 1024,
            },
        );
        assert_eq!(occ.active_blocks, 2);
        assert_eq!(occ.limited_by, OccupancyLimit::SharedMemory);
    }

    #[test]
    fn smem_overflow_is_infeasible() {
        let occ = active_blocks(
            &dev(),
            &BlockResources {
                threads: 128,
                regs_per_thread: 16,
                smem_bytes: 49 * 1024,
            },
        );
        assert_eq!(occ.active_blocks, 0);
        assert_eq!(occ.limited_by, OccupancyLimit::Infeasible);
    }

    #[test]
    fn too_many_threads_is_infeasible() {
        let occ = active_blocks(
            &dev(),
            &BlockResources {
                threads: 2048,
                regs_per_thread: 16,
                smem_bytes: 0,
            },
        );
        assert_eq!(occ.limited_by, OccupancyLimit::Infeasible);
    }

    #[test]
    fn too_many_regs_per_thread_is_infeasible() {
        let occ = active_blocks(
            &dev(),
            &BlockResources {
                threads: 128,
                regs_per_thread: 64,
                smem_bytes: 0,
            },
        );
        assert_eq!(occ.limited_by, OccupancyLimit::Infeasible);
    }

    #[test]
    fn occupancy_fraction() {
        let occ = active_blocks(
            &dev(),
            &BlockResources {
                threads: 192,
                regs_per_thread: 20,
                smem_bytes: 4096,
            },
        );
        // 6 warps per block; check consistency of the fraction.
        assert_eq!(occ.active_warps, occ.active_blocks * 6);
        assert!((occ.occupancy - occ.active_warps as f64 / 48.0).abs() < 1e-12);
    }

    #[test]
    fn register_granularity_rounds_up() {
        // 33 regs × 32 lanes = 1056 → granule-rounds to 1088 on Fermi
        // (64-per-warp units); 32768 / (1088 × 4 warps) = 7 blocks, vs 7.75
        // un-rounded — granularity must bite.
        let occ = active_blocks(
            &dev(),
            &BlockResources {
                threads: 128,
                regs_per_thread: 33,
                smem_bytes: 0,
            },
        );
        assert_eq!(occ.active_blocks, 7);
    }

    #[test]
    fn kepler_has_more_slots() {
        let k = DeviceSpec::gtx680();
        let occ = active_blocks(
            &k,
            &BlockResources {
                threads: 64,
                regs_per_thread: 16,
                smem_bytes: 1024,
            },
        );
        assert_eq!(occ.active_blocks, 16); // Blk_SM = 16 on Kepler
    }

    #[test]
    fn partial_warp_occupies_full_slot() {
        assert_eq!(warps_per_block(&dev(), 33), 2);
        assert_eq!(warps_per_block(&dev(), 32), 1);
        assert_eq!(warps_per_block(&dev(), 1), 1);
    }

    #[test]
    fn zero_thread_block_is_infeasible() {
        let occ = active_blocks(
            &dev(),
            &BlockResources {
                threads: 0,
                regs_per_thread: 16,
                smem_bytes: 0,
            },
        );
        assert_eq!(occ.limited_by, OccupancyLimit::Infeasible);
    }
}
