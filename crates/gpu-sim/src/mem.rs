//! Address-accurate global-memory coalescing.
//!
//! The load/store units service one warp-wide memory instruction at a
//! time; the addresses its active lanes touch are grouped into aligned
//! segments (128-byte cache lines on Fermi, 32-byte L2 sectors on
//! Kepler), and one transaction is issued per distinct segment. This is
//! the mechanism the whole paper turns on: *nvstencil*'s strided halo
//! column loads touch one segment per element, while the in-plane
//! full-slice pattern touches contiguous rows.
//!
//! Kernel variants hand the simulator [`WarpLoad`]s — the byte addresses
//! of each active lane — and the memory model is the single place that
//! decides what that costs.

/// One warp-wide global-memory instruction: the byte address and width of
/// every *active* lane's access. Inactive (predicated-off) lanes are
/// simply absent; an all-inactive instruction still costs an issue slot
/// if the kernel emits it, so variants should not emit empty loads.
#[derive(Clone, Debug, PartialEq)]
pub struct WarpLoad {
    /// Byte address each active lane reads/writes.
    pub lane_addresses: Vec<u64>,
    /// Bytes accessed per lane (element width × vector width): 4..16.
    pub bytes_per_lane: u64,
}

impl WarpLoad {
    /// A load where lane `l` accesses `base + l * bytes_per_lane`
    /// (a perfectly contiguous warp access).
    pub fn contiguous(base: u64, lanes: usize, bytes_per_lane: u64) -> Self {
        WarpLoad {
            lane_addresses: (0..lanes as u64)
                .map(|l| base + l * bytes_per_lane)
                .collect(),
            bytes_per_lane,
        }
    }

    /// Bytes this instruction requests (useful bytes, the numerator of
    /// the profiler's load-efficiency metric).
    pub fn requested_bytes(&self) -> u64 {
        self.lane_addresses.len() as u64 * self.bytes_per_lane
    }

    /// Number of active lanes.
    pub fn active_lanes(&self) -> usize {
        self.lane_addresses.len()
    }
}

/// Count the transactions (distinct aligned segments) a warp instruction
/// generates for the given segment size.
///
/// A lane whose access straddles a segment boundary contributes every
/// segment it touches — exactly how the hardware splits misaligned
/// vector accesses.
///
/// ```
/// use gpu_sim::{coalesce_transactions, WarpLoad};
///
/// // A perfectly coalesced SP warp: one 128-byte transaction on Fermi.
/// let row = WarpLoad::contiguous(0, 32, 4);
/// assert_eq!(coalesce_transactions(&row, 128), 1);
///
/// // The same bytes strided across rows: one transaction per lane —
/// // the nvstencil side-halo pathology the in-plane method removes.
/// let column = WarpLoad { lane_addresses: (0..32).map(|l| l * 2048).collect(), bytes_per_lane: 4 };
/// assert_eq!(coalesce_transactions(&column, 128), 32);
/// ```
pub fn coalesce_transactions(load: &WarpLoad, segment_bytes: u64) -> usize {
    assert!(
        segment_bytes.is_power_of_two(),
        "segment size must be a power of two"
    );
    let mut segments: Vec<u64> = Vec::with_capacity(load.lane_addresses.len());
    for &addr in &load.lane_addresses {
        let first = addr / segment_bytes;
        let last = (addr + load.bytes_per_lane - 1) / segment_bytes;
        for seg in first..=last {
            segments.push(seg);
        }
    }
    segments.sort_unstable();
    segments.dedup();
    segments.len()
}

/// Per-instruction segment list (after intra-instruction coalescing).
fn instruction_segments(load: &WarpLoad, segment_bytes: u64) -> Vec<u64> {
    let mut segments: Vec<u64> = Vec::with_capacity(load.lane_addresses.len());
    for &addr in &load.lane_addresses {
        let first = addr / segment_bytes;
        let last = (addr + load.bytes_per_lane - 1) / segment_bytes;
        for seg in first..=last {
            segments.push(seg);
        }
    }
    segments.sort_unstable();
    segments.dedup();
    segments
}

/// DRAM bytes a set of load instructions costs within one block-plane,
/// accounting for cache re-references: a segment fetched by more than one
/// instruction is charged once in full plus `dup_charge` per repeat.
///
/// This models Fermi's L1 (which catches the SDK baseline's overlap
/// between its misaligned interior loads and its separately-issued halo
/// loads) versus Kepler, where global loads bypass L1 entirely
/// (`dup_charge = 1.0` re-fetches every time). The profiler-level
/// [`MemCounters`] stay pre-cache, as `nvprof`'s load-efficiency metric
/// does.
pub fn effective_load_bytes(loads: &[WarpLoad], segment_bytes: u64, dup_charge: f64) -> f64 {
    let mut all: Vec<u64> = Vec::new();
    for l in loads {
        all.extend(instruction_segments(l, segment_bytes));
    }
    let total = all.len() as f64;
    all.sort_unstable();
    all.dedup();
    let unique = all.len() as f64;
    (unique + (total - unique) * dup_charge) * segment_bytes as f64
}

/// Aggregated traffic counters for a set of memory instructions — the
/// simulator's equivalent of the CUDA profiler's global load/store
/// metrics.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct MemCounters {
    /// Warp memory instructions issued.
    pub instructions: u64,
    /// Transactions (segments) moved.
    pub transactions: u64,
    /// Bytes the kernel asked for.
    pub requested_bytes: u64,
    /// Bytes the bus actually moved (`transactions * segment`).
    pub transferred_bytes: u64,
}

impl MemCounters {
    /// Account one warp instruction.
    pub fn record(&mut self, load: &WarpLoad, segment_bytes: u64) {
        let tx = coalesce_transactions(load, segment_bytes) as u64;
        self.instructions += 1;
        self.transactions += tx;
        self.requested_bytes += load.requested_bytes();
        self.transferred_bytes += tx * segment_bytes;
    }

    /// Account a whole slice of warp instructions.
    pub fn record_all(&mut self, loads: &[WarpLoad], segment_bytes: u64) {
        for l in loads {
            self.record(l, segment_bytes);
        }
    }

    /// The profiler's *global memory load efficiency*: requested bytes as
    /// a fraction of transferred bytes (§IV-C, Fig 9). 1.0 when nothing
    /// was moved.
    pub fn efficiency(&self) -> f64 {
        if self.transferred_bytes == 0 {
            1.0
        } else {
            self.requested_bytes as f64 / self.transferred_bytes as f64
        }
    }

    /// Merge another counter set into this one.
    pub fn merge(&mut self, other: &MemCounters) {
        self.instructions += other.instructions;
        self.transactions += other.transactions;
        self.requested_bytes += other.requested_bytes;
        self.transferred_bytes += other.transferred_bytes;
    }

    /// Counter set scaled by `n` repetitions (e.g. one plane's counters
    /// replicated over all planes and blocks).
    pub fn scaled(&self, n: u64) -> MemCounters {
        MemCounters {
            instructions: self.instructions * n,
            transactions: self.transactions * n,
            requested_bytes: self.requested_bytes * n,
            transferred_bytes: self.transferred_bytes * n,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fully_coalesced_sp_warp_is_one_fermi_transaction() {
        // 32 lanes × 4 B = 128 B, aligned: exactly one 128-B transaction.
        let load = WarpLoad::contiguous(0, 32, 4);
        assert_eq!(coalesce_transactions(&load, 128), 1);
        // The same access on Kepler's 32-B sectors: four transactions,
        // same bytes moved.
        assert_eq!(coalesce_transactions(&load, 32), 4);
    }

    #[test]
    fn misaligned_warp_spills_into_second_segment() {
        let load = WarpLoad::contiguous(4, 32, 4);
        assert_eq!(coalesce_transactions(&load, 128), 2);
    }

    #[test]
    fn strided_column_access_is_one_transaction_per_lane() {
        // The nvstencil left-halo pattern: each lane in a different row
        // (row stride 2048 B ≫ segment).
        let load = WarpLoad {
            lane_addresses: (0..16).map(|l| l * 2048).collect(),
            bytes_per_lane: 4,
        };
        assert_eq!(coalesce_transactions(&load, 128), 16);
    }

    #[test]
    fn vector_load_same_bytes_fewer_instructions() {
        // 8 lanes × float4 = same 128 B as 32 lanes × float.
        let vec4 = WarpLoad::contiguous(0, 8, 16);
        assert_eq!(coalesce_transactions(&vec4, 128), 1);
        assert_eq!(vec4.requested_bytes(), 128);
    }

    #[test]
    fn straddling_vector_lane_touches_two_segments() {
        // One float4 starting 8 bytes before a segment boundary.
        let load = WarpLoad {
            lane_addresses: vec![120],
            bytes_per_lane: 16,
        };
        assert_eq!(coalesce_transactions(&load, 128), 2);
    }

    #[test]
    fn duplicate_addresses_coalesce() {
        // All lanes reading the same element: one transaction (broadcast).
        let load = WarpLoad {
            lane_addresses: vec![256; 32],
            bytes_per_lane: 4,
        };
        assert_eq!(coalesce_transactions(&load, 128), 1);
    }

    #[test]
    fn dp_warp_is_two_fermi_transactions() {
        // 32 lanes × 8 B = 256 B aligned: two 128-B transactions.
        let load = WarpLoad::contiguous(0, 32, 8);
        assert_eq!(coalesce_transactions(&load, 128), 2);
    }

    #[test]
    fn counters_accumulate_and_compute_efficiency() {
        let mut c = MemCounters::default();
        // Coalesced: 128 requested / 128 transferred.
        c.record(&WarpLoad::contiguous(0, 32, 4), 128);
        assert_eq!(c.efficiency(), 1.0);
        // One 4-byte lane alone in a 128-B segment.
        c.record(
            &WarpLoad {
                lane_addresses: vec![4096],
                bytes_per_lane: 4,
            },
            128,
        );
        assert_eq!(c.instructions, 2);
        assert_eq!(c.transactions, 2);
        assert_eq!(c.requested_bytes, 132);
        assert_eq!(c.transferred_bytes, 256);
        assert!((c.efficiency() - 132.0 / 256.0).abs() < 1e-12);
    }

    #[test]
    fn empty_counters_have_unit_efficiency() {
        assert_eq!(MemCounters::default().efficiency(), 1.0);
    }

    #[test]
    fn scaled_multiplies_every_field() {
        let mut c = MemCounters::default();
        c.record(&WarpLoad::contiguous(0, 32, 4), 128);
        let s = c.scaled(10);
        assert_eq!(s.instructions, 10);
        assert_eq!(s.transferred_bytes, 1280);
        assert_eq!(s.efficiency(), c.efficiency());
    }

    #[test]
    fn merge_adds_fields() {
        let mut a = MemCounters::default();
        a.record(&WarpLoad::contiguous(0, 32, 4), 128);
        let mut b = MemCounters::default();
        b.record(&WarpLoad::contiguous(128, 32, 4), 128);
        a.merge(&b);
        assert_eq!(a.instructions, 2);
        assert_eq!(a.transactions, 2);
    }

    #[test]
    fn record_all_matches_individual_records() {
        let loads = vec![
            WarpLoad::contiguous(0, 32, 4),
            WarpLoad::contiguous(130, 16, 4),
        ];
        let mut a = MemCounters::default();
        a.record_all(&loads, 128);
        let mut b = MemCounters::default();
        for l in &loads {
            b.record(l, 128);
        }
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic]
    fn non_power_of_two_segment_rejected() {
        coalesce_transactions(&WarpLoad::contiguous(0, 1, 4), 100);
    }
}
