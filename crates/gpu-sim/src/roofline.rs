//! Roofline analysis utilities.
//!
//! The paper's performance story is a roofline story: low-order stencils
//! sit far below the ridge point (bandwidth-bound — coalescing is
//! everything), DP high-order kernels approach or cross it
//! (compute-bound — the in-plane method's extra `r` flops start to
//! cost). These helpers compute arithmetic intensity, the roofline
//! bound, and the ridge point for a device, and classify kernels.

use crate::device::DeviceSpec;

/// Arithmetic intensity in flops per DRAM byte.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Intensity(pub f64);

/// Which side of the ridge a kernel sits on.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RooflineRegime {
    /// Bound by DRAM bandwidth (left of the ridge).
    BandwidthBound,
    /// Bound by arithmetic throughput (right of the ridge).
    ComputeBound,
}

/// Arithmetic intensity of a kernel from its per-point flops and bytes.
pub fn intensity(flops_per_point: f64, bytes_per_point: f64) -> Intensity {
    assert!(bytes_per_point > 0.0, "bytes per point must be positive");
    Intensity(flops_per_point / bytes_per_point)
}

/// The device's ridge point (flops/byte) at the given element width:
/// peak compute over achieved bandwidth.
pub fn ridge_point(device: &DeviceSpec, elem_bytes: usize) -> f64 {
    let peak = match elem_bytes {
        4 => device.peak_sp_flops(),
        8 => device.peak_dp_flops(),
        other => panic!("unsupported element width {other}"),
    };
    peak / device.achieved_bandwidth()
}

/// Attainable flop rate at the given intensity (the roofline itself).
pub fn attainable_gflops(device: &DeviceSpec, elem_bytes: usize, i: Intensity) -> f64 {
    let peak = match elem_bytes {
        4 => device.peak_sp_flops(),
        8 => device.peak_dp_flops(),
        other => panic!("unsupported element width {other}"),
    };
    (device.achieved_bandwidth() * i.0).min(peak) / 1e9
}

/// Classify a kernel against the device's ridge.
pub fn regime(device: &DeviceSpec, elem_bytes: usize, i: Intensity) -> RooflineRegime {
    if i.0 < ridge_point(device, elem_bytes) {
        RooflineRegime::BandwidthBound
    } else {
        RooflineRegime::ComputeBound
    }
}

/// Roofline MPoint/s ceiling for a kernel with the given per-point costs
/// — the number no single-sweep method can exceed, which is what
/// temporal blocking steps past.
pub fn mpoints_ceiling(
    device: &DeviceSpec,
    elem_bytes: usize,
    flops_per_point: f64,
    bytes_per_point: f64,
) -> f64 {
    let i = intensity(flops_per_point, bytes_per_point);
    attainable_gflops(device, elem_bytes, i) * 1e9 / flops_per_point / 1e6
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ridge_points_match_table3_ratios() {
        // GTX580: 1581 GF/s over 161 GB/s ≈ 9.8 flops/byte SP.
        let d = DeviceSpec::gtx580();
        assert!((ridge_point(&d, 4) - 1581.0 / 161.0).abs() < 0.1);
        // C2070 DP: 515 / 117.5 ≈ 4.4 — the best DP ridge of the three.
        let c = DeviceSpec::c2070();
        assert!((ridge_point(&c, 8) - 515.2 / 117.5).abs() < 0.1);
    }

    #[test]
    fn order2_sp_stencil_is_bandwidth_bound_everywhere() {
        // 8 flops per ~9 bytes: intensity < 1 — deep in the bandwidth
        // region on every card, which is why coalescing wins the paper.
        let i = intensity(8.0, 9.0);
        for d in DeviceSpec::paper_devices() {
            assert_eq!(regime(&d, 4, i), RooflineRegime::BandwidthBound);
        }
    }

    #[test]
    fn high_order_dp_crosses_the_ridge_on_gtx680() {
        // Order 12 DP in-plane: 49 flops per ~17 effective bytes ≈ 2.9 —
        // past GTX680's DP ridge (128.8/150 ≈ 0.86) by a mile: compute
        // bound, hence the paper's vanishing DP speedups there.
        let i = intensity(49.0, 17.0);
        assert_eq!(
            regime(&DeviceSpec::gtx680(), 8, i),
            RooflineRegime::ComputeBound
        );
        // The full-rate-DP C2070 keeps it bandwidth-bound.
        assert_eq!(
            regime(&DeviceSpec::c2070(), 8, i),
            RooflineRegime::BandwidthBound
        );
    }

    #[test]
    fn attainable_is_clamped_by_peak() {
        let d = DeviceSpec::gtx580();
        let low = attainable_gflops(&d, 4, Intensity(0.5));
        assert!((low - 0.5 * 161.0).abs() < 1.0);
        let high = attainable_gflops(&d, 4, Intensity(1000.0));
        assert!((high - 1581.0).abs() < 2.0);
    }

    #[test]
    fn mpoints_ceiling_matches_hand_arithmetic() {
        // Order-2 SP at 9.6 B/pt on GTX580: 161e9 / 9.6 ≈ 16.8 GPt/s.
        let d = DeviceSpec::gtx580();
        let c = mpoints_ceiling(&d, 4, 8.0, 9.6);
        assert!((c / 1000.0 - 16.8).abs() < 0.1, "{c}");
    }

    #[test]
    fn tuned_results_respect_the_ceiling() {
        // The paper's 17294 MPoint/s headline sits just under the
        // ceiling of its own traffic (~9.3 B/pt).
        let d = DeviceSpec::gtx580();
        let ceiling = mpoints_ceiling(&d, 4, 8.0, 9.3);
        assert!(
            17294.0 < ceiling * 1.01,
            "paper headline vs ceiling {ceiling:.0}"
        );
    }

    #[test]
    #[should_panic]
    fn zero_bytes_rejected() {
        intensity(8.0, 0.0);
    }
}
