//! Bandwidth micro-benchmark.
//!
//! §IV-A of the paper: *"We also measured the throughput achievable on
//! each GPU and obtained 161 GB/s on GTX580, 150 GB/s on GTX680 and
//! 117.5 GB/s on Tesla C2070."* This module runs the simulator's
//! equivalent measurement — a perfectly coalesced copy kernel — through
//! the full timing engine, closing the loop between the device's
//! calibrated `achieved_bw_fraction` and what an actual simulated kernel
//! observes. Table III's "measured" column is regenerated from here.

use crate::device::DeviceSpec;
use crate::mem::WarpLoad;
use crate::occupancy::BlockResources;
use crate::plan::{BlockPlan, GridDims, LaunchGeometry, PlanePlan};
use crate::timing::{simulate, SimOptions};

/// Build a copy-kernel plan: each 256-thread block streams `words_per
/// thread` SP words in and out per plane with perfect coalescing.
fn copy_plan(elem_bytes: usize) -> (BlockPlan, GridDims) {
    let dims = GridDims::new(1024, 1024, 64);
    let threads = 256usize;
    let blocks = dims.lx * dims.ly / (threads * 4); // 4 elements per thread
    let warps = threads / 32;
    let loads: Vec<WarpLoad> = (0..warps * 4)
        .map(|w| WarpLoad::contiguous(w as u64 * 32 * elem_bytes as u64, 32, elem_bytes as u64))
        .collect();
    let stores = loads
        .iter()
        .map(|l| WarpLoad {
            lane_addresses: l.lane_addresses.iter().map(|a| a + (1 << 26)).collect(),
            bytes_per_lane: elem_bytes as u64,
        })
        .collect();
    let plan = BlockPlan {
        plane: PlanePlan {
            loads,
            stores,
            smem_warp_instrs: 0,
            bank_conflict_factor: 1.0,
            flops: 0,
            dependent_rounds: 1.0,
            ilp: 4.0,
            syncthreads: 0,
        },
        resources: BlockResources {
            threads,
            regs_per_thread: 16,
            smem_bytes: 0,
        },
        geometry: LaunchGeometry {
            blocks,
            threads_per_block: threads,
            planes: dims.lz,
        },
        elem_bytes,
    };
    (plan, dims)
}

/// "Measure" the streaming bandwidth of `device` in GB/s, as the paper
/// did for Table III's achieved-throughput numbers.
pub fn measure_achieved_bandwidth(device: &DeviceSpec) -> f64 {
    let (plan, dims) = copy_plan(4);
    let rep = simulate(
        device,
        &plan,
        &dims,
        &SimOptions {
            launch_overhead_s: 0.0,
            ..SimOptions::default()
        },
    );
    rep.achieved_bandwidth_gbs()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measured_bandwidths_match_paper() {
        // §IV-A: 161 / 150 / 117.5 GB/s, within a few percent.
        let cases = [
            (DeviceSpec::gtx580(), 161.0),
            (DeviceSpec::gtx680(), 150.0),
            (DeviceSpec::c2070(), 117.5),
        ];
        for (dev, expect) in cases {
            let got = measure_achieved_bandwidth(&dev);
            assert!(
                (got - expect).abs() / expect < 0.03,
                "{}: measured {got:.1} GB/s, paper says {expect}",
                dev.name
            );
        }
    }

    #[test]
    fn copy_kernel_is_memory_bound() {
        let (plan, dims) = copy_plan(4);
        let rep = simulate(
            &DeviceSpec::gtx580(),
            &plan,
            &dims,
            &SimOptions {
                launch_overhead_s: 0.0,
                ..SimOptions::default()
            },
        );
        assert_eq!(
            rep.limiting,
            crate::counters::LimitingFactor::MemoryBandwidth
        );
        assert!((rep.load_efficiency() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn dp_copy_also_saturates() {
        let (plan, dims) = copy_plan(8);
        let dev = DeviceSpec::c2070();
        let rep = simulate(
            &dev,
            &plan,
            &dims,
            &SimOptions {
                launch_overhead_s: 0.0,
                ..SimOptions::default()
            },
        );
        let got = rep.achieved_bandwidth_gbs();
        let expect = dev.achieved_bandwidth() / 1e9;
        assert!((got - expect).abs() / expect < 0.03);
    }
}
