//! Shared-memory bank-conflict modelling.
//!
//! Shared memory is divided into `banks` (32 on Fermi and Kepler)
//! word-interleaved banks; a warp instruction that makes its lanes hit
//! the same bank at *different* addresses serialises into as many
//! passes as the worst bank's multiplicity (identical addresses
//! broadcast for free). The classic stencil hazard: a 2-D thread block
//! with `TX < 32` spans several tile rows per warp, and when the tile's
//! row pitch is a multiple of the bank count those rows collide — the
//! reason real kernels pad shared tiles to odd pitches.

/// Number of serialisation passes one warp instruction needs: the
/// maximum, over banks, of the number of *distinct* word addresses the
/// instruction's lanes direct at that bank. 1 = conflict-free; identical
/// addresses broadcast.
pub fn instruction_passes(lane_word_addrs: &[u32], banks: usize) -> usize {
    assert!(banks > 0, "need at least one bank");
    let mut per_bank: Vec<Vec<u32>> = vec![Vec::new(); banks];
    for &a in lane_word_addrs {
        let b = (a as usize) % banks;
        if !per_bank[b].contains(&a) {
            per_bank[b].push(a);
        }
    }
    per_bank.iter().map(Vec::len).max().unwrap_or(0).max(1)
}

/// Mean serialisation factor over a set of warp instructions (≥ 1).
pub fn conflict_factor(instrs: &[Vec<u32>], banks: usize) -> f64 {
    if instrs.is_empty() {
        return 1.0;
    }
    let total: usize = instrs.iter().map(|i| instruction_passes(i, banks)).sum();
    total as f64 / instrs.len() as f64
}

/// The word addresses one warp generates reading a shared tile of row
/// pitch `pitch_words` at row offset `dy` / column offset `dx` from each
/// lane's home point, for a `TX × TY` thread block (lane `l` of warp
/// `warp_idx` is thread `warp_idx·32 + l`).
pub fn stencil_read_addrs(
    tx: usize,
    pitch_words: usize,
    warp_idx: usize,
    warp_size: usize,
    dx: isize,
    dy: isize,
) -> Vec<u32> {
    (0..warp_size)
        .map(|l| {
            let t = warp_idx * warp_size + l;
            let (x, y) = (t % tx, t / tx);
            let row = (y as isize + dy).max(0) as usize;
            let col = (x as isize + dx).max(0) as usize;
            (row * pitch_words + col) as u32
        })
        .collect()
}

/// Mean conflict factor for a stencil compute phase: one warp reading
/// its centre, `±x` and `±y` neighbours (radius `r`) from a tile of the
/// given pitch.
pub fn stencil_phase_factor(
    tx: usize,
    threads: usize,
    pitch_words: usize,
    r: usize,
    warp_size: usize,
    banks: usize,
) -> f64 {
    let warps = threads.div_ceil(warp_size);
    let mut instrs = Vec::new();
    for w in 0..warps {
        instrs.push(stencil_read_addrs(tx, pitch_words, w, warp_size, 0, 0));
        for m in 1..=r as isize {
            instrs.push(stencil_read_addrs(tx, pitch_words, w, warp_size, -m, 0));
            instrs.push(stencil_read_addrs(tx, pitch_words, w, warp_size, m, 0));
            instrs.push(stencil_read_addrs(tx, pitch_words, w, warp_size, 0, -m));
            instrs.push(stencil_read_addrs(tx, pitch_words, w, warp_size, 0, m));
        }
    }
    conflict_factor(&instrs, banks)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn contiguous_lanes_are_conflict_free() {
        let addrs: Vec<u32> = (0..32).collect();
        assert_eq!(instruction_passes(&addrs, 32), 1);
    }

    #[test]
    fn same_address_broadcasts() {
        let addrs = vec![7u32; 32];
        assert_eq!(instruction_passes(&addrs, 32), 1);
    }

    #[test]
    fn stride_32_is_a_full_conflict() {
        let addrs: Vec<u32> = (0..32).map(|l| l * 32).collect();
        assert_eq!(instruction_passes(&addrs, 32), 32);
    }

    #[test]
    fn stride_2_is_two_way() {
        let addrs: Vec<u32> = (0..32).map(|l| l * 2).collect();
        assert_eq!(instruction_passes(&addrs, 32), 2);
    }

    #[test]
    fn full_width_warps_never_conflict_on_row_reads() {
        // TX = 32: a warp is one row, unit stride for every offset.
        for pitch in [33usize, 40, 64, 96] {
            let f = stencil_phase_factor(32, 256, pitch, 4, 32, 32);
            assert_eq!(f, 1.0, "pitch {pitch}");
        }
    }

    #[test]
    fn bank_multiple_pitch_conflicts_for_narrow_tx() {
        // TX = 16 and pitch 64: lanes 0 and 16 of a warp sit in different
        // rows, 64 words apart -> same bank, 2-way conflict.
        let f_bad = stencil_phase_factor(16, 128, 64, 1, 32, 32);
        assert!(f_bad > 1.5, "expected ~2-way conflicts, got {f_bad}");
        // A pitch ≡ 16 (mod 32) staggers the two rows into the two bank
        // halves and removes the conflicts.
        let f_good = stencil_phase_factor(16, 128, 48, 1, 32, 32);
        assert!(
            f_good < 1.1,
            "pitch 48 should be conflict-free, got {f_good}"
        );
    }

    #[test]
    fn conflict_factor_averages() {
        let clean: Vec<u32> = (0..32).collect();
        let bad: Vec<u32> = (0..32).map(|l| l * 32).collect();
        let f = conflict_factor(&[clean, bad], 32);
        assert!((f - 16.5).abs() < 1e-12);
        assert_eq!(conflict_factor(&[], 32), 1.0);
    }

    #[test]
    fn empty_instruction_counts_one_pass() {
        assert_eq!(instruction_passes(&[], 32), 1);
    }
}
