//! Simulation results — the simulator's answer to `nvprof` plus a
//! wall-clock measurement.

use crate::mem::MemCounters;
use crate::occupancy::Occupancy;

/// Which per-plane cost term dominated the run.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LimitingFactor {
    /// DRAM bandwidth bound (transferred bytes / achieved bandwidth).
    MemoryBandwidth,
    /// Load/store-unit issue bound (too many memory instructions).
    IssueLsu,
    /// Arithmetic throughput bound.
    Compute,
    /// Exposed memory latency (occupancy too low to hide it).
    Latency,
    /// The configuration cannot run at all (occupancy = 0).
    Infeasible,
}

/// Result of simulating one kernel launch.
#[derive(Clone, Debug, PartialEq)]
pub struct SimReport {
    /// Simulated wall-clock time for the full grid sweep, seconds.
    /// `f64::INFINITY` when the launch is infeasible.
    pub time_s: f64,
    /// Grid points in the sweep.
    pub points: u64,
    /// Aggregated global-memory counters for the whole sweep.
    pub mem: MemCounters,
    /// Occupancy achieved.
    pub occupancy: Occupancy,
    /// Dominant cost term.
    pub limiting: LimitingFactor,
    /// Number of scheduling stages (Eqn (8)).
    pub stages: usize,
    /// Total floating-point operations performed.
    pub flops: u64,
}

impl SimReport {
    /// An infeasible-launch report.
    pub fn infeasible(points: u64, occupancy: Occupancy) -> Self {
        SimReport {
            time_s: f64::INFINITY,
            points,
            mem: MemCounters::default(),
            occupancy,
            limiting: LimitingFactor::Infeasible,
            stages: 0,
            flops: 0,
        }
    }

    /// True when the launch could run.
    pub fn feasible(&self) -> bool {
        self.time_s.is_finite()
    }

    /// The paper's headline metric: millions of grid points per second.
    pub fn mpoints_per_s(&self) -> f64 {
        if self.feasible() {
            self.points as f64 / self.time_s / 1e6
        } else {
            0.0
        }
    }

    /// Achieved floating-point rate in GFlop/s (used for the §V-B
    /// literature comparison).
    pub fn gflops(&self) -> f64 {
        if self.feasible() {
            self.flops as f64 / self.time_s / 1e9
        } else {
            0.0
        }
    }

    /// DRAM bandwidth actually consumed, GB/s.
    pub fn achieved_bandwidth_gbs(&self) -> f64 {
        if self.feasible() {
            self.mem.transferred_bytes as f64 / self.time_s / 1e9
        } else {
            0.0
        }
    }

    /// Global-memory load/store efficiency (requested / transferred).
    pub fn load_efficiency(&self) -> f64 {
        self.mem.efficiency()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::occupancy::OccupancyLimit;

    fn dummy_occ() -> Occupancy {
        Occupancy {
            active_blocks: 0,
            active_warps: 0,
            occupancy: 0.0,
            limited_by: OccupancyLimit::Infeasible,
        }
    }

    #[test]
    fn infeasible_report() {
        let r = SimReport::infeasible(1000, dummy_occ());
        assert!(!r.feasible());
        assert_eq!(r.mpoints_per_s(), 0.0);
        assert_eq!(r.gflops(), 0.0);
        assert_eq!(r.achieved_bandwidth_gbs(), 0.0);
        assert_eq!(r.limiting, LimitingFactor::Infeasible);
    }

    #[test]
    fn mpoints_arithmetic() {
        let mut r = SimReport::infeasible(2_000_000, dummy_occ());
        r.time_s = 0.5;
        r.limiting = LimitingFactor::MemoryBandwidth;
        assert!((r.mpoints_per_s() - 4.0).abs() < 1e-12);
    }

    #[test]
    fn gflops_arithmetic() {
        let mut r = SimReport::infeasible(1, dummy_occ());
        r.time_s = 2.0;
        r.flops = 8_000_000_000;
        assert!((r.gflops() - 4.0).abs() < 1e-12);
    }
}
