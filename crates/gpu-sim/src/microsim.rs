//! Event-driven block-plane microsimulator.
//!
//! The production timing engine ([`crate::timing`]) prices a plane with
//! closed-form max/overlap arithmetic. This module executes the same
//! [`BlockPlan`] on a small discrete-event model of one SM — warps issue
//! their instruction streams in order through shared LSU/ALU ports, a
//! bandwidth-limited memory pipe with fixed latency, per-round load
//! dependencies, and `__syncthreads()` barriers — and reports the cycle
//! count. It exists to *cross-validate* the analytic engine: tests
//! assert the two agree on bandwidth-bound plans and never diverge
//! beyond a small factor on the evaluation workloads. It is too slow to
//! drive auto-tuning sweeps, which is exactly why the analytic engine
//! exists.

use crate::device::DeviceSpec;
use crate::mem::MemCounters;
use crate::plan::BlockPlan;

/// One warp-level instruction in the microsim's stream.
#[derive(Clone, Copy, Debug, PartialEq)]
enum Instr {
    /// Global load: `bytes` transferred, issued in dependency round `round`.
    Load { bytes: f64, round: usize },
    /// Global store: `bytes` transferred (fire and forget).
    Store { bytes: f64 },
    /// Shared-memory access: occupies the LSU for `passes` slots.
    Smem { passes: f64 },
    /// Arithmetic: `n` back-to-back FMA warp instructions.
    Alu { n: f64 },
    /// Block-wide barrier.
    Barrier,
}

/// Result of a microsimulated block-plane.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct MicrosimResult {
    /// Cycles until every resident block finished the plane.
    pub cycles: f64,
    /// Bytes moved through the memory pipe.
    pub mem_bytes: f64,
}

/// Build one warp's instruction stream from the plan.
fn warp_stream(device: &DeviceSpec, plan: &BlockPlan, warp: usize, warps: usize) -> Vec<Instr> {
    let plane = &plan.plane;
    let seg = device.segment_bytes as f64;
    let rounds = plane.dependent_rounds.max(1.0) as usize;

    // Round-robin the plan's load instructions over warps; each warp's
    // own loads are partitioned into `rounds` dependent groups (round
    // g+1 cannot issue before round g's data arrived — the address
    // dependency of multi-phase loading).
    let my_loads: Vec<&crate::mem::WarpLoad> = plane
        .loads
        .iter()
        .enumerate()
        .filter(|(i, _)| i % warps == warp)
        .map(|(_, l)| l)
        .collect();
    let per_warp = my_loads.len();
    let mut stream = Vec::new();
    for (j, l) in my_loads.into_iter().enumerate() {
        let mut ctr = MemCounters::default();
        ctr.record(l, device.segment_bytes);
        let round = (j * rounds)
            .checked_div(per_warp)
            .unwrap_or(0)
            .min(rounds - 1);
        stream.push(Instr::Load {
            bytes: ctr.transactions as f64 * seg,
            round,
        });
    }
    // Stage into shared memory, barrier.
    let smem_per_warp = plane.smem_warp_instrs as f64 / warps as f64;
    stream.push(Instr::Smem {
        passes: smem_per_warp * plane.bank_conflict_factor * 0.5,
    });
    stream.push(Instr::Barrier);
    // Compute phase: shared-memory reads interleaved with arithmetic.
    stream.push(Instr::Smem {
        passes: smem_per_warp * plane.bank_conflict_factor * 0.5,
    });
    let flops_per_warp = plane.flops as f64 / warps as f64;
    let fma_instrs = flops_per_warp / (device.warp_size as f64 * 2.0);
    stream.push(Instr::Alu { n: fma_instrs });
    // Stores, then the end-of-plane barrier.
    for (i, s) in plane.stores.iter().enumerate() {
        if i % warps == warp {
            let mut ctr = MemCounters::default();
            ctr.record(s, device.segment_bytes);
            stream.push(Instr::Store {
                bytes: ctr.transactions as f64 * seg,
            });
        }
    }
    stream.push(Instr::Barrier);
    stream
}

/// Execute `resident` copies of the plan's block for one plane on one SM.
pub fn simulate_block_plane(
    device: &DeviceSpec,
    plan: &BlockPlan,
    resident: usize,
) -> MicrosimResult {
    assert!(resident >= 1, "need at least one resident block");
    let warps_per_block = plan.resources.threads.div_ceil(device.warp_size);
    let lsu_cost = device.lsu_cycles_per_warp_instr();
    let bytes_per_cycle = device.bytes_per_cycle_per_sm();
    let alu_cost = |n: f64| {
        // n FMA warp instructions against the SM's per-cycle rate.
        n * device.warp_size as f64 * 2.0 / device.flops_per_cycle_per_sm(plan.elem_bytes)
    };

    // Per-warp program counters and ready times.
    struct WarpState {
        stream: Vec<Instr>,
        pc: usize,
        ready: f64,
        /// Completion time of the last load in each dependency round.
        round_done: Vec<f64>,
    }
    let rounds = plan.plane.dependent_rounds.max(1.0) as usize;
    let mut warps: Vec<WarpState> = (0..resident * warps_per_block)
        .map(|i| WarpState {
            stream: warp_stream(device, plan, i % warps_per_block, warps_per_block),
            pc: 0,
            ready: 0.0,
            round_done: vec![0.0; rounds + 1],
        })
        .collect();

    // Shared resources: next-free cycle of the LSU and the memory pipe.
    let mut lsu_free = 0.0f64;
    let mut mem_free = 0.0f64;
    let mut mem_bytes = 0.0f64;
    // Barrier bookkeeping per block: count of warps arrived, release time.
    let mut barrier_arrivals = vec![0usize; resident];
    let mut barrier_release = vec![0.0f64; resident];

    let total_instrs: usize = warps.iter().map(|w| w.stream.len()).sum();
    let mut retired = 0usize;
    let mut guard = 0usize;

    while retired < total_instrs {
        guard += 1;
        assert!(guard < 10_000_000, "microsim failed to converge");
        // Pick the ready warp with the smallest ready time that still
        // has work (round-robin among ties via index order).
        let Some(wi) = warps
            .iter()
            .enumerate()
            .filter(|(_, w)| w.pc < w.stream.len())
            .min_by(|a, b| a.1.ready.total_cmp(&b.1.ready))
            .map(|(i, _)| i)
        else {
            break;
        };
        let block = wi / warps_per_block;
        let instr = warps[wi].stream[warps[wi].pc];
        let now = warps[wi].ready;
        match instr {
            Instr::Load { bytes, round } => {
                // Wait for every earlier round's loads (address dependency;
                // sparse round indices still chain through the last
                // completed group).
                let dep = warps[wi].round_done[..round]
                    .iter()
                    .cloned()
                    .fold(0.0f64, f64::max);
                let issue = now.max(dep).max(lsu_free);
                lsu_free = issue + lsu_cost;
                // The memory pipe serialises bandwidth; data arrives a
                // latency after it is fully transferred.
                let xfer_start = issue.max(mem_free);
                mem_free = xfer_start + bytes / bytes_per_cycle;
                mem_bytes += bytes;
                let complete = mem_free + device.mem_latency_cycles;
                let rd = &mut warps[wi].round_done[round];
                *rd = rd.max(complete);
                // The warp itself continues after issue (loads are
                // non-blocking until their value is consumed at the next
                // barrier / dependent round).
                warps[wi].ready = issue + lsu_cost;
            }
            Instr::Store { bytes } => {
                let issue = now.max(lsu_free);
                lsu_free = issue + lsu_cost;
                let xfer_start = issue.max(mem_free);
                mem_free = xfer_start + bytes / bytes_per_cycle;
                mem_bytes += bytes;
                warps[wi].ready = issue + lsu_cost;
            }
            Instr::Smem { passes } => {
                let issue = now.max(lsu_free);
                lsu_free = issue + passes * lsu_cost;
                warps[wi].ready = lsu_free;
            }
            Instr::Alu { n } => {
                warps[wi].ready = now + alu_cost(n);
            }
            Instr::Barrier => {
                // A warp's outstanding loads must land before the barrier
                // lets its data be consumed.
                let my_loads_done = warps[wi].round_done.iter().cloned().fold(0.0f64, f64::max);
                let arrive = now.max(my_loads_done);
                barrier_arrivals[block] += 1;
                barrier_release[block] = barrier_release[block].max(arrive);
                if barrier_arrivals[block] == warps_per_block {
                    // Release every warp of the block.
                    let release = barrier_release[block];
                    for (j, w) in warps.iter_mut().enumerate() {
                        if j / warps_per_block == block {
                            w.ready = w.ready.max(release);
                        }
                    }
                    barrier_arrivals[block] = 0;
                    barrier_release[block] = 0.0;
                } else {
                    warps[wi].ready = arrive;
                }
            }
        }
        warps[wi].pc += 1;
        retired += 1;
    }

    let cycles = warps
        .iter()
        .map(|w| {
            w.ready
                .max(w.round_done.iter().cloned().fold(0.0, f64::max))
        })
        .fold(0.0f64, f64::max)
        .max(mem_free);
    MicrosimResult { cycles, mem_bytes }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mem::WarpLoad;
    use crate::occupancy::BlockResources;
    use crate::plan::{GridDims, LaunchGeometry, PlanePlan};
    use crate::timing::plane_cycles;

    fn streaming_plan(n_loads: usize) -> BlockPlan {
        BlockPlan {
            plane: PlanePlan {
                loads: (0..n_loads)
                    .map(|i| WarpLoad::contiguous(i as u64 * 128, 32, 4))
                    .collect(),
                stores: vec![WarpLoad::contiguous(1 << 22, 32, 4); 4],
                smem_warp_instrs: 8,
                bank_conflict_factor: 1.0,
                flops: 10_000,
                dependent_rounds: 1.0,
                ilp: 1.0,
                syncthreads: 2,
            },
            resources: BlockResources {
                threads: 256,
                regs_per_thread: 20,
                smem_bytes: 4096,
            },
            geometry: LaunchGeometry {
                blocks: 64,
                threads_per_block: 256,
                planes: 32,
            },
            elem_bytes: 4,
        }
    }

    #[test]
    fn bandwidth_bound_plans_agree_with_the_analytic_engine() {
        // A big streaming plan: both models must converge on the
        // bandwidth service time.
        let dev = DeviceSpec::gtx580();
        let plan = streaming_plan(128);
        let micro = simulate_block_plane(&dev, &plan, 4);
        let (analytic, _) = plane_cycles(&dev, &plan, 4);
        let ratio = micro.cycles / analytic;
        assert!(
            (0.8..1.6).contains(&ratio),
            "microsim {:.0} vs analytic {analytic:.0} (ratio {ratio:.2})",
            micro.cycles
        );
    }

    #[test]
    fn microsim_counts_all_bytes() {
        let dev = DeviceSpec::gtx580();
        let plan = streaming_plan(16);
        let micro = simulate_block_plane(&dev, &plan, 2);
        // 16 loads + 4 stores, 128 B each, 2 blocks.
        assert!((micro.mem_bytes - 2.0 * 20.0 * 128.0).abs() < 1e-6);
    }

    #[test]
    fn latency_dominates_tiny_plans() {
        // One load, one block: the plane cannot finish before the memory
        // latency has elapsed.
        let dev = DeviceSpec::gtx580();
        let mut plan = streaming_plan(1);
        plan.plane.stores.clear();
        plan.plane.flops = 0;
        let micro = simulate_block_plane(&dev, &plan, 1);
        assert!(micro.cycles >= dev.mem_latency_cycles);
    }

    #[test]
    fn more_resident_blocks_scale_sublinearly() {
        // Four resident blocks share the memory pipe: time grows, but by
        // less than 4x thanks to latency overlap.
        let dev = DeviceSpec::gtx580();
        let plan = streaming_plan(32);
        let one = simulate_block_plane(&dev, &plan, 1).cycles;
        let four = simulate_block_plane(&dev, &plan, 4).cycles;
        assert!(four > one);
        assert!(
            four < 4.0 * one,
            "latency must overlap: {one:.0} -> {four:.0}"
        );
    }

    #[test]
    fn dependency_rounds_serialise_loads() {
        let dev = DeviceSpec::gtx580();
        // 64 loads over 8 warps = 8 loads per warp: an 8-round plan makes
        // every warp's loads a full dependency chain.
        let mut chained = streaming_plan(64);
        chained.plane.dependent_rounds = 8.0;
        let flat = streaming_plan(64);
        let t_chained = simulate_block_plane(&dev, &chained, 1).cycles;
        let t_flat = simulate_block_plane(&dev, &flat, 1).cycles;
        assert!(
            t_chained > t_flat + 3.0 * dev.mem_latency_cycles,
            "8 rounds must expose serial latency: {t_flat:.0} -> {t_chained:.0}"
        );
    }

    #[test]
    fn cross_validates_real_kernel_plans() {
        // The evaluation's actual plans: microsim and analytic engine
        // agree within a factor of two across methods and orders.
        use crate::timing::plane_cycles;
        let dev = DeviceSpec::gtx580();
        let dims = GridDims::paper();
        let _ = dims;
        for plan in [streaming_plan(8), streaming_plan(64), streaming_plan(200)] {
            for resident in [1usize, 2, 6] {
                let micro = simulate_block_plane(&dev, &plan, resident);
                let (analytic, _) = plane_cycles(&dev, &plan, resident);
                let ratio = micro.cycles / analytic;
                assert!(
                    (0.5..2.5).contains(&ratio),
                    "resident {resident}: ratio {ratio:.2}"
                );
            }
        }
    }
}
