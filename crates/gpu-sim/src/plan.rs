//! The contract between kernel implementations and the timing engine.
//!
//! A stencil kernel sweeping a `LX × LY × LZ` grid is, per the 2.5-D
//! decomposition, a 2-D launch of thread blocks over the xy-plane, each
//! block marching along z. Because every interior block does exactly the
//! same work on every plane, one [`PlanePlan`] (the per-plane warp-level
//! workload of one block) plus a [`LaunchGeometry`] fully describes the
//! kernel to the simulator. Kernel variants in `inplane-core` construct
//! these; [`crate::timing::simulate`] prices them.

use crate::mem::WarpLoad;
use crate::occupancy::BlockResources;

/// Problem-grid dimensions (`LX × LY × LZ` in the paper).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct GridDims {
    /// X extent (unit stride).
    pub lx: usize,
    /// Y extent.
    pub ly: usize,
    /// Z extent (the streaming direction).
    pub lz: usize,
}

impl GridDims {
    /// Construct; all dimensions must be non-zero.
    pub fn new(lx: usize, ly: usize, lz: usize) -> Self {
        assert!(lx > 0 && ly > 0 && lz > 0, "grid dims must be non-zero");
        GridDims { lx, ly, lz }
    }

    /// The paper's evaluation grid, `512 × 512 × 256`.
    pub fn paper() -> Self {
        GridDims {
            lx: 512,
            ly: 512,
            lz: 256,
        }
    }

    /// Total grid points (the paper's MPoint/s denominator).
    pub fn points(&self) -> u64 {
        self.lx as u64 * self.ly as u64 * self.lz as u64
    }
}

/// How the launch covers the grid.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct LaunchGeometry {
    /// Thread blocks covering one xy-plane (`Blks` of Eqn (6)).
    pub blocks: usize,
    /// Threads per block (`TX × TY`).
    pub threads_per_block: usize,
    /// z-planes each block traverses (`LZ`).
    pub planes: usize,
}

/// Warp-level workload of one thread block on one z-plane.
#[derive(Clone, Debug, PartialEq)]
pub struct PlanePlan {
    /// Global-memory load instructions (per warp, address-accurate).
    pub loads: Vec<WarpLoad>,
    /// Global-memory store instructions.
    pub stores: Vec<WarpLoad>,
    /// Shared-memory access warp instructions (stores into the staging
    /// buffer plus neighbour reads during compute).
    pub smem_warp_instrs: u64,
    /// Mean shared-memory serialisation factor from bank conflicts
    /// (1.0 = conflict-free).
    pub bank_conflict_factor: f64,
    /// Floating-point operations the block performs on this plane.
    pub flops: u64,
    /// Dependency depth of the load phase: how many *dependent* global
    /// memory rounds a thread must wait through before compute can start.
    /// Contiguous sweeps with independent loads have depth 1; looped
    /// column halo loads have depth growing with the stencil radius.
    pub dependent_rounds: f64,
    /// Independent in-flight operations per thread (instruction-level
    /// parallelism from register tiling); scales latency hiding.
    pub ilp: f64,
    /// `__syncthreads()` barriers per plane.
    pub syncthreads: u64,
}

impl PlanePlan {
    /// Total warp-level memory instructions (loads + stores).
    pub fn mem_instructions(&self) -> u64 {
        (self.loads.len() + self.stores.len()) as u64
    }
}

/// Everything the simulator needs about one kernel launch.
#[derive(Clone, Debug, PartialEq)]
pub struct BlockPlan {
    /// Per-plane workload of one interior block.
    pub plane: PlanePlan,
    /// Resource usage for occupancy (Eqn (7) inputs).
    pub resources: BlockResources,
    /// Launch shape (Eqn (6) inputs).
    pub geometry: LaunchGeometry,
    /// Element width in bytes (4 = SP, 8 = DP), for compute throughput.
    pub elem_bytes: usize,
}

impl BlockPlan {
    /// Grid points computed per block per plane (tile area).
    pub fn points_per_block_plane(&self, dims: &GridDims) -> f64 {
        dims.lx as f64 * dims.ly as f64 / self.geometry.blocks as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_grid_dims() {
        let g = GridDims::paper();
        assert_eq!((g.lx, g.ly, g.lz), (512, 512, 256));
        assert_eq!(g.points(), 512 * 512 * 256);
    }

    #[test]
    #[should_panic]
    fn zero_dim_rejected() {
        GridDims::new(0, 4, 4);
    }

    #[test]
    fn mem_instruction_count() {
        let plan = PlanePlan {
            loads: vec![WarpLoad::contiguous(0, 32, 4); 3],
            stores: vec![WarpLoad::contiguous(0, 32, 4); 2],
            smem_warp_instrs: 0,
            bank_conflict_factor: 1.0,
            flops: 100,
            dependent_rounds: 1.0,
            ilp: 1.0,
            syncthreads: 1,
        };
        assert_eq!(plan.mem_instructions(), 5);
    }

    #[test]
    fn points_per_block_plane() {
        let plan = BlockPlan {
            plane: PlanePlan {
                loads: vec![],
                stores: vec![],
                smem_warp_instrs: 0,
                bank_conflict_factor: 1.0,
                flops: 0,
                dependent_rounds: 1.0,
                ilp: 1.0,
                syncthreads: 0,
            },
            resources: BlockResources {
                threads: 256,
                regs_per_thread: 16,
                smem_bytes: 0,
            },
            geometry: LaunchGeometry {
                blocks: 256,
                threads_per_block: 256,
                planes: 256,
            },
            elem_bytes: 4,
        };
        let dims = GridDims::paper();
        assert!((plan.points_per_block_plane(&dims) - 1024.0).abs() < 1e-9);
    }
}
