//! Deterministic measurement noise.
//!
//! Real auto-tuning measures wall-clock times that jitter run to run; the
//! paper's model-based tuner is judged against such measurements
//! (Fig 12). To reproduce that texture without sacrificing
//! reproducibility, the simulator can perturb its times by a small
//! multiplicative factor that is a *pure hash* of the experiment's
//! identifying string and a seed — the same configuration always
//! "measures" the same, but neighbouring configurations de-correlate.

/// Multiplicative noise factor in `[1 - amplitude, 1 + amplitude]`,
/// deterministic in `(key, seed)`.
pub fn measurement_noise(key: &str, seed: u64, amplitude: f64) -> f64 {
    assert!(
        (0.0..1.0).contains(&amplitude),
        "amplitude must be in [0, 1)"
    );
    let mut h = seed ^ 0x51_7c_c1_b7_27_22_0a_95;
    for b in key.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
        h ^= h >> 29;
    }
    h = h.wrapping_mul(0xbf58_476d_1ce4_e5b9);
    h ^= h >> 32;
    let unit = (h as f64 / u64::MAX as f64) * 2.0 - 1.0; // [-1, 1]
    1.0 + unit * amplitude
}

/// Pre-hashed identity of one evaluation point — the allocation-free
/// replacement for the string keys of [`measurement_noise`]. Derived
/// from the evaluation's `PlanKey` (device, kernel, config, dims) so
/// distinct configurations de-correlate exactly as the string keys did.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct NoiseKey(pub u64);

impl NoiseKey {
    /// Fold a sequence of words into a key (FNV-style, order-sensitive).
    pub fn from_words(words: &[u64]) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for &w in words {
            for b in w.to_le_bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x100_0000_01b3);
            }
            h ^= h >> 29;
        }
        NoiseKey(h)
    }
}

/// Multiplicative noise factor keyed by a pre-hashed [`NoiseKey`] — the
/// same texture as [`measurement_noise`] without the per-call string
/// allocation.
pub fn measurement_noise_keyed(key: NoiseKey, seed: u64, amplitude: f64) -> f64 {
    assert!(
        (0.0..1.0).contains(&amplitude),
        "amplitude must be in [0, 1)"
    );
    let mut h = key.0 ^ seed.wrapping_mul(0x9e37_79b9_7f4a_7c15) ^ 0x51_7c_c1_b7_27_22_0a_95;
    h ^= h >> 33;
    h = h.wrapping_mul(0xbf58_476d_1ce4_e5b9);
    h ^= h >> 32;
    let unit = (h as f64 / u64::MAX as f64) * 2.0 - 1.0; // [-1, 1]
    1.0 + unit * amplitude
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic() {
        assert_eq!(
            measurement_noise("cfg-a", 1, 0.02),
            measurement_noise("cfg-a", 1, 0.02)
        );
    }

    #[test]
    fn varies_with_key_and_seed() {
        let a = measurement_noise("cfg-a", 1, 0.02);
        let b = measurement_noise("cfg-b", 1, 0.02);
        let c = measurement_noise("cfg-a", 2, 0.02);
        assert_ne!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn bounded() {
        for i in 0..500 {
            let f = measurement_noise(&format!("k{i}"), 42, 0.05);
            assert!((0.95..=1.05).contains(&f), "noise {f} out of bounds");
        }
    }

    #[test]
    fn zero_amplitude_is_identity() {
        assert_eq!(measurement_noise("anything", 9, 0.0), 1.0);
    }

    #[test]
    fn spreads_across_range() {
        let vals: Vec<f64> = (0..200)
            .map(|i| measurement_noise(&format!("cfg{i}"), 7, 0.02))
            .collect();
        assert!(vals.iter().any(|&v| v > 1.01));
        assert!(vals.iter().any(|&v| v < 0.99));
    }

    #[test]
    #[should_panic]
    fn amplitude_must_be_sane() {
        measurement_noise("x", 0, 1.5);
    }
}
