//! CPU reference stencil executors — the golden model.
//!
//! The paper verifies every GPU kernel against "the result from the
//! CPU-computed stencil output"; these functions play that role here.
//! Two references are provided:
//!
//! * [`apply_reference`] — direct evaluation of Eqn (1)/(2) at every
//!   interior point (the forward formulation).
//! * [`apply_reference_inplane_order`] — the same operator evaluated via
//!   the in-plane recurrence of Eqns (3)–(5), i.e. partial sums completed
//!   incrementally over the next `r` planes. Algebraically identical;
//!   floating-point summation order differs, which is exactly the
//!   difference between the two GPU kernel families. Tests pin the
//!   emulated kernels to the matching reference bit-for-bit.

use crate::{boundary::Boundary, Grid3, Real, RegisterPipeline, StarStencil};

/// One Jacobi step: `out = stencil(input)` on the interior, boundary per
/// policy. Direct (forward) evaluation order.
pub fn apply_reference<T: Real>(
    stencil: &StarStencil<T>,
    input: &Grid3<T>,
    out: &mut Grid3<T>,
    boundary: Boundary,
) {
    assert_eq!(input.dims(), out.dims(), "grids must have matching dims");
    let r = stencil.radius();
    let (nx, ny, nz) = input.dims();
    assert!(
        nx > 2 * r && ny > 2 * r && nz > 2 * r,
        "grid too small for radius {r}"
    );
    for k in r..nz - r {
        for j in r..ny - r {
            for i in r..nx - r {
                out.set(i, j, k, stencil.eval(input, i, j, k));
            }
        }
    }
    boundary.apply(input, out, r);
}

/// One Jacobi step evaluated in the *in-plane* accumulation order:
///
/// at plane `z = k` compute the Eqn (3) partial for `(i, j, k)`, then for
/// each `p = 1..=r` fold `c_p * in[i,j,k+p]` into the partial queued for
/// plane `k` (Eqn 5), writing the completed value when the pipeline
/// reaches depth `r`.
pub fn apply_reference_inplane_order<T: Real>(
    stencil: &StarStencil<T>,
    input: &Grid3<T>,
    out: &mut Grid3<T>,
    boundary: Boundary,
) {
    assert_eq!(input.dims(), out.dims(), "grids must have matching dims");
    let r = stencil.radius();
    let (nx, ny, nz) = input.dims();
    assert!(
        nx > 2 * r && ny > 2 * r && nz > 2 * r,
        "grid too small for radius {r}"
    );
    // Pipeline of r pending planes of partial outputs, indexed by how many
    // updates they still need: depth d holds partials for plane (k - d),
    // one lane per interior point.
    let plane_elems = (nx - 2 * r) * (ny - 2 * r);
    let mut queue: RegisterPipeline<T> = RegisterPipeline::new(r + 1, plane_elems);
    let lin = |i: usize, j: usize| (j - r) * (nx - 2 * r) + (i - r);

    for k in r..nz {
        // Step 2-3 of the §III-C procedure: new partials for plane k (if k
        // is an output plane), then update all queued partials with the
        // just-"loaded" plane k.
        if k < nz - r {
            let slot = queue.slot_mut(0);
            for j in r..ny - r {
                for i in r..nx - r {
                    slot[lin(i, j)] = stencil.eval_inplane_partial(input, i, j, k);
                }
            }
        }
        for d in 1..=r {
            // Plane (k - d) needs the c_d * in[.,.,k] term (Eqn 5 with p = d).
            let in_output_range = matches!(k.checked_sub(d), Some(kd) if kd >= r && kd < nz - r);
            if !in_output_range {
                continue;
            }
            let c = stencil.c(d);
            let slot = queue.slot_mut(d);
            for j in r..ny - r {
                for i in r..nx - r {
                    slot[lin(i, j)] += c * input.get(i, j, k);
                }
            }
        }
        // Step 4: plane (k - r) is complete; shift it out to the output.
        if let Some(done_k) = k.checked_sub(r) {
            if done_k >= r && done_k < nz - r {
                let slot = queue.slot(r);
                for j in r..ny - r {
                    for i in r..nx - r {
                        out.set(i, j, done_k, slot[lin(i, j)]);
                    }
                }
            }
        }
        // Step 5: rotate the pipeline (newest partials move to depth 1).
        queue.rotate_back();
    }
    boundary.apply(input, out, r);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{FillPattern, Precision};

    fn random_grid<T: Real>(n: usize, seed: u64) -> Grid3<T> {
        FillPattern::Random {
            lo: -1.0,
            hi: 1.0,
            seed,
        }
        .build(n, n, n)
    }

    #[test]
    fn reference_matches_manual_laplacian() {
        let s: StarStencil<f64> = StarStencil::laplacian7();
        let input = random_grid::<f64>(5, 1);
        let mut out = Grid3::new(5, 5, 5);
        apply_reference(&s, &input, &mut out, Boundary::CopyInput);
        let (i, j, k) = (2, 3, 1);
        let manual = -6.0 * input.get(i, j, k)
            + input.get(i - 1, j, k)
            + input.get(i + 1, j, k)
            + input.get(i, j - 1, k)
            + input.get(i, j + 1, k)
            + input.get(i, j, k - 1)
            + input.get(i, j, k + 1);
        assert!((out.get(i, j, k) - manual).abs() < 1e-14);
    }

    #[test]
    fn boundary_is_copied() {
        let s: StarStencil<f32> = StarStencil::diffusion(2);
        let input = random_grid::<f32>(8, 2);
        let mut out = Grid3::new(8, 8, 8);
        apply_reference(&s, &input, &mut out, Boundary::CopyInput);
        assert_eq!(out.get(0, 0, 0), input.get(0, 0, 0));
        assert_eq!(out.get(1, 4, 4), input.get(1, 4, 4)); // i = 1 < r = 2
        assert_eq!(out.get(7, 7, 7), input.get(7, 7, 7));
    }

    #[test]
    fn inplane_order_equals_forward_order_within_tolerance_all_radii() {
        for r in 1..=4 {
            let s: StarStencil<f64> = StarStencil::diffusion(r);
            let n = 4 * r + 3; // odd, not tile-friendly on purpose
            let input = random_grid::<f64>(n, 3 + r as u64);
            let mut a = Grid3::new(n, n, n);
            let mut b = Grid3::new(n, n, n);
            apply_reference(&s, &input, &mut a, Boundary::CopyInput);
            apply_reference_inplane_order(&s, &input, &mut b, Boundary::CopyInput);
            for ((i, j, k), va) in a.iter_logical() {
                let vb = b.get(i, j, k);
                assert!(
                    (va - vb).abs() < 1e-12,
                    "r={r} mismatch at ({i},{j},{k}): {va} vs {vb}"
                );
            }
        }
    }

    #[test]
    fn inplane_order_differs_bitwise_in_sp_sometimes() {
        // The two summation orders are algebraically equal but may not be
        // bit-identical in f32 — documenting that the distinction is real.
        let s: StarStencil<f32> = StarStencil::diffusion(2);
        let input = random_grid::<f32>(9, 11);
        let mut a = Grid3::new(9, 9, 9);
        let mut b = Grid3::new(9, 9, 9);
        apply_reference(&s, &input, &mut a, Boundary::CopyInput);
        apply_reference_inplane_order(&s, &input, &mut b, Boundary::CopyInput);
        let worst = a
            .iter_logical()
            .map(|((i, j, k), va)| (va - b.get(i, j, k)).abs())
            .fold(0.0f32, f32::max);
        assert!(worst < 1e-5, "orders diverged beyond tolerance: {worst}");
    }

    #[test]
    fn two_applications_diffuse_towards_mean() {
        // The diffusion stencil is an averaging operator: iterating a random
        // field must shrink its interior range.
        let s: StarStencil<f64> = StarStencil::diffusion(1);
        let mut input = random_grid::<f64>(12, 5);
        let mut out = Grid3::new(12, 12, 12);
        let range = |g: &Grid3<f64>| {
            let vals: Vec<f64> = g.iter_interior(3).map(|(i, j, k)| g.get(i, j, k)).collect();
            vals.iter().cloned().fold(f64::MIN, f64::max)
                - vals.iter().cloned().fold(f64::MAX, f64::min)
        };
        let before = range(&input);
        for _ in 0..2 {
            apply_reference(&s, &input, &mut out, Boundary::CopyInput);
            std::mem::swap(&mut input, &mut out);
        }
        assert!(range(&input) < before);
    }

    #[test]
    #[should_panic]
    fn too_small_grid_panics() {
        let s: StarStencil<f32> = StarStencil::diffusion(3);
        let input: Grid3<f32> = Grid3::new(6, 6, 6);
        let mut out = Grid3::new(6, 6, 6);
        apply_reference(&s, &input, &mut out, Boundary::CopyInput);
    }

    #[test]
    fn precision_constants_are_consistent() {
        assert_eq!(f32::PRECISION, Precision::Single);
        assert_eq!(f64::PRECISION, Precision::Double);
    }
}
