//! Deterministic grid initialisation patterns for tests and benchmarks.
//!
//! Everything is seeded: the whole reproduction is a pure function of its
//! inputs, so two runs of any experiment produce identical tables.

use crate::{Grid3, Real};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Named fill pattern for a grid.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum FillPattern {
    /// Every element `v`.
    Constant(f64),
    /// Uniform random values in `[lo, hi)` from the given seed.
    Random {
        /// Inclusive lower bound.
        lo: f64,
        /// Exclusive upper bound.
        hi: f64,
        /// RNG seed (same seed → same grid).
        seed: u64,
    },
    /// `a*i + b*j + c*k` — linear fields are in the null space of the
    /// Laplacian, handy for analytic checks.
    Linear {
        /// Coefficient of `i` (x index).
        a: f64,
        /// Coefficient of `j` (y index).
        b: f64,
        /// Coefficient of `k` (z index).
        c: f64,
    },
    /// A Gaussian pulse centred in the domain with width `sigma`
    /// (fraction of the smallest dimension). The classic heat-diffusion
    /// initial condition.
    GaussianPulse {
        /// Peak value at the centre.
        amplitude: f64,
        /// Width as a fraction of the smallest dimension.
        sigma: f64,
    },
    /// `sin(2π fx i/nx) sin(2π fy j/ny) sin(2π fz k/nz)` — an
    /// eigenfunction-like field for diffusion-decay checks.
    SineProduct {
        /// Periods along x.
        fx: f64,
        /// Periods along y.
        fy: f64,
        /// Periods along z.
        fz: f64,
    },
    /// Deterministic hash noise: cheap, seedless, reproducible; used where
    /// a test wants "arbitrary but fixed" data.
    HashNoise,
}

impl FillPattern {
    /// Fill `grid` in place.
    pub fn fill<T: Real>(self, grid: &mut Grid3<T>) {
        let (nx, ny, nz) = grid.dims();
        match self {
            FillPattern::Constant(v) => grid.fill(T::from_f64(v)),
            FillPattern::Random { lo, hi, seed } => {
                let mut rng = StdRng::seed_from_u64(seed);
                grid.fill_with(|_, _, _| T::from_f64(rng.gen_range(lo..hi)));
            }
            FillPattern::Linear { a, b, c } => {
                grid.fill_with(|i, j, k| T::from_f64(a * i as f64 + b * j as f64 + c * k as f64));
            }
            FillPattern::GaussianPulse { amplitude, sigma } => {
                let (cx, cy, cz) = (
                    (nx - 1) as f64 / 2.0,
                    (ny - 1) as f64 / 2.0,
                    (nz - 1) as f64 / 2.0,
                );
                let w = sigma * nx.min(ny).min(nz) as f64;
                let w2 = 2.0 * w * w;
                grid.fill_with(|i, j, k| {
                    let d2 =
                        (i as f64 - cx).powi(2) + (j as f64 - cy).powi(2) + (k as f64 - cz).powi(2);
                    T::from_f64(amplitude * (-d2 / w2).exp())
                });
            }
            FillPattern::SineProduct { fx, fy, fz } => {
                use std::f64::consts::TAU;
                grid.fill_with(|i, j, k| {
                    T::from_f64(
                        (TAU * fx * i as f64 / nx as f64).sin()
                            * (TAU * fy * j as f64 / ny as f64).sin()
                            * (TAU * fz * k as f64 / nz as f64).sin(),
                    )
                });
            }
            FillPattern::HashNoise => {
                grid.fill_with(|i, j, k| T::from_f64(hash_noise(i, j, k)));
            }
        }
    }

    /// Convenience: build a freshly filled unpadded grid.
    pub fn build<T: Real>(self, nx: usize, ny: usize, nz: usize) -> Grid3<T> {
        let mut g = Grid3::new(nx, ny, nz);
        self.fill(&mut g);
        g
    }
}

/// Deterministic per-point noise in `[-1, 1)` from a splitmix-style hash.
pub fn hash_noise(i: usize, j: usize, k: usize) -> f64 {
    let mut x = (i as u64)
        .wrapping_mul(0x9e37_79b9_7f4a_7c15)
        .wrapping_add((j as u64).wrapping_mul(0xbf58_476d_1ce4_e5b9))
        .wrapping_add((k as u64).wrapping_mul(0x94d0_49bb_1331_11eb))
        .wrapping_add(0x2545_f491_4f6c_dd1d);
    x ^= x >> 30;
    x = x.wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x ^= x >> 27;
    x = x.wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^= x >> 31;
    (x as f64 / u64::MAX as f64) * 2.0 - 1.0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_fill() {
        let g: Grid3<f32> = FillPattern::Constant(2.5).build(3, 3, 3);
        assert!(g.iter_logical().all(|(_, v)| v == 2.5));
    }

    #[test]
    fn random_fill_is_seeded_and_in_range() {
        let a: Grid3<f64> = FillPattern::Random {
            lo: -1.0,
            hi: 1.0,
            seed: 7,
        }
        .build(8, 8, 8);
        let b: Grid3<f64> = FillPattern::Random {
            lo: -1.0,
            hi: 1.0,
            seed: 7,
        }
        .build(8, 8, 8);
        assert_eq!(a, b, "same seed must reproduce the same grid");
        assert!(a.iter_logical().all(|(_, v)| (-1.0..1.0).contains(&v)));
        let c: Grid3<f64> = FillPattern::Random {
            lo: -1.0,
            hi: 1.0,
            seed: 8,
        }
        .build(8, 8, 8);
        assert_ne!(a, c, "different seeds should differ");
    }

    #[test]
    fn linear_fill_values() {
        let g: Grid3<f64> = FillPattern::Linear {
            a: 1.0,
            b: 10.0,
            c: 100.0,
        }
        .build(4, 4, 4);
        assert_eq!(g.get(2, 3, 1), 2.0 + 30.0 + 100.0);
    }

    #[test]
    fn gaussian_peak_is_at_centre() {
        let g: Grid3<f64> = FillPattern::GaussianPulse {
            amplitude: 1.0,
            sigma: 0.2,
        }
        .build(9, 9, 9);
        let centre = g.get(4, 4, 4);
        assert!((centre - 1.0).abs() < 1e-12);
        for ((i, j, k), v) in g.iter_logical() {
            assert!(v <= centre + 1e-15, "({i},{j},{k}) exceeds centre");
            assert!(v >= 0.0);
        }
    }

    #[test]
    fn sine_product_vanishes_on_axes() {
        let g: Grid3<f64> = FillPattern::SineProduct {
            fx: 1.0,
            fy: 1.0,
            fz: 1.0,
        }
        .build(8, 8, 8);
        assert!(g.get(0, 3, 3).abs() < 1e-12);
        assert!(g.get(3, 0, 3).abs() < 1e-12);
    }

    #[test]
    fn hash_noise_is_deterministic_and_bounded() {
        assert_eq!(hash_noise(3, 5, 7), hash_noise(3, 5, 7));
        assert_ne!(hash_noise(3, 5, 7), hash_noise(3, 5, 8));
        for i in 0..20 {
            let v = hash_noise(i, i * 3, i * 7);
            assert!((-1.0..=1.0).contains(&v));
        }
    }

    #[test]
    fn hash_noise_has_both_signs() {
        let vals: Vec<f64> = (0..100).map(|i| hash_noise(i, 0, 0)).collect();
        assert!(vals.iter().any(|&v| v > 0.0));
        assert!(vals.iter().any(|&v| v < 0.0));
    }
}
