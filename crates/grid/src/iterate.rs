//! The iterative stencil loop of the paper's Fig. 1.
//!
//! ```text
//! procedure IterStencilLoop(initial)
//!     in <- initial
//!     for t = 1 until stop criteria do
//!         ComputeKernel(in, out)
//!         Swap(in, out)
//!     end for
//!     return in
//! ```
//!
//! The swap is a pointer swap (here: `std::mem::swap` of the two grids),
//! never a copy — exactly as the paper describes the Jacobi double-buffer.

use crate::{Grid3, Real};

/// Summary of a completed iterative run.
#[derive(Clone, Debug, PartialEq)]
pub struct IterationStats {
    /// Number of kernel invocations performed.
    pub steps: usize,
    /// Grid points updated per step (interior points).
    pub points_per_step: usize,
}

/// Run `steps` Jacobi iterations, calling `kernel(in, out)` each step and
/// swapping the buffers, returning the final `in` grid and stats.
///
/// `kernel` must fully define `out` (interior + boundary policy); the
/// driver does not touch the data other than swapping.
pub fn iterate_stencil_loop<T: Real>(
    initial: Grid3<T>,
    radius: usize,
    steps: usize,
    mut kernel: impl FnMut(&Grid3<T>, &mut Grid3<T>),
) -> (Grid3<T>, IterationStats) {
    let points_per_step = initial.interior_len(radius);
    let mut input = initial;
    let mut out = input.clone();
    for _ in 0..steps {
        kernel(&input, &mut out);
        std::mem::swap(&mut input, &mut out);
    }
    (
        input,
        IterationStats {
            steps,
            points_per_step,
        },
    )
}

/// Run until `stop(step, grid)` returns true (checked *after* each step)
/// or `max_steps` is reached. Returns the grid and the number of steps.
pub fn iterate_until<T: Real>(
    initial: Grid3<T>,
    max_steps: usize,
    mut kernel: impl FnMut(&Grid3<T>, &mut Grid3<T>),
    mut stop: impl FnMut(usize, &Grid3<T>) -> bool,
) -> (Grid3<T>, usize) {
    let mut input = initial;
    let mut out = input.clone();
    for t in 1..=max_steps {
        kernel(&input, &mut out);
        std::mem::swap(&mut input, &mut out);
        if stop(t, &input) {
            return (input, t);
        }
    }
    (input, max_steps)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{apply_reference, Boundary, FillPattern, StarStencil};

    #[test]
    fn zero_steps_returns_initial() {
        let g: Grid3<f32> = FillPattern::Constant(4.0).build(4, 4, 4);
        let (out, stats) = iterate_stencil_loop(g.clone(), 1, 0, |_, _| {
            panic!("kernel must not be called for zero steps")
        });
        assert_eq!(out, g);
        assert_eq!(stats.steps, 0);
        assert_eq!(stats.points_per_step, 2 * 2 * 2);
    }

    #[test]
    fn swap_semantics_one_step() {
        // Kernel writes input + 1 everywhere; after one step the result is
        // the incremented grid (not the original).
        let g: Grid3<f64> = FillPattern::Constant(1.0).build(3, 3, 3);
        let (out, _) = iterate_stencil_loop(g, 1, 1, |inp, out| {
            out.fill_with(|i, j, k| inp.get(i, j, k) + 1.0);
        });
        assert!(out.iter_logical().all(|(_, v)| v == 2.0));
    }

    #[test]
    fn three_steps_compose() {
        let g: Grid3<f64> = FillPattern::Constant(0.0).build(3, 3, 3);
        let (out, stats) = iterate_stencil_loop(g, 1, 3, |inp, out| {
            out.fill_with(|i, j, k| inp.get(i, j, k) + 1.0);
        });
        assert!(out.iter_logical().all(|(_, v)| v == 3.0));
        assert_eq!(stats.steps, 3);
    }

    #[test]
    fn diffusion_conserves_constant_field() {
        let s: StarStencil<f64> = StarStencil::diffusion(1);
        let g: Grid3<f64> = FillPattern::Constant(7.0).build(6, 6, 6);
        let (out, _) = iterate_stencil_loop(g, 1, 5, |inp, out| {
            apply_reference(&s, inp, out, Boundary::CopyInput);
        });
        assert!(out.iter_logical().all(|(_, v)| (v - 7.0).abs() < 1e-12));
    }

    #[test]
    fn iterate_until_stops_at_criterion() {
        let g: Grid3<f64> = FillPattern::Constant(0.0).build(3, 3, 3);
        let (out, steps) = iterate_until(
            g,
            100,
            |inp, out| out.fill_with(|i, j, k| inp.get(i, j, k) + 1.0),
            |_, grid| grid.get(0, 0, 0) >= 5.0,
        );
        assert_eq!(steps, 5);
        assert_eq!(out.get(0, 0, 0), 5.0);
    }

    #[test]
    fn iterate_until_respects_max_steps() {
        let g: Grid3<f64> = FillPattern::Constant(0.0).build(3, 3, 3);
        let (_, steps) = iterate_until(
            g,
            4,
            |inp, out| out.fill_with(|i, j, k| inp.get(i, j, k) + 1.0),
            |_, _| false,
        );
        assert_eq!(steps, 4);
    }
}
