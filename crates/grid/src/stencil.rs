//! The symmetric star stencil of the paper's Eqn (1) and its operation
//! counts (Tables I and II).
//!
//! A stencil of radius `r` (order `2r`) has extent
//! `(2r+1) × (2r+1) × (2r+1)`, uses `6r + 1` points, makes `6r + 2` memory
//! references per element (one write included) and needs `7r + 1` flops
//! with the forward-plane formulation or `8r + 1` with the in-plane
//! formulation (the incremental update of Eqn (5) adds one extra add per
//! pipelined plane).

use crate::real::Real;

/// A radius-`r` symmetric star ("2r-order") stencil with coefficients
/// `c0, c1, ..., cr` applied along all three axes as in Eqn (1).
///
/// ```
/// use stencil_grid::StarStencil;
///
/// let s: StarStencil<f64> = StarStencil::from_order(8);
/// assert_eq!(s.radius(), 4);
/// assert_eq!(s.memory_refs_per_elem(), 26); // Table I
/// assert_eq!(s.flops_forward(), 29);        // 7r + 1
/// assert_eq!(s.flops_inplane(), 33);        // 8r + 1, Table II
/// ```
#[derive(Clone, Debug, PartialEq)]
pub struct StarStencil<T> {
    /// `coeffs[0]` is the centre weight `c0`; `coeffs[m]` is `c_m`.
    coeffs: Vec<T>,
}

impl<T: Real> StarStencil<T> {
    /// Build from explicit coefficients `[c0, c1, ..., cr]`.
    ///
    /// # Panics
    /// Panics if no coefficients are given (radius would be undefined).
    pub fn new(coeffs: Vec<T>) -> Self {
        assert!(
            !coeffs.is_empty(),
            "need at least the centre coefficient c0"
        );
        Self { coeffs }
    }

    /// The canonical test stencil the paper's harness uses: a normalised
    /// diffusion-like operator where the centre holds weight 1/2 and the
    /// remaining 1/2 is split evenly over the `6r` off-centre points, so
    /// iterating is numerically stable (weights sum to 1).
    pub fn diffusion(radius: usize) -> Self {
        assert!(radius >= 1, "diffusion stencil needs radius >= 1");
        let mut coeffs = Vec::with_capacity(radius + 1);
        coeffs.push(T::from_f64(0.5));
        let side = 0.5 / (6.0 * radius as f64);
        for _ in 1..=radius {
            coeffs.push(T::from_f64(side));
        }
        Self { coeffs }
    }

    /// The classic 7-point Laplacian (radius 1): `c0 = -6, c1 = 1`.
    pub fn laplacian7() -> Self {
        Self {
            coeffs: vec![T::from_f64(-6.0), T::ONE],
        }
    }

    /// Stencil radius `r`.
    #[inline]
    pub fn radius(&self) -> usize {
        self.coeffs.len() - 1
    }

    /// Stencil order `2r` (the paper labels kernels by order).
    #[inline]
    pub fn order(&self) -> usize {
        2 * self.radius()
    }

    /// Build the paper's order-`2r` test stencil from an order (2, 4, ... 12
    /// in the evaluation; anything even and positive is accepted).
    ///
    /// # Panics
    /// Panics if `order` is zero or odd.
    pub fn from_order(order: usize) -> Self {
        assert!(
            order >= 2 && order.is_multiple_of(2),
            "stencil order must be even and >= 2"
        );
        Self::diffusion(order / 2)
    }

    /// Centre coefficient `c0`.
    #[inline]
    pub fn c0(&self) -> T {
        self.coeffs[0]
    }

    /// Off-centre coefficient `c_m`, `1 <= m <= r`.
    #[inline]
    pub fn c(&self, m: usize) -> T {
        self.coeffs[m]
    }

    /// All coefficients `[c0 ..= cr]`.
    pub fn coeffs(&self) -> &[T] {
        &self.coeffs
    }

    /// Extent of the computation cell per axis: `2r + 1` (Table I).
    #[inline]
    pub fn extent(&self) -> usize {
        2 * self.radius() + 1
    }

    /// Number of grid points read per output element: `6r + 1`.
    #[inline]
    pub fn points(&self) -> usize {
        6 * self.radius() + 1
    }

    /// Memory references per element including the output write: `6r + 2`
    /// (Table I "Memory Accesses/Elem.", Table II "Data Refs.").
    #[inline]
    pub fn memory_refs_per_elem(&self) -> usize {
        6 * self.radius() + 2
    }

    /// Flops per element for the forward-plane (nvstencil) formulation:
    /// `7r + 1` (Table I / Table II "Flops (nvstencil)").
    #[inline]
    pub fn flops_forward(&self) -> usize {
        7 * self.radius() + 1
    }

    /// Flops per element for the in-plane formulation: `8r + 1`
    /// (Table II "Flops (in-plane)").
    #[inline]
    pub fn flops_inplane(&self) -> usize {
        8 * self.radius() + 1
    }

    /// Evaluate the full stencil (Eqn 1 / Eqn 2) at interior point
    /// `(i, j, k)` of `input`. Summation order matches the emulated kernels
    /// so SP results are bit-identical: centre, then per `m` the six
    /// neighbours in (±x, ±y, ±z) order.
    #[inline]
    pub fn eval(&self, input: &crate::Grid3<T>, i: usize, j: usize, k: usize) -> T {
        let r = self.radius();
        debug_assert!(
            i >= r && j >= r && k >= r,
            "eval called on non-interior point ({i},{j},{k}) for radius {r}"
        );
        let mut acc = self.c0() * input.get(i, j, k);
        for m in 1..=r {
            let dm = m as isize;
            let six = input.get_offset(i, j, k, -dm, 0, 0)
                + input.get_offset(i, j, k, dm, 0, 0)
                + input.get_offset(i, j, k, 0, -dm, 0)
                + input.get_offset(i, j, k, 0, dm, 0)
                + input.get_offset(i, j, k, 0, 0, -dm)
                + input.get_offset(i, j, k, 0, 0, dm);
            acc += self.c(m) * six;
        }
        acc
    }

    /// Evaluate the *partial* in-plane sum of Eqn (3) at `(i, j, k)`:
    /// everything except the forward (`k + m`) z-terms.
    #[inline]
    pub fn eval_inplane_partial(&self, input: &crate::Grid3<T>, i: usize, j: usize, k: usize) -> T {
        let r = self.radius();
        let mut acc = self.c0() * input.get(i, j, k);
        for m in 1..=r {
            let dm = m as isize;
            let five = input.get_offset(i, j, k, -dm, 0, 0)
                + input.get_offset(i, j, k, dm, 0, 0)
                + input.get_offset(i, j, k, 0, -dm, 0)
                + input.get_offset(i, j, k, 0, dm, 0)
                + input.get_offset(i, j, k, 0, 0, -dm);
            acc += self.c(m) * five;
        }
        acc
    }
}

/// Rows of the paper's Table I for the evaluated orders 2..=12.
pub fn table1_rows() -> Vec<(usize, usize, usize, usize)> {
    (1..=6)
        .map(|r| {
            let s: StarStencil<f64> = StarStencil::diffusion(r);
            (
                s.order(),
                s.extent(),
                s.memory_refs_per_elem(),
                s.flops_forward(),
            )
        })
        .collect()
}

/// Rows of the paper's Table II: (order, data refs, flops in-plane, flops nvstencil).
pub fn table2_rows() -> Vec<(usize, usize, usize, usize)> {
    (1..=6)
        .map(|r| {
            let s: StarStencil<f64> = StarStencil::diffusion(r);
            (
                s.order(),
                s.memory_refs_per_elem(),
                s.flops_inplane(),
                s.flops_forward(),
            )
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Grid3;

    #[test]
    fn table1_matches_paper() {
        // Paper Table I: order, extent, mem accesses, flops.
        let expect = [
            (2usize, 3usize, 8usize, 8usize),
            (4, 5, 14, 15),
            (6, 7, 20, 22),
            (8, 9, 26, 29),
            (10, 11, 32, 36),
            (12, 13, 38, 43),
        ];
        assert_eq!(table1_rows(), expect);
    }

    #[test]
    fn table2_matches_paper() {
        // Paper Table II: order, data refs, flops (in-plane), flops (nvstencil).
        let expect = [
            (2usize, 8usize, 9usize, 8usize),
            (4, 14, 17, 15),
            (6, 20, 25, 22),
            (8, 26, 33, 29),
            (10, 32, 41, 36),
            (12, 38, 49, 43),
        ];
        assert_eq!(table2_rows(), expect);
    }

    #[test]
    fn diffusion_weights_sum_to_one() {
        for r in 1..=8 {
            let s: StarStencil<f64> = StarStencil::diffusion(r);
            let sum: f64 = s.c0() + (1..=r).map(|m| s.c(m) * 6.0).sum::<f64>();
            assert!((sum - 1.0).abs() < 1e-12, "r={r} sum={sum}");
        }
    }

    #[test]
    fn from_order_roundtrips() {
        for order in [2usize, 4, 6, 8, 10, 12, 32] {
            let s: StarStencil<f32> = StarStencil::from_order(order);
            assert_eq!(s.order(), order);
            assert_eq!(s.radius(), order / 2);
        }
    }

    #[test]
    #[should_panic]
    fn odd_order_rejected() {
        let _: StarStencil<f32> = StarStencil::from_order(3);
    }

    #[test]
    fn eval_constant_field_is_weight_sum_times_value() {
        let s: StarStencil<f64> = StarStencil::diffusion(2);
        let mut g = Grid3::new(7, 7, 7);
        g.fill(3.0);
        let v = s.eval(&g, 3, 3, 3);
        assert!((v - 3.0).abs() < 1e-12); // weights sum to 1
    }

    #[test]
    fn laplacian_of_linear_field_is_zero() {
        let s: StarStencil<f64> = StarStencil::laplacian7();
        let mut g = Grid3::new(5, 5, 5);
        g.fill_with(|i, j, k| i as f64 + 2.0 * j as f64 - k as f64);
        for (i, j, k) in [(1, 1, 1), (2, 2, 2), (3, 3, 3), (1, 3, 2)] {
            assert!(s.eval(&g, i, j, k).abs() < 1e-12);
        }
    }

    #[test]
    fn laplacian_of_quadratic_is_constant() {
        // f = x^2 → discrete Laplacian = 2 everywhere (1D second difference).
        let s: StarStencil<f64> = StarStencil::laplacian7();
        let mut g = Grid3::new(6, 6, 6);
        g.fill_with(|i, _, _| (i * i) as f64);
        for (i, j, k) in [(1, 1, 1), (2, 3, 4), (4, 2, 2)] {
            assert!((s.eval(&g, i, j, k) - 2.0).abs() < 1e-12);
        }
    }

    #[test]
    fn inplane_partial_plus_forward_terms_equals_full() {
        // Eqn (4): full = partial + sum_m c_m * in[i,j,k+m].
        let s: StarStencil<f64> = StarStencil::diffusion(3);
        let mut g = Grid3::new(9, 9, 9);
        g.fill_with(|i, j, k| ((i * 7 + j * 13 + k * 29) % 17) as f64 * 0.25);
        let (i, j, k) = (4, 4, 4);
        let partial = s.eval_inplane_partial(&g, i, j, k);
        let forward: f64 = (1..=3).map(|m| s.c(m) * g.get(i, j, k + m)).sum();
        let full = s.eval(&g, i, j, k);
        assert!((partial + forward - full).abs() < 1e-12);
    }

    #[test]
    fn eval_uses_all_six_arms() {
        let s: StarStencil<f64> = StarStencil::new(vec![0.0, 1.0]);
        let mut g = Grid3::new(3, 3, 3);
        // Only the +x neighbour set; result must be exactly that value.
        g.set(2, 1, 1, 5.0);
        assert_eq!(s.eval(&g, 1, 1, 1), 5.0);
        g.set(2, 1, 1, 0.0);
        g.set(1, 0, 1, 7.0);
        assert_eq!(s.eval(&g, 1, 1, 1), 7.0);
    }
}
