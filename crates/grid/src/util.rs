//! Grid utilities a downstream simulation user expects: reductions,
//! norms, sub-grid extraction, and a simple self-describing binary
//! format for checkpointing results (no external serialisation crate —
//! the format is 32 bytes of header plus little-endian payload).

use crate::{Grid3, Precision, Real};
use std::io::{self, Read as IoRead, Write as IoWrite};

/// Summary statistics over the logical domain.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct GridStats {
    /// Minimum value.
    pub min: f64,
    /// Maximum value.
    pub max: f64,
    /// Mean value.
    pub mean: f64,
    /// L2 norm (`sqrt(Σ v²)`).
    pub l2: f64,
    /// L∞ norm (`max |v|`).
    pub linf: f64,
}

/// Compute [`GridStats`] in one pass.
pub fn stats<T: Real>(g: &Grid3<T>) -> GridStats {
    let mut min = f64::INFINITY;
    let mut max = f64::NEG_INFINITY;
    let mut sum = 0.0f64;
    let mut sum_sq = 0.0f64;
    let mut linf = 0.0f64;
    for (_, v) in g.iter_logical() {
        let x = v.to_f64();
        min = min.min(x);
        max = max.max(x);
        sum += x;
        sum_sq += x * x;
        linf = linf.max(x.abs());
    }
    GridStats {
        min,
        max,
        mean: sum / g.len() as f64,
        l2: sum_sq.sqrt(),
        linf,
    }
}

/// Extract the sub-grid `[x0, x0+w) × [y0, y0+h) × [z0, z0+d)`.
///
/// # Panics
/// Panics if the window exceeds the grid.
pub fn subgrid<T: Real>(
    g: &Grid3<T>,
    (x0, y0, z0): (usize, usize, usize),
    (w, h, d): (usize, usize, usize),
) -> Grid3<T> {
    let (nx, ny, nz) = g.dims();
    assert!(
        x0 + w <= nx && y0 + h <= ny && z0 + d <= nz,
        "window exceeds grid"
    );
    let mut out = Grid3::new(w, h, d);
    out.fill_with(|i, j, k| g.get(x0 + i, y0 + j, z0 + k));
    out
}

/// Total of all logical elements (in `f64` to avoid overflow concerns).
pub fn total<T: Real>(g: &Grid3<T>) -> f64 {
    g.iter_logical().map(|(_, v)| v.to_f64()).sum()
}

const MAGIC: &[u8; 8] = b"ISLGRID1";

/// Write the grid to `w` in the library's binary format: an 8-byte
/// magic, element width, dims, then the logical elements little-endian
/// in (k, j, i) order (padding is not persisted).
pub fn write_grid<T: Real>(g: &Grid3<T>, w: &mut impl IoWrite) -> io::Result<()> {
    w.write_all(MAGIC)?;
    let (nx, ny, nz) = g.dims();
    for v in [T::PRECISION.bytes() as u64, nx as u64, ny as u64, nz as u64] {
        w.write_all(&v.to_le_bytes())?;
    }
    for (_, v) in g.iter_logical() {
        match T::PRECISION {
            Precision::Single => w.write_all(&(v.to_f64() as f32).to_le_bytes())?,
            Precision::Double => w.write_all(&v.to_f64().to_le_bytes())?,
        }
    }
    Ok(())
}

/// Read a grid written by [`write_grid`]. The element width in the file
/// must match `T`.
pub fn read_grid<T: Real>(r: &mut impl IoRead) -> io::Result<Grid3<T>> {
    let mut magic = [0u8; 8];
    r.read_exact(&mut magic)?;
    if &magic != MAGIC {
        return Err(io::Error::new(io::ErrorKind::InvalidData, "bad magic"));
    }
    let mut word = [0u8; 8];
    let mut next = || -> io::Result<u64> {
        r.read_exact(&mut word)?;
        Ok(u64::from_le_bytes(word))
    };
    let elem = next()?;
    let (nx, ny, nz) = (next()? as usize, next()? as usize, next()? as usize);
    if elem != T::PRECISION.bytes() as u64 {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!(
                "file holds {elem}-byte elements, expected {}",
                T::PRECISION.bytes()
            ),
        ));
    }
    if nx == 0 || ny == 0 || nz == 0 || nx.saturating_mul(ny).saturating_mul(nz) > (1 << 34) {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "implausible dimensions",
        ));
    }
    let mut g = Grid3::new(nx, ny, nz);
    for k in 0..nz {
        for j in 0..ny {
            for i in 0..nx {
                let v = match T::PRECISION {
                    Precision::Single => {
                        let mut b = [0u8; 4];
                        r.read_exact(&mut b)?;
                        f32::from_le_bytes(b) as f64
                    }
                    Precision::Double => {
                        let mut b = [0u8; 8];
                        r.read_exact(&mut b)?;
                        f64::from_le_bytes(b)
                    }
                };
                g.set(i, j, k, T::from_f64(v));
            }
        }
    }
    Ok(g)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::FillPattern;

    #[test]
    fn stats_of_constant_grid() {
        let g: Grid3<f64> = FillPattern::Constant(3.0).build(4, 4, 4);
        let s = stats(&g);
        assert_eq!(s.min, 3.0);
        assert_eq!(s.max, 3.0);
        assert!((s.mean - 3.0).abs() < 1e-12);
        assert!((s.l2 - (64.0f64 * 9.0).sqrt()).abs() < 1e-9);
        assert_eq!(s.linf, 3.0);
    }

    #[test]
    fn stats_track_extremes() {
        let mut g: Grid3<f32> = FillPattern::Constant(0.0).build(3, 3, 3);
        g.set(1, 1, 1, -5.0);
        g.set(2, 2, 2, 2.0);
        let s = stats(&g);
        assert_eq!(s.min, -5.0);
        assert_eq!(s.max, 2.0);
        assert_eq!(s.linf, 5.0);
    }

    #[test]
    fn subgrid_extracts_window() {
        let mut g: Grid3<f64> = Grid3::new(6, 6, 6);
        g.fill_with(|i, j, k| (i + 10 * j + 100 * k) as f64);
        let s = subgrid(&g, (1, 2, 3), (3, 2, 2));
        assert_eq!(s.dims(), (3, 2, 2));
        assert_eq!(s.get(0, 0, 0), g.get(1, 2, 3));
        assert_eq!(s.get(2, 1, 1), g.get(3, 3, 4));
    }

    #[test]
    #[should_panic(expected = "window exceeds")]
    fn oversized_window_panics() {
        let g: Grid3<f32> = Grid3::new(4, 4, 4);
        subgrid(&g, (2, 0, 0), (3, 1, 1));
    }

    #[test]
    fn binary_roundtrip_sp_and_dp() {
        let g32: Grid3<f32> = FillPattern::HashNoise.build(5, 4, 3);
        let mut buf = Vec::new();
        write_grid(&g32, &mut buf).unwrap();
        let back: Grid3<f32> = read_grid(&mut buf.as_slice()).unwrap();
        assert_eq!(g32, back);

        let g64: Grid3<f64> = FillPattern::HashNoise.build(3, 3, 3);
        let mut buf = Vec::new();
        write_grid(&g64, &mut buf).unwrap();
        let back: Grid3<f64> = read_grid(&mut buf.as_slice()).unwrap();
        assert_eq!(g64, back);
    }

    #[test]
    fn roundtrip_strips_padding() {
        let mut g: Grid3<f32> = Grid3::new_aligned(5, 3, 2, 32);
        FillPattern::HashNoise.fill(&mut g);
        let mut buf = Vec::new();
        write_grid(&g, &mut buf).unwrap();
        // Header 40 bytes + 30 elements x 4 bytes.
        assert_eq!(buf.len(), 40 + 30 * 4);
        let back: Grid3<f32> = read_grid(&mut buf.as_slice()).unwrap();
        for ((i, j, k), v) in g.iter_logical() {
            assert_eq!(back.get(i, j, k), v);
        }
    }

    #[test]
    fn wrong_precision_is_rejected() {
        let g: Grid3<f32> = FillPattern::Constant(1.0).build(2, 2, 2);
        let mut buf = Vec::new();
        write_grid(&g, &mut buf).unwrap();
        let err = read_grid::<f64>(&mut buf.as_slice()).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn bad_magic_is_rejected() {
        let buf = vec![0u8; 64];
        let err = read_grid::<f32>(&mut buf.as_slice()).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn truncated_file_is_an_error() {
        let g: Grid3<f32> = FillPattern::Constant(1.0).build(4, 4, 4);
        let mut buf = Vec::new();
        write_grid(&g, &mut buf).unwrap();
        buf.truncate(buf.len() - 10);
        assert!(read_grid::<f32>(&mut buf.as_slice()).is_err());
    }

    #[test]
    fn total_sums_logical_elements() {
        let g: Grid3<f64> = FillPattern::Constant(0.5).build(4, 4, 4);
        assert!((total(&g) - 32.0).abs() < 1e-12);
    }
}
