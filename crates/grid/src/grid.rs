//! Padded, aligned 3-D grid storage.
//!
//! The grid mirrors the memory layout a tuned CUDA stencil uses on the
//! device: a contiguous allocation in z-major / row-minor order where each
//! x-row may be padded so rows start on a vector-load boundary. §III-C2 of
//! the paper makes alignment a precondition for 2- and 4-wide vector
//! loads; the `row_stride` here is what the simulator's coalescing model
//! inspects to decide whether a row begins on a 128-byte segment boundary.
//!
//! Element `(i, j, k)` (x, y, z) lives at linear index
//! `base + k * plane_stride + j * row_stride + i`.

use crate::real::Real;

/// A 3-D grid of `nx × ny × nz` elements with optional x-row padding.
///
/// ```
/// use stencil_grid::Grid3;
///
/// // Rows padded to 32 elements so each row starts on a 128-byte
/// // boundary (SP) — the array-padding optimisation of the paper.
/// let mut g: Grid3<f32> = Grid3::new_aligned(100, 64, 64, 32);
/// assert_eq!(g.row_stride(), 128);
/// g.set(99, 63, 63, 1.5);
/// assert_eq!(g.get(99, 63, 63), 1.5);
/// ```
#[derive(Clone, Debug, PartialEq)]
pub struct Grid3<T> {
    nx: usize,
    ny: usize,
    nz: usize,
    row_stride: usize,
    data: Vec<T>,
}

impl<T: Real> Grid3<T> {
    /// Create a zero-filled grid with rows padded so each row starts at a
    /// multiple of `align_elems` elements (1 = unpadded).
    ///
    /// # Panics
    /// Panics if any dimension is zero or `align_elems` is zero.
    pub fn new_aligned(nx: usize, ny: usize, nz: usize, align_elems: usize) -> Self {
        assert!(
            nx > 0 && ny > 0 && nz > 0,
            "grid dimensions must be non-zero"
        );
        assert!(align_elems > 0, "alignment must be non-zero");
        let row_stride = nx.div_ceil(align_elems) * align_elems;
        let data = vec![T::ZERO; row_stride * ny * nz];
        Self {
            nx,
            ny,
            nz,
            row_stride,
            data,
        }
    }

    /// Create a zero-filled unpadded grid.
    pub fn new(nx: usize, ny: usize, nz: usize) -> Self {
        Self::new_aligned(nx, ny, nz, 1)
    }

    /// Logical x extent.
    #[inline]
    pub fn nx(&self) -> usize {
        self.nx
    }
    /// Logical y extent.
    #[inline]
    pub fn ny(&self) -> usize {
        self.ny
    }
    /// Logical z extent.
    #[inline]
    pub fn nz(&self) -> usize {
        self.nz
    }
    /// Number of logical (unpadded) elements.
    #[inline]
    pub fn len(&self) -> usize {
        self.nx * self.ny * self.nz
    }
    /// True when the grid holds no logical elements (never, by construction).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
    /// Padded distance between consecutive rows, in elements.
    #[inline]
    pub fn row_stride(&self) -> usize {
        self.row_stride
    }
    /// Padded distance between consecutive z-planes, in elements.
    #[inline]
    pub fn plane_stride(&self) -> usize {
        self.row_stride * self.ny
    }
    /// `(nx, ny, nz)`.
    #[inline]
    pub fn dims(&self) -> (usize, usize, usize) {
        (self.nx, self.ny, self.nz)
    }

    /// Linear index of `(i, j, k)` into the padded backing store.
    #[inline]
    pub fn index(&self, i: usize, j: usize, k: usize) -> usize {
        debug_assert!(i < self.nx && j < self.ny && k < self.nz);
        k * self.plane_stride() + j * self.row_stride + i
    }

    /// Read element `(i, j, k)`.
    #[inline]
    pub fn get(&self, i: usize, j: usize, k: usize) -> T {
        self.data[self.index(i, j, k)]
    }

    /// Write element `(i, j, k)`.
    #[inline]
    pub fn set(&mut self, i: usize, j: usize, k: usize, v: T) {
        let idx = self.index(i, j, k);
        self.data[idx] = v;
    }

    /// Read with signed offsets, as stencil kernels address neighbours.
    ///
    /// # Panics
    /// Debug-panics if the offset lands outside the grid; release builds
    /// panic via the slice bound check (padding is never silently read).
    #[inline]
    pub fn get_offset(&self, i: usize, j: usize, k: usize, di: isize, dj: isize, dk: isize) -> T {
        let ii = i.checked_add_signed(di).expect("x offset underflow");
        let jj = j.checked_add_signed(dj).expect("y offset underflow");
        let kk = k.checked_add_signed(dk).expect("z offset underflow");
        self.get(ii, jj, kk)
    }

    /// Raw backing store (includes padding lanes).
    pub fn raw(&self) -> &[T] {
        &self.data
    }

    /// Mutable raw backing store.
    pub fn raw_mut(&mut self) -> &mut [T] {
        &mut self.data
    }

    /// One x-row as a slice.
    #[inline]
    pub fn row(&self, j: usize, k: usize) -> &[T] {
        let start = self.index(0, j, k);
        &self.data[start..start + self.nx]
    }

    /// One x-row as a mutable slice.
    #[inline]
    pub fn row_mut(&mut self, j: usize, k: usize) -> &mut [T] {
        let start = self.index(0, j, k);
        &mut self.data[start..start + self.nx]
    }

    /// Fill every logical element from `f(i, j, k)`.
    pub fn fill_with(&mut self, mut f: impl FnMut(usize, usize, usize) -> T) {
        for k in 0..self.nz {
            for j in 0..self.ny {
                for i in 0..self.nx {
                    let idx = self.index(i, j, k);
                    self.data[idx] = f(i, j, k);
                }
            }
        }
    }

    /// Set every logical element to `v` (padding untouched).
    pub fn fill(&mut self, v: T) {
        self.fill_with(|_, _, _| v);
    }

    /// Copy the logical contents of `src` (dims must match; strides may differ).
    pub fn copy_from(&mut self, src: &Grid3<T>) {
        assert_eq!(self.dims(), src.dims(), "grid dims must match");
        for k in 0..self.nz {
            for j in 0..self.ny {
                let start = self.index(0, j, k);
                self.data[start..start + self.nx].copy_from_slice(src.row(j, k));
            }
        }
    }

    /// Iterate logical elements in (k, j, i) order, yielding `((i, j, k), v)`.
    pub fn iter_logical(&self) -> impl Iterator<Item = ((usize, usize, usize), T)> + '_ {
        (0..self.nz).flat_map(move |k| {
            (0..self.ny)
                .flat_map(move |j| (0..self.nx).map(move |i| ((i, j, k), self.get(i, j, k))))
        })
    }

    /// Iterate interior points only (ring of width `r` excluded).
    pub fn iter_interior(&self, r: usize) -> impl Iterator<Item = (usize, usize, usize)> + '_ {
        let (nx, ny, nz) = self.dims();
        (r..nz.saturating_sub(r)).flat_map(move |k| {
            (r..ny.saturating_sub(r))
                .flat_map(move |j| (r..nx.saturating_sub(r)).map(move |i| (i, j, k)))
        })
    }

    /// Number of interior points for radius `r`.
    pub fn interior_len(&self, r: usize) -> usize {
        let d = |n: usize| n.saturating_sub(2 * r);
        d(self.nx) * d(self.ny) * d(self.nz)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_grid_is_zeroed() {
        let g: Grid3<f32> = Grid3::new(4, 3, 2);
        assert_eq!(g.dims(), (4, 3, 2));
        assert_eq!(g.len(), 24);
        assert!(g.iter_logical().all(|(_, v)| v == 0.0));
    }

    #[test]
    fn alignment_pads_row_stride() {
        let g: Grid3<f32> = Grid3::new_aligned(5, 2, 2, 4);
        assert_eq!(g.row_stride(), 8);
        assert_eq!(g.plane_stride(), 16);
        assert_eq!(g.raw().len(), 32);
    }

    #[test]
    fn alignment_of_one_is_unpadded() {
        let g: Grid3<f64> = Grid3::new_aligned(7, 3, 3, 1);
        assert_eq!(g.row_stride(), 7);
    }

    #[test]
    fn exact_multiple_needs_no_padding() {
        let g: Grid3<f32> = Grid3::new_aligned(8, 2, 2, 4);
        assert_eq!(g.row_stride(), 8);
    }

    #[test]
    fn set_get_roundtrip() {
        let mut g: Grid3<f64> = Grid3::new(3, 3, 3);
        g.set(1, 2, 0, 42.0);
        assert_eq!(g.get(1, 2, 0), 42.0);
        assert_eq!(g.get(0, 0, 0), 0.0);
    }

    #[test]
    fn index_is_z_major_row_minor() {
        let g: Grid3<f32> = Grid3::new(4, 3, 2);
        assert_eq!(g.index(0, 0, 0), 0);
        assert_eq!(g.index(1, 0, 0), 1);
        assert_eq!(g.index(0, 1, 0), 4);
        assert_eq!(g.index(0, 0, 1), 12);
        assert_eq!(g.index(3, 2, 1), 12 + 8 + 3);
    }

    #[test]
    fn padded_index_skips_padding() {
        let g: Grid3<f32> = Grid3::new_aligned(5, 2, 2, 4);
        assert_eq!(g.index(0, 1, 0), 8);
        assert_eq!(g.index(0, 0, 1), 16);
    }

    #[test]
    fn get_offset_reads_neighbours() {
        let mut g: Grid3<f32> = Grid3::new(5, 5, 5);
        g.fill_with(|i, j, k| (i + 10 * j + 100 * k) as f32);
        assert_eq!(g.get_offset(2, 2, 2, -1, 0, 0), g.get(1, 2, 2));
        assert_eq!(g.get_offset(2, 2, 2, 0, 2, 0), g.get(2, 4, 2));
        assert_eq!(g.get_offset(2, 2, 2, 0, 0, -2), g.get(2, 2, 0));
    }

    #[test]
    #[should_panic]
    fn get_offset_underflow_panics() {
        let g: Grid3<f32> = Grid3::new(3, 3, 3);
        let _ = g.get_offset(0, 0, 0, -1, 0, 0);
    }

    #[test]
    fn fill_with_visits_every_logical_element() {
        let mut g: Grid3<f64> = Grid3::new_aligned(3, 2, 2, 8);
        g.fill_with(|i, j, k| (i + 10 * j + 100 * k) as f64);
        assert_eq!(g.get(2, 1, 1), 112.0);
        // Padding lanes remain zero.
        assert_eq!(g.raw()[3], 0.0);
    }

    #[test]
    fn copy_from_across_strides() {
        let mut a: Grid3<f32> = Grid3::new(5, 3, 2);
        a.fill_with(|i, j, k| (i + j + k) as f32);
        let mut b: Grid3<f32> = Grid3::new_aligned(5, 3, 2, 16);
        b.copy_from(&a);
        for ((i, j, k), v) in a.iter_logical() {
            assert_eq!(b.get(i, j, k), v);
        }
    }

    #[test]
    fn rows_are_contiguous_slices() {
        let mut g: Grid3<f32> = Grid3::new_aligned(4, 2, 2, 8);
        g.fill_with(|i, j, k| (i + 10 * j + 100 * k) as f32);
        assert_eq!(g.row(1, 1), &[110.0, 111.0, 112.0, 113.0]);
        g.row_mut(0, 0)[2] = -1.0;
        assert_eq!(g.get(2, 0, 0), -1.0);
    }

    #[test]
    fn interior_iteration_counts() {
        let g: Grid3<f32> = Grid3::new(8, 8, 8);
        assert_eq!(g.iter_interior(1).count(), 6 * 6 * 6);
        assert_eq!(g.interior_len(1), 216);
        assert_eq!(g.iter_interior(2).count(), g.interior_len(2));
        // Radius too large for the grid: empty interior.
        assert_eq!(g.interior_len(4), 0);
        assert_eq!(g.iter_interior(4).count(), 0);
    }

    #[test]
    fn iter_logical_order_matches_memory_order_when_unpadded() {
        let mut g: Grid3<f32> = Grid3::new(2, 2, 2);
        g.fill_with(|i, j, k| (i + 2 * j + 4 * k) as f32);
        let collected: Vec<f32> = g.iter_logical().map(|(_, v)| v).collect();
        assert_eq!(collected, (0..8).map(|v| v as f32).collect::<Vec<_>>());
    }
}
