//! The per-thread register pipeline shared by every in-plane execution
//! path.
//!
//! Both kernel families keep a small rotating window of per-point values
//! in registers as the block marches down z:
//!
//! * the forward-plane method's `2r + 1` z-values (§III-B), shifted
//!   towards lower depth as the sweep advances (`advance`);
//! * the in-plane method's `r + 1` queued partial outputs and `r`
//!   trailing z-values (§III-C, Eqns (3)–(5)), the queue rotated the
//!   other way so the newest partial lands at depth 1 (`rotate_back`).
//!
//! Before this type existed the bookkeeping was open-coded four times
//! (CPU in-plane reference, application in-plane executor, and both
//! emulated GPU executors); [`RegisterPipeline`] is the single
//! implementation all of them now share, and the static analyzer's
//! pipeline-depth proof (`LNT-S004`) asserts against the same depths.

use crate::Real;

/// A rotating register window: `depth` slots, each holding one value per
/// *lane* (a lane is a thread-owned grid point, or a whole plane's worth
/// of points for the CPU references).
#[derive(Clone, Debug)]
pub struct RegisterPipeline<T> {
    depth: usize,
    lanes: usize,
    /// `slots[d]` is the lane vector at pipeline depth `d`.
    slots: Vec<Vec<T>>,
}

impl<T: Real> RegisterPipeline<T> {
    /// A zero-initialised pipeline of `depth` slots × `lanes` values.
    pub fn new(depth: usize, lanes: usize) -> Self {
        RegisterPipeline {
            depth,
            lanes,
            slots: vec![vec![T::ZERO; lanes]; depth],
        }
    }

    /// Number of slots (words per lane the pipeline occupies).
    pub fn depth(&self) -> usize {
        self.depth
    }

    /// Number of lanes.
    pub fn lanes(&self) -> usize {
        self.lanes
    }

    /// The lane vector at depth `d`.
    pub fn slot(&self, d: usize) -> &[T] {
        &self.slots[d]
    }

    /// Mutable lane vector at depth `d`.
    pub fn slot_mut(&mut self, d: usize) -> &mut [T] {
        &mut self.slots[d]
    }

    /// Read one value.
    pub fn get(&self, d: usize, lane: usize) -> T {
        self.slots[d][lane]
    }

    /// Write one value.
    pub fn set(&mut self, d: usize, lane: usize, v: T) {
        self.slots[d][lane] = v;
    }

    /// Shift towards lower depth (`slot d ← slot d + 1`); the old slot 0
    /// wraps to the top, where the caller overwrites it with the newly
    /// fetched plane. This is the forward-plane / z-history direction.
    pub fn advance(&mut self) {
        self.slots.rotate_left(1);
    }

    /// Rotate towards higher depth (`slot d + 1 ← slot d`); the old top
    /// slot wraps to 0, where the caller deposits the next partial. This
    /// is the in-plane output-queue direction (the Eqn-(5) shift).
    pub fn rotate_back(&mut self) {
        self.slots.rotate_right(1);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn advance_shifts_towards_lower_depth() {
        let mut p: RegisterPipeline<f64> = RegisterPipeline::new(3, 2);
        for d in 0..3 {
            p.set(d, 0, d as f64);
        }
        p.advance();
        assert_eq!(p.get(0, 0), 1.0);
        assert_eq!(p.get(1, 0), 2.0);
        // Old slot 0 wrapped to the top; caller overwrites it.
        assert_eq!(p.get(2, 0), 0.0);
        p.set(2, 0, 9.0);
        assert_eq!(p.slot(2), &[9.0, 0.0]);
    }

    #[test]
    fn rotate_back_shifts_towards_higher_depth() {
        let mut p: RegisterPipeline<f32> = RegisterPipeline::new(3, 1);
        for d in 0..3 {
            p.set(d, 0, (d + 1) as f32);
        }
        p.rotate_back();
        assert_eq!(p.get(1, 0), 1.0);
        assert_eq!(p.get(2, 0), 2.0);
        assert_eq!(p.get(0, 0), 3.0);
    }

    #[test]
    fn dimensions_are_reported() {
        let p: RegisterPipeline<f32> = RegisterPipeline::new(5, 7);
        assert_eq!(p.depth(), 5);
        assert_eq!(p.lanes(), 7);
        assert_eq!(p.slot(4).len(), 7);
    }
}
