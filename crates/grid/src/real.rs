//! Scalar abstraction over the two precisions the paper evaluates.
//!
//! The paper benchmarks every kernel in single precision (SP, `f32`) and
//! double precision (DP, `f64`); the GPU simulator needs to know the
//! element width (4 vs 8 bytes) for traffic accounting, and the compute
//! model needs the device's SP/DP throughput ratio. `Real` is the minimal
//! closed set of operations the kernels require, so everything downstream
//! is generic over precision without pulling in an external numerics crate.

use std::fmt::{Debug, Display};
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Neg, Sub, SubAssign};

/// Element precision, as the paper's "SP" / "DP" rows.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Precision {
    /// 4-byte IEEE-754 single precision.
    Single,
    /// 8-byte IEEE-754 double precision.
    Double,
}

impl Precision {
    /// Bytes per element: 4 for SP, 8 for DP.
    #[inline]
    pub const fn bytes(self) -> usize {
        match self {
            Precision::Single => 4,
            Precision::Double => 8,
        }
    }

    /// The label used in the paper's tables.
    pub const fn label(self) -> &'static str {
        match self {
            Precision::Single => "SP",
            Precision::Double => "DP",
        }
    }

    /// Widest hardware vector load for this precision, in elements.
    ///
    /// CUDA supports 16-byte vector loads (`float4` / `double2`), so SP can
    /// load 4 elements per instruction and DP can load 2 (§III-C2).
    #[inline]
    pub const fn max_vector_width(self) -> usize {
        match self {
            Precision::Single => 4,
            Precision::Double => 2,
        }
    }
}

impl Display for Precision {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// Floating-point scalar usable as a grid element.
pub trait Real:
    Copy
    + Clone
    + Debug
    + Display
    + Default
    + PartialOrd
    + Add<Output = Self>
    + Sub<Output = Self>
    + Mul<Output = Self>
    + Div<Output = Self>
    + Neg<Output = Self>
    + AddAssign
    + SubAssign
    + Sum
    + Send
    + Sync
    + 'static
{
    /// The precision tag for this scalar type.
    const PRECISION: Precision;

    /// Additive identity.
    const ZERO: Self;
    /// Multiplicative identity.
    const ONE: Self;

    /// Lossy conversion from `f64` (exact for `f64`, rounded for `f32`).
    fn from_f64(v: f64) -> Self;
    /// Widening conversion to `f64` (exact for both precisions).
    fn to_f64(self) -> f64;
    /// Absolute value.
    fn abs(self) -> Self;
    /// `self * a + b`, evaluated as separate multiply and add so that the
    /// reference and the emulated kernels share one rounding behaviour.
    #[inline]
    fn mul_add_sep(self, a: Self, b: Self) -> Self {
        self * a + b
    }
    /// Machine epsilon for this precision.
    fn epsilon() -> Self;
    /// True if the value is finite (not NaN / infinity).
    fn is_finite(self) -> bool;
}

impl Real for f32 {
    const PRECISION: Precision = Precision::Single;
    const ZERO: Self = 0.0;
    const ONE: Self = 1.0;

    #[inline]
    fn from_f64(v: f64) -> Self {
        v as f32
    }
    #[inline]
    fn to_f64(self) -> f64 {
        self as f64
    }
    #[inline]
    fn abs(self) -> Self {
        f32::abs(self)
    }
    #[inline]
    fn epsilon() -> Self {
        f32::EPSILON
    }
    #[inline]
    fn is_finite(self) -> bool {
        f32::is_finite(self)
    }
}

impl Real for f64 {
    const PRECISION: Precision = Precision::Double;
    const ZERO: Self = 0.0;
    const ONE: Self = 1.0;

    #[inline]
    fn from_f64(v: f64) -> Self {
        v
    }
    #[inline]
    fn to_f64(self) -> f64 {
        self
    }
    #[inline]
    fn abs(self) -> Self {
        f64::abs(self)
    }
    #[inline]
    fn epsilon() -> Self {
        f64::EPSILON
    }
    #[inline]
    fn is_finite(self) -> bool {
        f64::is_finite(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn precision_bytes() {
        assert_eq!(Precision::Single.bytes(), 4);
        assert_eq!(Precision::Double.bytes(), 8);
    }

    #[test]
    fn precision_vector_width_is_16_bytes() {
        for p in [Precision::Single, Precision::Double] {
            assert_eq!(p.max_vector_width() * p.bytes(), 16);
        }
    }

    #[test]
    fn precision_labels() {
        assert_eq!(Precision::Single.label(), "SP");
        assert_eq!(Precision::Double.label(), "DP");
        assert_eq!(format!("{}", Precision::Double), "DP");
    }

    #[test]
    fn real_roundtrip_f32() {
        let x = f32::from_f64(0.25);
        assert_eq!(x, 0.25f32);
        assert_eq!(x.to_f64(), 0.25f64);
        assert_eq!(f32::PRECISION, Precision::Single);
    }

    #[test]
    fn real_roundtrip_f64() {
        let x = f64::from_f64(0.1);
        assert_eq!(x, 0.1f64);
        assert_eq!(f64::PRECISION, Precision::Double);
    }

    #[test]
    fn abs_and_finite() {
        assert_eq!((-2.0f32).abs(), 2.0);
        assert!(1.0f64.is_finite());
        assert!(!(f64::INFINITY).is_finite());
        assert!(!(f32::NAN).is_finite());
    }

    #[test]
    fn mul_add_sep_matches_separate_ops() {
        let (a, b, c) = (1.3f32, 2.7f32, -0.4f32);
        assert_eq!(a.mul_add_sep(b, c), a * b + c);
    }
}
