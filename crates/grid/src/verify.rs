//! Verification utilities — comparing emulated kernel output against the
//! CPU golden model, as the paper's harness does for every variant.

use crate::{Grid3, Real};

/// Largest absolute element-wise difference over the logical domain.
pub fn max_abs_diff<T: Real>(a: &Grid3<T>, b: &Grid3<T>) -> f64 {
    assert_eq!(a.dims(), b.dims(), "grids must have matching dims");
    let mut worst = 0.0f64;
    for ((i, j, k), va) in a.iter_logical() {
        let d = (va.to_f64() - b.get(i, j, k).to_f64()).abs();
        if d > worst {
            worst = d;
        }
    }
    worst
}

/// Largest relative difference `|a-b| / max(|a|, |b|, 1)`.
pub fn max_rel_diff<T: Real>(a: &Grid3<T>, b: &Grid3<T>) -> f64 {
    assert_eq!(a.dims(), b.dims(), "grids must have matching dims");
    let mut worst = 0.0f64;
    for ((i, j, k), va) in a.iter_logical() {
        let x = va.to_f64();
        let y = b.get(i, j, k).to_f64();
        let denom = x.abs().max(y.abs()).max(1.0);
        let d = (x - y).abs() / denom;
        if d > worst {
            worst = d;
        }
    }
    worst
}

/// Outcome of a verification pass.
#[derive(Clone, Debug, PartialEq)]
pub struct VerifyReport {
    /// Worst absolute difference found.
    pub max_abs: f64,
    /// Worst relative difference found.
    pub max_rel: f64,
    /// Location of the worst absolute difference.
    pub worst_at: (usize, usize, usize),
    /// The tolerance the comparison was run with.
    pub tolerance: f64,
}

impl VerifyReport {
    /// True when the grids agree within tolerance.
    pub fn passed(&self) -> bool {
        self.max_abs.is_finite() && self.max_abs <= self.tolerance
    }
}

/// Compare `candidate` against `golden` within `tolerance` (absolute).
pub fn verify_close<T: Real>(
    candidate: &Grid3<T>,
    golden: &Grid3<T>,
    tolerance: f64,
) -> VerifyReport {
    assert_eq!(
        candidate.dims(),
        golden.dims(),
        "grids must have matching dims"
    );
    let mut max_abs = 0.0f64;
    let mut max_rel = 0.0f64;
    let mut worst_at = (0, 0, 0);
    for ((i, j, k), va) in candidate.iter_logical() {
        let x = va.to_f64();
        let y = golden.get(i, j, k).to_f64();
        let d = (x - y).abs();
        if d > max_abs || !d.is_finite() {
            max_abs = d;
            worst_at = (i, j, k);
        }
        let rel = d / x.abs().max(y.abs()).max(1.0);
        if rel > max_rel {
            max_rel = rel;
        }
        if !x.is_finite() {
            return VerifyReport {
                max_abs: f64::INFINITY,
                max_rel: f64::INFINITY,
                worst_at: (i, j, k),
                tolerance,
            };
        }
    }
    VerifyReport {
        max_abs,
        max_rel,
        worst_at,
        tolerance,
    }
}

/// Default verification tolerance for a precision after `steps` Jacobi
/// iterations of a normalised (weights-sum-to-one) stencil: a small
/// multiple of machine epsilon, growing linearly with steps.
pub fn default_tolerance(precision: crate::Precision, steps: usize) -> f64 {
    let eps = match precision {
        crate::Precision::Single => f32::EPSILON as f64,
        crate::Precision::Double => f64::EPSILON,
    };
    eps * 64.0 * steps.max(1) as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{FillPattern, Precision};

    #[test]
    fn identical_grids_have_zero_diff() {
        let g: Grid3<f32> = FillPattern::HashNoise.build(6, 6, 6);
        assert_eq!(max_abs_diff(&g, &g), 0.0);
        assert_eq!(max_rel_diff(&g, &g), 0.0);
        assert!(verify_close(&g, &g, 0.0).passed());
    }

    #[test]
    fn single_perturbation_is_found() {
        let a: Grid3<f64> = FillPattern::Constant(1.0).build(4, 4, 4);
        let mut b = a.clone();
        b.set(2, 1, 3, 1.5);
        let rep = verify_close(&b, &a, 0.1);
        assert!(!rep.passed());
        assert_eq!(rep.worst_at, (2, 1, 3));
        assert!((rep.max_abs - 0.5).abs() < 1e-15);
    }

    #[test]
    fn rel_diff_normalises_by_magnitude() {
        let a: Grid3<f64> = FillPattern::Constant(100.0).build(3, 3, 3);
        let mut b = a.clone();
        b.set(0, 0, 0, 101.0);
        assert!((max_rel_diff(&a, &b) - 0.01 / 1.01).abs() < 1e-6);
    }

    #[test]
    fn nan_fails_verification() {
        let a: Grid3<f32> = FillPattern::Constant(0.0).build(3, 3, 3);
        let mut b = a.clone();
        b.set(1, 1, 1, f32::NAN);
        let rep = verify_close(&b, &a, 1e9);
        assert!(!rep.passed(), "NaN must never verify");
    }

    #[test]
    fn default_tolerance_scales() {
        let t1 = default_tolerance(Precision::Single, 1);
        let t10 = default_tolerance(Precision::Single, 10);
        assert!((t10 / t1 - 10.0).abs() < 1e-12);
        assert!(default_tolerance(Precision::Double, 1) < t1);
        // steps = 0 treated as 1
        assert_eq!(default_tolerance(Precision::Single, 0), t1);
    }
}
