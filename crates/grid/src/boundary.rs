//! Boundary handling for the iterative loop.
//!
//! The paper's harness (like the Nvidia FDTD3d sample it baselines
//! against) only updates interior points; the ring of width `r` around the
//! domain keeps its previous-step value, i.e. Dirichlet data carried
//! through the pointer swap. `Boundary` names that policy explicitly so
//! executors and references agree on what "the answer" is at the edge.

use crate::{Grid3, Real};

/// Policy for grid points within `r` of the domain edge.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Default)]
pub enum Boundary {
    /// Boundary ring is copied from the input grid (value held fixed
    /// across the swap). This is what nvstencil and the paper's harness do.
    #[default]
    CopyInput,
    /// Boundary ring is left untouched in the output grid (whatever the
    /// caller staged there survives). Useful for testing that executors do
    /// not write out of their assigned tiles.
    LeaveOutput,
}

impl Boundary {
    /// Apply the policy to `out` given `input`, for stencil radius `r`.
    pub fn apply<T: Real>(self, input: &Grid3<T>, out: &mut Grid3<T>, r: usize) {
        match self {
            Boundary::LeaveOutput => {}
            Boundary::CopyInput => copy_boundary_ring(input, out, r),
        }
    }
}

/// Copy the ring of width `r` (all points with any coordinate within `r`
/// of an edge) from `input` into `out`.
pub fn copy_boundary_ring<T: Real>(input: &Grid3<T>, out: &mut Grid3<T>, r: usize) {
    assert_eq!(input.dims(), out.dims());
    let (nx, ny, nz) = input.dims();
    for k in 0..nz {
        for j in 0..ny {
            let row_is_boundary =
                k < r || k >= nz.saturating_sub(r) || j < r || j >= ny.saturating_sub(r);
            if row_is_boundary {
                out.row_mut(j, k).copy_from_slice(input.row(j, k));
            } else {
                for i in (0..r.min(nx)).chain(nx.saturating_sub(r)..nx) {
                    out.set(i, j, k, input.get(i, j, k));
                }
            }
        }
    }
}

/// True if `(i, j, k)` lies in the boundary ring of width `r`.
#[inline]
pub fn in_boundary_ring(
    dims: (usize, usize, usize),
    r: usize,
    i: usize,
    j: usize,
    k: usize,
) -> bool {
    let (nx, ny, nz) = dims;
    i < r || i >= nx - r || j < r || j >= ny - r || k < r || k >= nz - r
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn copy_ring_covers_exactly_the_ring() {
        let mut input: Grid3<f32> = Grid3::new(6, 6, 6);
        input.fill(1.0);
        let mut out: Grid3<f32> = Grid3::new(6, 6, 6);
        out.fill(-1.0);
        copy_boundary_ring(&input, &mut out, 2);
        let dims = out.dims();
        for ((i, j, k), v) in out.clone().iter_logical() {
            if in_boundary_ring(dims, 2, i, j, k) {
                assert_eq!(v, 1.0, "boundary point ({i},{j},{k}) not copied");
            } else {
                assert_eq!(v, -1.0, "interior point ({i},{j},{k}) overwritten");
            }
        }
    }

    #[test]
    fn ring_count_matches_formula() {
        let mut input: Grid3<f64> = Grid3::new(8, 7, 9);
        input.fill(2.0);
        let mut out: Grid3<f64> = Grid3::new(8, 7, 9);
        copy_boundary_ring(&input, &mut out, 1);
        let copied = out.iter_logical().filter(|&(_, v)| v == 2.0).count();
        let interior = 6 * 5 * 7;
        assert_eq!(copied, 8 * 7 * 9 - interior);
    }

    #[test]
    fn radius_zero_copies_nothing() {
        let mut input: Grid3<f32> = Grid3::new(4, 4, 4);
        input.fill(9.0);
        let mut out: Grid3<f32> = Grid3::new(4, 4, 4);
        copy_boundary_ring(&input, &mut out, 0);
        assert!(out.iter_logical().all(|(_, v)| v == 0.0));
    }

    #[test]
    fn oversized_radius_copies_everything() {
        let mut input: Grid3<f32> = Grid3::new(4, 4, 4);
        input.fill(3.0);
        let mut out: Grid3<f32> = Grid3::new(4, 4, 4);
        copy_boundary_ring(&input, &mut out, 10);
        assert!(out.iter_logical().all(|(_, v)| v == 3.0));
    }

    #[test]
    fn leave_output_is_noop() {
        let mut input: Grid3<f32> = Grid3::new(4, 4, 4);
        input.fill(5.0);
        let mut out: Grid3<f32> = Grid3::new(4, 4, 4);
        Boundary::LeaveOutput.apply(&input, &mut out, 1);
        assert!(out.iter_logical().all(|(_, v)| v == 0.0));
    }

    #[test]
    fn in_boundary_ring_edges() {
        let dims = (10, 10, 10);
        assert!(in_boundary_ring(dims, 2, 0, 5, 5));
        assert!(in_boundary_ring(dims, 2, 8, 5, 5));
        assert!(in_boundary_ring(dims, 2, 5, 1, 5));
        assert!(in_boundary_ring(dims, 2, 5, 5, 9));
        assert!(!in_boundary_ring(dims, 2, 2, 2, 2));
        assert!(!in_boundary_ring(dims, 2, 7, 7, 7));
    }
}
