//! Multi-grid stencil machinery for the application kernels of Table V.
//!
//! The application stencils differ from the synthetic star kernels in how
//! many grids they read and write per point (Div: 3 in / 1 out, Grad:
//! 1 in / 3 out, Hyperthermia: 10 in / 1 out, Upstream: 1/1, Laplacian:
//! 1/1, Poisson: 2/1). The number of streamed grids is what determines
//! how much of the bandwidth the in-plane halo savings can touch — the
//! effect Fig. 11 measures (Hyperthermia barely speeds up because 9 of
//! its 11 grids are coefficient data the method cannot help with).

use crate::{boundary::Boundary, Grid3, Real};

/// An ordered set of same-shaped grids (the inputs or outputs of a
/// multi-grid kernel).
#[derive(Clone, Debug, PartialEq)]
pub struct GridSet<T> {
    grids: Vec<Grid3<T>>,
}

impl<T: Real> GridSet<T> {
    /// Wrap a non-empty vector of grids; all dims must match.
    ///
    /// # Panics
    /// Panics when empty or when shapes disagree.
    pub fn new(grids: Vec<Grid3<T>>) -> Self {
        assert!(!grids.is_empty(), "a GridSet needs at least one grid");
        let dims = grids[0].dims();
        assert!(
            grids.iter().all(|g| g.dims() == dims),
            "all grids in a set must share dims"
        );
        Self { grids }
    }

    /// `count` zero grids of shape `(nx, ny, nz)`.
    pub fn zeros(count: usize, nx: usize, ny: usize, nz: usize) -> Self {
        Self::new((0..count).map(|_| Grid3::new(nx, ny, nz)).collect())
    }

    /// Number of grids in the set.
    pub fn count(&self) -> usize {
        self.grids.len()
    }

    /// Shared dimensions.
    pub fn dims(&self) -> (usize, usize, usize) {
        self.grids[0].dims()
    }

    /// Borrow grid `idx`.
    pub fn grid(&self, idx: usize) -> &Grid3<T> {
        &self.grids[idx]
    }

    /// Mutably borrow grid `idx`.
    pub fn grid_mut(&mut self, idx: usize) -> &mut Grid3<T> {
        &mut self.grids[idx]
    }

    /// All grids as a slice.
    pub fn as_slice(&self) -> &[Grid3<T>] {
        &self.grids
    }

    /// Consume into the inner vector.
    pub fn into_inner(self) -> Vec<Grid3<T>> {
        self.grids
    }
}

/// A stencil kernel reading from `num_inputs()` grids and writing
/// `num_outputs()` grids, with neighbourhood radius `radius()`.
pub trait MultiGridKernel<T: Real>: Send + Sync {
    /// Display name (as in Table V).
    fn name(&self) -> &str;
    /// Neighbourhood radius.
    fn radius(&self) -> usize;
    /// Grids read per point.
    fn num_inputs(&self) -> usize;
    /// Grids written per point.
    fn num_outputs(&self) -> usize;
    /// How many of the input grids are *streamed fields* (swapped each
    /// iteration) as opposed to time-invariant coefficient grids. The
    /// in-plane z-pipelining only applies to streamed fields.
    fn num_streamed_inputs(&self) -> usize {
        self.num_inputs()
    }
    /// Flops per output point, forward formulation.
    fn flops_per_point(&self) -> usize;
    /// Flops per output point in the in-plane formulation (adds one extra
    /// add per pipelined z-term, mirroring Table II's 7r+1 → 8r+1).
    fn flops_per_point_inplane(&self) -> usize {
        self.flops_per_point() + self.radius()
    }
    /// Evaluate output grid `o` at interior point `(i, j, k)`.
    fn eval(&self, inputs: &[Grid3<T>], o: usize, i: usize, j: usize, k: usize) -> T;
}

/// Apply a multi-grid kernel over the interior; boundary policy is applied
/// per output grid against the corresponding input grid when shapes allow
/// (output `o` pairs with input `min(o, num_inputs-1)`).
pub fn apply_multigrid<T: Real>(
    kernel: &dyn MultiGridKernel<T>,
    inputs: &GridSet<T>,
    outputs: &mut GridSet<T>,
    boundary: Boundary,
) {
    assert_eq!(
        inputs.count(),
        kernel.num_inputs(),
        "{}: input count",
        kernel.name()
    );
    assert_eq!(
        outputs.count(),
        kernel.num_outputs(),
        "{}: output count",
        kernel.name()
    );
    assert_eq!(inputs.dims(), outputs.dims(), "{}: dims", kernel.name());
    let r = kernel.radius();
    let (nx, ny, nz) = inputs.dims();
    assert!(
        nx > 2 * r && ny > 2 * r && nz > 2 * r,
        "grid too small for radius {r}"
    );
    for o in 0..kernel.num_outputs() {
        for k in r..nz - r {
            for j in r..ny - r {
                for i in r..nx - r {
                    let v = kernel.eval(inputs.as_slice(), o, i, j, k);
                    outputs.grid_mut(o).set(i, j, k, v);
                }
            }
        }
        let paired_input = o.min(kernel.num_inputs() - 1);
        boundary.apply(inputs.grid(paired_input), outputs.grid_mut(o), r);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::FillPattern;

    /// A toy kernel: out0 = sum of the centre values of all inputs.
    struct SumCentres;
    impl MultiGridKernel<f64> for SumCentres {
        fn name(&self) -> &str {
            "SumCentres"
        }
        fn radius(&self) -> usize {
            1
        }
        fn num_inputs(&self) -> usize {
            2
        }
        fn num_outputs(&self) -> usize {
            1
        }
        fn flops_per_point(&self) -> usize {
            1
        }
        fn eval(&self, inputs: &[Grid3<f64>], _o: usize, i: usize, j: usize, k: usize) -> f64 {
            inputs[0].get(i, j, k) + inputs[1].get(i, j, k)
        }
    }

    #[test]
    fn gridset_shape_checks() {
        let set: GridSet<f32> = GridSet::zeros(3, 4, 4, 4);
        assert_eq!(set.count(), 3);
        assert_eq!(set.dims(), (4, 4, 4));
    }

    #[test]
    #[should_panic]
    fn gridset_rejects_mismatched_dims() {
        let _: GridSet<f32> = GridSet::new(vec![Grid3::new(3, 3, 3), Grid3::new(4, 3, 3)]);
    }

    #[test]
    #[should_panic]
    fn gridset_rejects_empty() {
        let _: GridSet<f32> = GridSet::new(vec![]);
    }

    #[test]
    fn apply_multigrid_sums_inputs() {
        let a = FillPattern::Constant(2.0).build(5, 5, 5);
        let b = FillPattern::Constant(3.0).build(5, 5, 5);
        let inputs = GridSet::new(vec![a, b]);
        let mut outputs = GridSet::zeros(1, 5, 5, 5);
        apply_multigrid(&SumCentres, &inputs, &mut outputs, Boundary::CopyInput);
        assert_eq!(outputs.grid(0).get(2, 2, 2), 5.0);
        // Boundary pairs output 0 with input 0 (value 2.0).
        assert_eq!(outputs.grid(0).get(0, 0, 0), 2.0);
    }

    #[test]
    fn default_inplane_flops_adds_radius() {
        let k = SumCentres;
        assert_eq!(k.flops_per_point_inplane(), 1 + 1);
        assert_eq!(k.num_streamed_inputs(), 2);
    }
}
