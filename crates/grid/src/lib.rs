#![forbid(unsafe_code)]
#![warn(missing_docs)]

//! # stencil-grid
//!
//! The grid substrate for the in-plane iterative-stencil-loop (ISL)
//! reproduction: padded/aligned 3-D grid storage, the symmetric star
//! stencil of the paper's Eqn (1), CPU reference executors (the golden
//! model every GPU-emulated kernel is verified against), the iterative
//! Jacobi driver of Fig. 1, and verification utilities.
//!
//! The paper computes, for a stencil of radius `r` (order `2r`):
//!
//! ```text
//! out[i,j,k] = c0 * in[i,j,k]
//!            + sum_{m=1..r} c_m * ( in[i±m,j,k] + in[i,j±m,k] + in[i,j,k±m] )
//! ```
//!
//! which touches `6r + 1` neighbours, makes `6r + 2` memory references per
//! element (including the output write) and costs `7r + 1` flops
//! (Table I). The in-plane formulation of the same operator costs `8r + 1`
//! flops at unchanged data references (Table II).

pub mod boundary;
pub mod grid;
pub mod init;
pub mod iterate;
pub mod multigrid;
pub mod parallel;
pub mod pipeline;
pub mod real;
pub mod reference;
pub mod stencil;
pub mod util;
pub mod verify;

pub use boundary::Boundary;
pub use grid::Grid3;
pub use init::FillPattern;
pub use iterate::{iterate_stencil_loop, IterationStats};
pub use multigrid::{apply_multigrid, GridSet, MultiGridKernel};
pub use parallel::{apply_reference_par, iterate_par};
pub use pipeline::RegisterPipeline;
pub use real::{Precision, Real};
pub use reference::{apply_reference, apply_reference_inplane_order};
pub use stencil::StarStencil;
pub use util::{read_grid, stats, subgrid, total, write_grid, GridStats};
pub use verify::{default_tolerance, max_abs_diff, max_rel_diff, verify_close, VerifyReport};
