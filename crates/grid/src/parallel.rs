//! Rayon-parallel CPU reference executor.
//!
//! The sequential references in [`crate::reference`] are the golden
//! models; this module provides the same operator parallelised over
//! z-planes with rayon so large verification grids and the temporal
//! baseline stay fast on multicore hosts. Plane-parallel Jacobi is
//! race-free by construction: every output plane depends only on the
//! immutable input grid.

use crate::{boundary::Boundary, Grid3, Real, StarStencil};
use rayon::prelude::*;

/// One Jacobi step, identical to [`crate::apply_reference`] (same
/// summation order, hence bit-identical results), parallelised over
/// output z-planes.
pub fn apply_reference_par<T: Real>(
    stencil: &StarStencil<T>,
    input: &Grid3<T>,
    out: &mut Grid3<T>,
    boundary: Boundary,
) {
    assert_eq!(input.dims(), out.dims(), "grids must have matching dims");
    let r = stencil.radius();
    let (nx, ny, nz) = input.dims();
    assert!(
        nx > 2 * r && ny > 2 * r && nz > 2 * r,
        "grid too small for radius {r}"
    );

    let plane_stride = out.plane_stride();
    let row_stride = out.row_stride();
    // Split the backing store into disjoint z-planes; each worker owns
    // one plane, so no synchronisation is needed.
    out.raw_mut()
        .par_chunks_mut(plane_stride)
        .enumerate()
        .filter(|(k, _)| *k >= r && *k < nz - r)
        .for_each(|(k, plane)| {
            for j in r..ny - r {
                for i in r..nx - r {
                    plane[j * row_stride + i] = stencil.eval(input, i, j, k);
                }
            }
        });
    boundary.apply(input, out, r);
}

/// Run `steps` Jacobi iterations with the parallel reference.
pub fn iterate_par<T: Real>(initial: Grid3<T>, stencil: &StarStencil<T>, steps: usize) -> Grid3<T> {
    let mut input = initial;
    let mut out = input.clone();
    for _ in 0..steps {
        apply_reference_par(stencil, &input, &mut out, Boundary::CopyInput);
        std::mem::swap(&mut input, &mut out);
    }
    input
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{apply_reference, max_abs_diff, FillPattern};

    #[test]
    fn parallel_matches_sequential_bit_for_bit() {
        for radius in [1usize, 3] {
            let s: StarStencil<f32> = StarStencil::diffusion(radius);
            let n = 4 * radius + 9;
            let input: Grid3<f32> = FillPattern::Random {
                lo: -1.0,
                hi: 1.0,
                seed: 11,
            }
            .build(n, n, n);
            let mut seq = Grid3::new(n, n, n);
            let mut par = Grid3::new(n, n, n);
            apply_reference(&s, &input, &mut seq, Boundary::CopyInput);
            apply_reference_par(&s, &input, &mut par, Boundary::CopyInput);
            assert_eq!(max_abs_diff(&seq, &par), 0.0, "radius {radius}");
        }
    }

    #[test]
    fn parallel_respects_padded_strides() {
        let s: StarStencil<f64> = StarStencil::diffusion(1);
        let input: Grid3<f64> = {
            let mut g = Grid3::new_aligned(10, 8, 6, 16);
            FillPattern::HashNoise.fill(&mut g);
            g
        };
        let mut seq = Grid3::new_aligned(10, 8, 6, 16);
        let mut par = Grid3::new_aligned(10, 8, 6, 16);
        apply_reference(&s, &input, &mut seq, Boundary::CopyInput);
        apply_reference_par(&s, &input, &mut par, Boundary::CopyInput);
        assert_eq!(max_abs_diff(&seq, &par), 0.0);
    }

    #[test]
    fn iterate_par_matches_iterate() {
        let s: StarStencil<f64> = StarStencil::diffusion(2);
        let initial: Grid3<f64> = FillPattern::GaussianPulse {
            amplitude: 5.0,
            sigma: 0.2,
        }
        .build(16, 16, 16);
        let (seq, _) = crate::iterate_stencil_loop(initial.clone(), 2, 6, |i, o| {
            apply_reference(&s, i, o, Boundary::CopyInput)
        });
        let par = iterate_par(initial, &s, 6);
        assert_eq!(max_abs_diff(&seq, &par), 0.0);
    }
}
