//! Property-based tests for the grid substrate: indexing is a bijection,
//! the two reference evaluation orders agree for arbitrary coefficients,
//! and verification utilities behave like metrics.

use proptest::prelude::*;
use stencil_grid::{
    apply_reference, apply_reference_inplane_order, max_abs_diff, Boundary, FillPattern, Grid3,
    StarStencil,
};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Every logical coordinate maps to a distinct in-bounds index.
    #[test]
    fn index_is_injective(
        nx in 1usize..12,
        ny in 1usize..12,
        nz in 1usize..12,
        align in 1usize..9,
    ) {
        let g: Grid3<f32> = Grid3::new_aligned(nx, ny, nz, align);
        let mut seen = std::collections::HashSet::new();
        for k in 0..nz {
            for j in 0..ny {
                for i in 0..nx {
                    let idx = g.index(i, j, k);
                    prop_assert!(idx < g.raw().len());
                    prop_assert!(seen.insert(idx), "duplicate index at ({i},{j},{k})");
                }
            }
        }
    }

    /// Row stride honours the alignment request and never shrinks a row.
    #[test]
    fn row_stride_alignment(nx in 1usize..200, align in 1usize..33) {
        let g: Grid3<f64> = Grid3::new_aligned(nx, 2, 2, align);
        prop_assert!(g.row_stride() >= nx);
        prop_assert_eq!(g.row_stride() % align, 0);
        prop_assert!(g.row_stride() - nx < align);
    }

    /// Eqn (4): the in-plane pipelined evaluation equals the direct
    /// forward evaluation for arbitrary coefficients and radii.
    #[test]
    fn inplane_order_equals_forward_for_arbitrary_coeffs(
        radius in 1usize..4,
        coeffs in prop::collection::vec(-1.0f64..1.0, 4),
        n_extra in 0usize..4,
        seed in 0u64..1000,
    ) {
        let c: Vec<f64> = coeffs.into_iter().take(radius + 1).collect();
        prop_assume!(c.len() == radius + 1);
        let stencil = StarStencil::new(c);
        let n = 2 * radius + 3 + n_extra;
        let input: Grid3<f64> =
            FillPattern::Random { lo: -1.0, hi: 1.0, seed }.build(n, n, n);
        let mut a = Grid3::new(n, n, n);
        let mut b = Grid3::new(n, n, n);
        apply_reference(&stencil, &input, &mut a, Boundary::CopyInput);
        apply_reference_inplane_order(&stencil, &input, &mut b, Boundary::CopyInput);
        prop_assert!(max_abs_diff(&a, &b) < 1e-12);
    }

    /// The diffusion stencil is an averaging operator: outputs stay
    /// within the input bounds for any radius.
    #[test]
    fn diffusion_preserves_bounds(radius in 1usize..4, seed in 0u64..1000) {
        let stencil: StarStencil<f64> = StarStencil::diffusion(radius);
        let n = 2 * radius + 4;
        let input: Grid3<f64> =
            FillPattern::Random { lo: 0.0, hi: 1.0, seed }.build(n, n, n);
        let mut out = Grid3::new(n, n, n);
        apply_reference(&stencil, &input, &mut out, Boundary::CopyInput);
        for (_, v) in out.iter_logical() {
            prop_assert!((-1e-12..=1.0 + 1e-12).contains(&v));
        }
    }

    /// max_abs_diff is a metric-ish: symmetric, zero iff equal grids.
    #[test]
    fn max_abs_diff_is_symmetric(seed_a in 0u64..100, seed_b in 0u64..100) {
        let a: Grid3<f32> = FillPattern::Random { lo: -1.0, hi: 1.0, seed: seed_a }.build(5, 5, 5);
        let b: Grid3<f32> = FillPattern::Random { lo: -1.0, hi: 1.0, seed: seed_b }.build(5, 5, 5);
        prop_assert_eq!(max_abs_diff(&a, &b), max_abs_diff(&b, &a));
        if seed_a == seed_b {
            prop_assert_eq!(max_abs_diff(&a, &b), 0.0);
        }
    }
}
