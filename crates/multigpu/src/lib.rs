#![forbid(unsafe_code)]
#![warn(missing_docs)]

//! # stencil-multigpu
//!
//! Multi-GPU domain decomposition for iterative stencil loops — the
//! scaling context the paper's related work points at (multi-GPU
//! Navier–Stokes solvers \[6\], GPU-cluster stencil auto-generation \[23\]).
//!
//! The decomposition is the natural one for z-streaming kernels: the
//! grid is split into contiguous **z-slabs**, one per device; every
//! Jacobi step each device computes its slab and then exchanges `r`
//! boundary planes with each neighbour over the interconnect. Two faces,
//! as everywhere in this workspace:
//!
//! * [`exec`] — functional emulation with device-local grids and an
//!   explicit halo exchange, verified to equal the single-device run
//!   bit-for-bit (and structurally unable to read beyond its slab plus
//!   the exchanged halos);
//! * [`perf`] — a timing model composing the per-device [`gpu_sim`]
//!   sweep time with a PCIe-style interconnect (bandwidth + latency per
//!   message), driving weak- and strong-scaling studies.

pub mod exec;
pub mod perf;

pub use exec::{execute_multi_gpu, multi_gpu_stage_plan, MultiGpuStats};
pub use perf::{simulate_scaling, Interconnect, ScalingPoint};
