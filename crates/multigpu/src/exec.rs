//! Functional multi-device emulation, as a **plan transform**.
//!
//! Each "device" owns a z-slab of the grid plus `r` halo planes per
//! neighbour, stored in its own allocation. A step is: compute the slab
//! interior from the local allocation only, then exchange boundary
//! planes with the neighbours. Correctness is structural: a device that
//! needed data it never received would read stale planes and diverge
//! from the single-device reference, so the bit-exact comparison in the
//! tests is also the proof that the exchange is sufficient.
//!
//! [`multi_gpu_stage_plan`] expresses that schedule in the
//! [`StagePlan`] IR: per device it allocates a current/next buffer
//! pair and scatters the slab in; per step it splices in each device's
//! ordinary single-step lowering (retargeted at the device-local
//! buffers and tagged with the device index), swaps, and emits one
//! [`PlanOp::HaloExchange`] per refreshed halo plane; finally every
//! device gathers its owned planes out. [`execute_multi_gpu`] just
//! interprets that plan on the shared instrumented interpreter.

use inplane_core::plan::{PlanOp, StagePlan, INPUT_BUF, OUTPUT_BUF};
use inplane_core::{interpret_plan, lower_step, ExecStats, LaunchConfig, Method};
use stencil_grid::{Boundary, Grid3, Real, StarStencil};

/// Statistics from a multi-device run.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct MultiGpuStats {
    /// Devices used.
    pub devices: usize,
    /// Halo planes moved over the interconnect (per direction counts).
    pub planes_exchanged: u64,
    /// Bytes those planes amount to.
    pub bytes_exchanged: u64,
    /// Full interpreter counters for the transformed plan (per-slab
    /// staging traffic, barriers, gather volume, ...).
    pub exec: ExecStats,
}

impl MultiGpuStats {
    /// Interconnect overhead per useful output cell: halo cells moved
    /// divided by cells gathered into the caller's grid. Defined (0.0)
    /// for the degenerate single-device run — which exchanges nothing —
    /// and for runs that gathered nothing, so no shard count can divide
    /// by zero.
    pub fn exchange_redundancy(&self) -> f64 {
        let gathered = self.exec.cells_copied_out;
        if gathered == 0 || self.exec.halo_cells_exchanged == 0 {
            return 0.0;
        }
        self.exec.halo_cells_exchanged as f64 / gathered as f64
    }
}

/// Split `nz` planes over `devices` as evenly as possible.
pub(crate) fn partition(nz: usize, devices: usize) -> Vec<(usize, usize)> {
    assert!(devices >= 1, "need at least one device");
    let base = nz / devices;
    let extra = nz % devices;
    let mut out = Vec::with_capacity(devices);
    let mut z = 0usize;
    for d in 0..devices {
        let len = base + usize::from(d < extra);
        out.push((z, z + len));
        z += len;
    }
    out
}

/// One device's slab geometry: owned planes `[z0, z1)` plus up to `r`
/// halo planes per side, and the id of its current working buffer.
struct SlabPlan {
    z0: usize,
    z1: usize,
    halo_lo: usize,
    cur: usize,
}

impl SlabPlan {
    /// Local buffer plane holding global plane `gz`.
    fn local_z(&self, gz: usize) -> usize {
        gz + self.halo_lo - self.z0
    }
}

/// Lower a whole multi-device run (`steps` Jacobi iterations over
/// `devices` z-slabs) to a [`StagePlan`]: the scatter / per-device
/// sweep / halo-exchange / gather schedule described in the module
/// docs. Pure function of the arguments.
///
/// # Panics
/// Panics if a slab would be thinner than the stencil radius (too many
/// devices for the grid) or the grid is too small for the radius.
pub fn multi_gpu_stage_plan(
    method: Method,
    config: &LaunchConfig,
    r: usize,
    dims: (usize, usize, usize),
    devices: usize,
    steps: usize,
) -> StagePlan {
    let (nx, ny, nz) = dims;
    assert!(
        nx > 2 * r && ny > 2 * r && nz > 2 * r,
        "grid too small for radius {r}"
    );
    let parts = partition(nz, devices);
    assert!(
        parts.iter().all(|&(a, b)| b - a >= r),
        "slabs thinner than the radius: use fewer devices"
    );

    let mut ops = Vec::new();
    let mut next_buf = 2;

    // Scatter: per device a current/next pair covering the owned planes
    // plus the neighbour halos, filled from the global grid.
    let slabs: Vec<SlabPlan> = parts
        .iter()
        .map(|&(z0, z1)| {
            let halo_lo = r.min(z0);
            let halo_hi = r.min(nz - z1);
            let depth = (z1 - z0) + halo_lo + halo_hi;
            let (cur, nxt) = (next_buf, next_buf + 1);
            next_buf += 2;
            ops.push(PlanOp::Alloc {
                buf: cur,
                dims: (nx, ny, depth),
            });
            ops.push(PlanOp::Alloc {
                buf: nxt,
                dims: (nx, ny, depth),
            });
            ops.push(PlanOp::CopyBox {
                src: INPUT_BUF,
                dst: cur,
                src_org: (0, 0, z0 - halo_lo),
                dst_org: (0, 0, 0),
                extent: (nx, ny, depth),
            });
            SlabPlan {
                z0,
                z1,
                halo_lo,
                cur,
            }
        })
        .collect();

    for _ in 0..steps {
        // Compute: each device sweeps its local allocation with the
        // ordinary single-step lowering. The local z-boundary policy
        // (CopyInput over the ring of width r) freezes exactly the halo
        // planes plus — at the global ends — the true Dirichlet ring,
        // matching the global semantics for the owned interior planes.
        for (d, s) in slabs.iter().enumerate() {
            let depth = (s.z1 - s.z0) + s.halo_lo + r.min(nz - s.z1);
            let nxt = s.cur + 1;
            let mut step = lower_step(method, config, r, (nx, ny, depth));
            step.retarget_buffers(|id| match id {
                INPUT_BUF => s.cur,
                OUTPUT_BUF => nxt,
                other => other,
            });
            step.tag_device(d);
            ops.extend(step.ops);
            ops.push(PlanOp::ApplyBoundary {
                input: s.cur,
                output: nxt,
                boundary: Boundary::CopyInput,
            });
            ops.push(PlanOp::SwapBufs { a: s.cur, b: nxt });
        }

        // Exchange: refresh every halo plane from its owner's freshly
        // computed (or globally-fixed) value. Owners send their top/
        // bottom r owned planes to the neighbour's halo region.
        for (d, dst) in slabs.iter().enumerate() {
            if d > 0 {
                let src = &slabs[d - 1];
                for gz in (dst.z0 - dst.halo_lo)..dst.z0 {
                    ops.push(PlanOp::HaloExchange {
                        device: d,
                        src: src.cur,
                        dst: dst.cur,
                        src_plane: src.local_z(gz),
                        dst_plane: dst.local_z(gz),
                    });
                }
            }
            if d + 1 < slabs.len() {
                let src = &slabs[d + 1];
                for gz in dst.z1..(dst.z1 + r.min(nz - dst.z1)) {
                    ops.push(PlanOp::HaloExchange {
                        device: d,
                        src: src.cur,
                        dst: dst.cur,
                        src_plane: src.local_z(gz),
                        dst_plane: dst.local_z(gz),
                    });
                }
            }
        }
    }

    // Gather the owned planes.
    for s in &slabs {
        ops.push(PlanOp::CopyBox {
            src: s.cur,
            dst: OUTPUT_BUF,
            src_org: (0, 0, s.halo_lo),
            dst_org: (0, 0, s.z0),
            extent: (nx, ny, s.z1 - s.z0),
        });
    }

    StagePlan {
        method,
        radius: r,
        dims,
        ops,
    }
}

/// Run `steps` Jacobi iterations of `stencil` across `devices` emulated
/// GPUs with z-slab decomposition and explicit halo exchange, using the
/// given method/config for each device's local sweep.
///
/// Returns the final grid (gathered) and exchange statistics. Results
/// are bit-identical to the single-device emulated run.
///
/// # Panics
/// Panics if a slab would be thinner than the stencil radius (too many
/// devices for the grid) or the grid is too small for the radius.
pub fn execute_multi_gpu<T: Real>(
    method: Method,
    stencil: &StarStencil<T>,
    config: &LaunchConfig,
    initial: &Grid3<T>,
    devices: usize,
    steps: usize,
) -> (Grid3<T>, MultiGpuStats) {
    let r = stencil.radius();
    let dims = initial.dims();
    let plan = multi_gpu_stage_plan(method, config, r, dims, devices, steps);
    let mut out = Grid3::new(dims.0, dims.1, dims.2);
    let exec = interpret_plan(&plan, stencil, initial, &mut out);
    let stats = MultiGpuStats {
        devices,
        planes_exchanged: exec.halo_planes_exchanged,
        bytes_exchanged: exec.halo_cells_exchanged * T::PRECISION.bytes() as u64,
        exec,
    };
    (out, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use inplane_core::{execute_step, Variant};
    use stencil_grid::{iterate_stencil_loop, max_abs_diff, FillPattern};

    fn single_device<T: Real>(
        method: Method,
        stencil: &StarStencil<T>,
        config: &LaunchConfig,
        initial: &Grid3<T>,
        steps: usize,
    ) -> Grid3<T> {
        let (g, _) = iterate_stencil_loop(initial.clone(), stencil.radius(), steps, |i, o| {
            execute_step(method, stencil, config, i, o, Boundary::CopyInput);
        });
        g
    }

    #[test]
    fn partition_covers_exactly() {
        assert_eq!(partition(10, 3), vec![(0, 4), (4, 7), (7, 10)]);
        assert_eq!(partition(8, 1), vec![(0, 8)]);
        assert_eq!(
            partition(8, 8),
            (0..8).map(|z| (z, z + 1)).collect::<Vec<_>>()
        );
    }

    #[test]
    fn two_devices_match_one_bit_for_bit() {
        let s: StarStencil<f64> = StarStencil::diffusion(1);
        let cfg = LaunchConfig::new(8, 4, 1, 1);
        let initial: Grid3<f64> = FillPattern::Random {
            lo: -1.0,
            hi: 1.0,
            seed: 9,
        }
        .build(14, 14, 12);
        let golden = single_device(Method::InPlane(Variant::FullSlice), &s, &cfg, &initial, 4);
        let (multi, stats) = execute_multi_gpu(
            Method::InPlane(Variant::FullSlice),
            &s,
            &cfg,
            &initial,
            2,
            4,
        );
        assert_eq!(max_abs_diff(&multi, &golden), 0.0);
        // 4 steps × 2 directions × r planes.
        assert_eq!(stats.planes_exchanged, 4 * 2);
        assert_eq!(stats.bytes_exchanged, 4 * 2 * 14 * 14 * 8);
        // The interpreter's counters tell the same story.
        assert_eq!(stats.exec.halo_planes_exchanged, 4 * 2);
        assert_eq!(stats.exec.halo_cells_exchanged, 4 * 2 * 14 * 14);
        assert_eq!(stats.exec.cells_copied_out, 14 * 14 * 12);
        assert!(stats.exchange_redundancy() > 0.0);
    }

    #[test]
    fn many_devices_high_radius() {
        let s: StarStencil<f64> = StarStencil::diffusion(2);
        let cfg = LaunchConfig::new(4, 4, 1, 1);
        let initial: Grid3<f64> = FillPattern::HashNoise.build(13, 13, 16);
        let golden = single_device(Method::ForwardPlane, &s, &cfg, &initial, 3);
        for devices in [2usize, 3, 4] {
            let (multi, _) =
                execute_multi_gpu(Method::ForwardPlane, &s, &cfg, &initial, devices, 3);
            assert_eq!(
                max_abs_diff(&multi, &golden),
                0.0,
                "{devices} devices diverged"
            );
        }
    }

    #[test]
    fn one_device_is_the_degenerate_case() {
        let s: StarStencil<f32> = StarStencil::diffusion(1);
        let cfg = LaunchConfig::new(8, 8, 1, 1);
        let initial: Grid3<f32> = FillPattern::HashNoise.build(10, 10, 8);
        let golden = single_device(Method::InPlane(Variant::Vertical), &s, &cfg, &initial, 2);
        let (multi, stats) =
            execute_multi_gpu(Method::InPlane(Variant::Vertical), &s, &cfg, &initial, 1, 2);
        assert_eq!(max_abs_diff(&multi, &golden), 0.0);
        assert_eq!(stats.planes_exchanged, 0);
    }

    #[test]
    fn degenerate_ratios_are_defined() {
        // Regression: the single-shard run exchanges nothing — the
        // overhead ratio must be exactly 0, not NaN from 0/0.
        let s: StarStencil<f64> = StarStencil::diffusion(1);
        let cfg = LaunchConfig::new(8, 8, 1, 1);
        let initial: Grid3<f64> = FillPattern::HashNoise.build(8, 8, 8);
        let (_, stats) = execute_multi_gpu(Method::ForwardPlane, &s, &cfg, &initial, 1, 1);
        assert_eq!(stats.devices, 1);
        assert_eq!(stats.planes_exchanged, 0);
        assert!(stats.exchange_redundancy().is_finite());
        assert_eq!(stats.exchange_redundancy(), 0.0);
        // The all-zero default (no run at all) is defined too.
        assert_eq!(MultiGpuStats::default().exchange_redundancy(), 0.0);
    }

    #[test]
    #[should_panic(expected = "fewer devices")]
    fn too_many_devices_rejected() {
        let s: StarStencil<f64> = StarStencil::diffusion(2);
        let cfg = LaunchConfig::new(4, 4, 1, 1);
        let initial: Grid3<f64> = Grid3::new(8, 8, 8);
        execute_multi_gpu(Method::ForwardPlane, &s, &cfg, &initial, 8, 1);
    }
}
