//! Functional multi-device emulation.
//!
//! Each "device" owns a z-slab of the grid plus `r` halo planes per
//! neighbour, stored in its own allocation. A step is: compute the slab
//! interior from the local allocation only, then exchange boundary
//! planes with the neighbours. Correctness is structural: a device that
//! needed data it never received would read stale planes and diverge
//! from the single-device reference, so the bit-exact comparison in the
//! tests is also the proof that the exchange is sufficient.

use inplane_core::{execute_step, LaunchConfig, Method};
use stencil_grid::{Boundary, Grid3, Real, StarStencil};

/// Statistics from a multi-device run.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct MultiGpuStats {
    /// Devices used.
    pub devices: usize,
    /// Halo planes moved over the interconnect (per direction counts).
    pub planes_exchanged: u64,
    /// Bytes those planes amount to.
    pub bytes_exchanged: u64,
}

/// One device's slab: planes `[z0, z1)` of the global grid plus up to
/// `r` halo planes on each side.
struct Slab<T> {
    /// First owned global plane.
    z0: usize,
    /// One past the last owned global plane.
    z1: usize,
    /// Halo planes available below / above the owned range.
    halo_lo: usize,
    halo_hi: usize,
    /// Local allocation covering `[z0 - halo_lo, z1 + halo_hi)`.
    local: Grid3<T>,
}

impl<T: Real> Slab<T> {
    fn local_z(&self, gz: usize) -> usize {
        gz + self.halo_lo - self.z0
    }
}

/// Split `nz` planes over `devices` as evenly as possible.
pub(crate) fn partition(nz: usize, devices: usize) -> Vec<(usize, usize)> {
    assert!(devices >= 1, "need at least one device");
    let base = nz / devices;
    let extra = nz % devices;
    let mut out = Vec::with_capacity(devices);
    let mut z = 0usize;
    for d in 0..devices {
        let len = base + usize::from(d < extra);
        out.push((z, z + len));
        z += len;
    }
    out
}

/// Run `steps` Jacobi iterations of `stencil` across `devices` emulated
/// GPUs with z-slab decomposition and explicit halo exchange, using the
/// given method/config for each device's local sweep.
///
/// Returns the final grid (gathered) and exchange statistics. Results
/// are bit-identical to the single-device emulated run.
///
/// # Panics
/// Panics if a slab would be thinner than the stencil radius (too many
/// devices for the grid) or the grid is too small for the radius.
pub fn execute_multi_gpu<T: Real>(
    method: Method,
    stencil: &StarStencil<T>,
    config: &LaunchConfig,
    initial: &Grid3<T>,
    devices: usize,
    steps: usize,
) -> (Grid3<T>, MultiGpuStats) {
    let r = stencil.radius();
    let (nx, ny, nz) = initial.dims();
    assert!(
        nx > 2 * r && ny > 2 * r && nz > 2 * r,
        "grid too small for radius {r}"
    );
    let parts = partition(nz, devices);
    assert!(
        parts.iter().all(|&(a, b)| b - a >= r),
        "slabs thinner than the radius: use fewer devices"
    );

    // Scatter: build device-local allocations (owned planes + halos).
    let mut slabs: Vec<Slab<T>> = parts
        .iter()
        .map(|&(z0, z1)| {
            let halo_lo = r.min(z0);
            let halo_hi = r.min(nz - z1);
            let depth = (z1 - z0) + halo_lo + halo_hi;
            let mut local = Grid3::new(nx, ny, depth);
            local.fill_with(|i, j, k| initial.get(i, j, z0 - halo_lo + k));
            Slab {
                z0,
                z1,
                halo_lo,
                halo_hi,
                local,
            }
        })
        .collect();

    let mut stats = MultiGpuStats {
        devices,
        ..Default::default()
    };
    let plane_bytes = (nx * ny * T::PRECISION.bytes()) as u64;

    for _ in 0..steps {
        // Compute: each device sweeps its local allocation. The local
        // run's z-boundary policy (CopyInput over the ring of width r)
        // freezes exactly the halo planes plus — at the global ends —
        // the true Dirichlet ring, matching the global semantics for
        // the owned interior planes.
        let mut next: Vec<Grid3<T>> = Vec::with_capacity(slabs.len());
        for s in &slabs {
            let mut out = s.local.clone();
            execute_step(
                method,
                stencil,
                config,
                &s.local,
                &mut out,
                Boundary::CopyInput,
            );
            next.push(out);
        }
        for (s, n) in slabs.iter_mut().zip(next) {
            s.local = n;
        }

        // Exchange: refresh every halo plane from its owner's freshly
        // computed (or globally-fixed) value. Owners send their top/
        // bottom r owned planes to the neighbour's halo region.
        for d in 0..slabs.len() {
            // Receive from the lower neighbour into [z0 - halo_lo, z0).
            if d > 0 {
                let (lo_part, hi_part) = slabs.split_at_mut(d);
                let src = &lo_part[d - 1];
                let dst = &mut hi_part[0];
                for gz in (dst.z0 - dst.halo_lo)..dst.z0 {
                    let (sk, dk) = (src.local_z(gz), dst.local_z(gz));
                    for j in 0..ny {
                        for i in 0..nx {
                            let v = src.local.get(i, j, sk);
                            dst.local.set(i, j, dk, v);
                        }
                    }
                    stats.planes_exchanged += 1;
                    stats.bytes_exchanged += plane_bytes;
                }
            }
            // Receive from the upper neighbour into [z1, z1 + halo_hi).
            if d + 1 < slabs.len() {
                let (lo_part, hi_part) = slabs.split_at_mut(d + 1);
                let dst = &mut lo_part[d];
                let src = &hi_part[0];
                for gz in dst.z1..(dst.z1 + dst.halo_hi) {
                    let (sk, dk) = (src.local_z(gz), dst.local_z(gz));
                    for j in 0..ny {
                        for i in 0..nx {
                            let v = src.local.get(i, j, sk);
                            dst.local.set(i, j, dk, v);
                        }
                    }
                    stats.planes_exchanged += 1;
                    stats.bytes_exchanged += plane_bytes;
                }
            }
        }
    }

    // Gather the owned planes.
    let mut out = Grid3::new(nx, ny, nz);
    for s in &slabs {
        for gz in s.z0..s.z1 {
            let lk = s.local_z(gz);
            for j in 0..ny {
                for i in 0..nx {
                    out.set(i, j, gz, s.local.get(i, j, lk));
                }
            }
        }
    }
    (out, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use inplane_core::Variant;
    use stencil_grid::{iterate_stencil_loop, max_abs_diff, FillPattern};

    fn single_device<T: Real>(
        method: Method,
        stencil: &StarStencil<T>,
        config: &LaunchConfig,
        initial: &Grid3<T>,
        steps: usize,
    ) -> Grid3<T> {
        let (g, _) = iterate_stencil_loop(initial.clone(), stencil.radius(), steps, |i, o| {
            execute_step(method, stencil, config, i, o, Boundary::CopyInput);
        });
        g
    }

    #[test]
    fn partition_covers_exactly() {
        assert_eq!(partition(10, 3), vec![(0, 4), (4, 7), (7, 10)]);
        assert_eq!(partition(8, 1), vec![(0, 8)]);
        assert_eq!(
            partition(8, 8),
            (0..8).map(|z| (z, z + 1)).collect::<Vec<_>>()
        );
    }

    #[test]
    fn two_devices_match_one_bit_for_bit() {
        let s: StarStencil<f64> = StarStencil::diffusion(1);
        let cfg = LaunchConfig::new(8, 4, 1, 1);
        let initial: Grid3<f64> = FillPattern::Random {
            lo: -1.0,
            hi: 1.0,
            seed: 9,
        }
        .build(14, 14, 12);
        let golden = single_device(Method::InPlane(Variant::FullSlice), &s, &cfg, &initial, 4);
        let (multi, stats) = execute_multi_gpu(
            Method::InPlane(Variant::FullSlice),
            &s,
            &cfg,
            &initial,
            2,
            4,
        );
        assert_eq!(max_abs_diff(&multi, &golden), 0.0);
        // 4 steps × 2 directions × r planes.
        assert_eq!(stats.planes_exchanged, 4 * 2);
        assert_eq!(stats.bytes_exchanged, 4 * 2 * 14 * 14 * 8);
    }

    #[test]
    fn many_devices_high_radius() {
        let s: StarStencil<f64> = StarStencil::diffusion(2);
        let cfg = LaunchConfig::new(4, 4, 1, 1);
        let initial: Grid3<f64> = FillPattern::HashNoise.build(13, 13, 16);
        let golden = single_device(Method::ForwardPlane, &s, &cfg, &initial, 3);
        for devices in [2usize, 3, 4] {
            let (multi, _) =
                execute_multi_gpu(Method::ForwardPlane, &s, &cfg, &initial, devices, 3);
            assert_eq!(
                max_abs_diff(&multi, &golden),
                0.0,
                "{devices} devices diverged"
            );
        }
    }

    #[test]
    fn one_device_is_the_degenerate_case() {
        let s: StarStencil<f32> = StarStencil::diffusion(1);
        let cfg = LaunchConfig::new(8, 8, 1, 1);
        let initial: Grid3<f32> = FillPattern::HashNoise.build(10, 10, 8);
        let golden = single_device(Method::InPlane(Variant::Vertical), &s, &cfg, &initial, 2);
        let (multi, stats) =
            execute_multi_gpu(Method::InPlane(Variant::Vertical), &s, &cfg, &initial, 1, 2);
        assert_eq!(max_abs_diff(&multi, &golden), 0.0);
        assert_eq!(stats.planes_exchanged, 0);
    }

    #[test]
    #[should_panic(expected = "fewer devices")]
    fn too_many_devices_rejected() {
        let s: StarStencil<f64> = StarStencil::diffusion(2);
        let cfg = LaunchConfig::new(4, 4, 1, 1);
        let initial: Grid3<f64> = Grid3::new(8, 8, 8);
        execute_multi_gpu(Method::ForwardPlane, &s, &cfg, &initial, 8, 1);
    }
}
