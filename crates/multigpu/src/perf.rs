//! Multi-GPU scaling model.
//!
//! Per Jacobi step, each device sweeps its z-slab (priced by the
//! single-GPU timing engine) and then exchanges `r` planes with each
//! neighbour over the interconnect. With bulk-synchronous steps the
//! step time is the slowest device's sweep plus its exchange:
//!
//! ```text
//! t_step = max_d(sweep_d) + exchange(r planes per neighbour)
//! ```
//!
//! which yields the classic stencil scaling story: near-linear strong
//! scaling while slabs stay deep, saturating when the fixed per-step
//! exchange (and the shrinking slab's launch overhead) stops shrinking.

use gpu_sim::plan::GridDims;
use gpu_sim::DeviceSpec;
use inplane_core::{EvalContext, KernelSpec, LaunchConfig};

/// Interconnect characteristics for halo exchange.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Interconnect {
    /// Effective point-to-point bandwidth, bytes/s.
    pub bandwidth: f64,
    /// Per-message latency, seconds.
    pub latency_s: f64,
}

impl Interconnect {
    /// PCIe 2.0 x16 era (the paper's cards): ~6 GB/s effective, ~10 µs
    /// per transfer.
    pub fn pcie2() -> Self {
        Interconnect {
            bandwidth: 6.0e9,
            latency_s: 10e-6,
        }
    }

    /// Time to move `bytes` in one message.
    pub fn transfer_s(&self, bytes: f64) -> f64 {
        self.latency_s + bytes / self.bandwidth
    }
}

/// One point of a scaling curve.
#[derive(Clone, Debug, PartialEq)]
pub struct ScalingPoint {
    /// Device count.
    pub devices: usize,
    /// Time per Jacobi step, seconds.
    pub step_time_s: f64,
    /// Effective MPoint/s over the global grid.
    pub mpoints_per_s: f64,
    /// Parallel efficiency vs the single-device point (0..=1+).
    pub efficiency: f64,
    /// Fraction of the step spent exchanging halos.
    pub exchange_fraction: f64,
}

/// Simulate strong scaling of `kernel` at `config` over 1..=max_devices
/// GPUs of type `device`, splitting the global `dims` into z-slabs.
pub fn simulate_scaling(
    device: &DeviceSpec,
    kernel: &KernelSpec,
    config: &LaunchConfig,
    dims: GridDims,
    interconnect: &Interconnect,
    max_devices: usize,
) -> Vec<ScalingPoint> {
    assert!(max_devices >= 1);
    let mut out = Vec::new();
    let mut t1 = None;
    for devices in 1..=max_devices {
        let slabs = crate::exec::partition(dims.lz, devices);
        let deepest = slabs.iter().map(|&(a, b)| b - a).max().unwrap();
        if deepest < kernel.radius {
            break;
        }
        // Slowest device: the deepest slab. Cached per slab depth, so
        // scaling curves over many device counts (and repeated curves
        // in one process) re-price only unseen depths.
        let slab_dims = GridDims::new(dims.lx, dims.ly, deepest);
        let sweep = EvalContext::global().evaluate(device, kernel, config, slab_dims);
        if !sweep.feasible() {
            break;
        }
        // Exchange: r planes per neighbour; interior devices have two
        // neighbours and the two directions serialise on the link.
        let neighbours = if devices == 1 { 0.0 } else { 2.0 };
        let plane_bytes = (dims.lx * dims.ly * kernel.elem_bytes) as f64;
        let exchange = neighbours * interconnect.transfer_s(kernel.radius as f64 * plane_bytes);
        let step = sweep.time_s + exchange;
        let mpoints = dims.points() as f64 / step / 1e6;
        let t_ref = *t1.get_or_insert(step);
        out.push(ScalingPoint {
            devices,
            step_time_s: step,
            mpoints_per_s: mpoints,
            efficiency: t_ref / (step * devices as f64),
            exchange_fraction: exchange / step,
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use inplane_core::{Method, Variant};
    use stencil_grid::Precision;

    fn setup() -> (DeviceSpec, KernelSpec, LaunchConfig) {
        (
            DeviceSpec::gtx580(),
            KernelSpec::star_order(Method::InPlane(Variant::FullSlice), 2, Precision::Single),
            LaunchConfig::new(128, 4, 1, 2),
        )
    }

    #[test]
    fn single_device_has_no_exchange() {
        let (dev, k, c) = setup();
        let pts = simulate_scaling(&dev, &k, &c, GridDims::paper(), &Interconnect::pcie2(), 1);
        assert_eq!(pts.len(), 1);
        assert_eq!(pts[0].exchange_fraction, 0.0);
        assert!((pts[0].efficiency - 1.0).abs() < 1e-12);
    }

    #[test]
    fn strong_scaling_speeds_up_but_efficiency_decays() {
        let (dev, k, c) = setup();
        let pts = simulate_scaling(&dev, &k, &c, GridDims::paper(), &Interconnect::pcie2(), 8);
        assert_eq!(pts.len(), 8);
        for w in pts.windows(2) {
            assert!(
                w[1].step_time_s < w[0].step_time_s,
                "{} -> {} devices must not slow down",
                w[0].devices,
                w[1].devices
            );
        }
        // Efficiency at 8 devices is below 1 (exchange + overheads).
        assert!(pts[7].efficiency < 1.0);
        assert!(
            pts[7].efficiency > 0.4,
            "efficiency {:.2}",
            pts[7].efficiency
        );
        // Exchange fraction grows with device count.
        assert!(pts[7].exchange_fraction > pts[1].exchange_fraction);
    }

    #[test]
    fn slow_interconnect_hurts() {
        let (dev, k, c) = setup();
        let slow = Interconnect {
            bandwidth: 0.5e9,
            latency_s: 50e-6,
        };
        let fast = Interconnect::pcie2();
        let p_slow = simulate_scaling(&dev, &k, &c, GridDims::paper(), &slow, 4);
        let p_fast = simulate_scaling(&dev, &k, &c, GridDims::paper(), &fast, 4);
        assert!(p_slow[3].step_time_s > p_fast[3].step_time_s);
        assert!(p_slow[3].exchange_fraction > p_fast[3].exchange_fraction);
    }

    #[test]
    fn transfer_time_arithmetic() {
        let ic = Interconnect {
            bandwidth: 1e9,
            latency_s: 1e-5,
        };
        assert!((ic.transfer_s(1e6) - (1e-5 + 1e-3)).abs() < 1e-12);
    }

    #[test]
    fn higher_radius_exchanges_more() {
        let dev = DeviceSpec::gtx580();
        let c = LaunchConfig::new(64, 8, 1, 1);
        let mk = |order| {
            KernelSpec::star_order(
                Method::InPlane(Variant::FullSlice),
                order,
                Precision::Single,
            )
        };
        let ic = Interconnect::pcie2();
        let lo = simulate_scaling(&dev, &mk(2), &c, GridDims::paper(), &ic, 4);
        let hi = simulate_scaling(&dev, &mk(8), &c, GridDims::paper(), &ic, 4);
        // Absolute exchange time (fraction × step) is 4x for r = 4 vs r = 1.
        let abs = |p: &ScalingPoint| p.exchange_fraction * p.step_time_s;
        assert!(abs(&hi[3]) > 3.5 * abs(&lo[3]));
    }
}
