//! Property-based tests for the application stencils: operator
//! identities that must hold for arbitrary fields and parameters.

use proptest::prelude::*;
use stencil_apps::{Divergence, Gradient, Laplacian3d, Poisson, Upstream};
use stencil_grid::{apply_multigrid, Boundary, FillPattern, Grid3, GridSet, MultiGridKernel};

fn random_grid(n: usize, seed: u64) -> Grid3<f64> {
    FillPattern::Random {
        lo: -1.0,
        hi: 1.0,
        seed,
    }
    .build(n, n, n)
}

fn run_single_out(k: &dyn MultiGridKernel<f64>, inputs: Vec<Grid3<f64>>, n: usize) -> Grid3<f64> {
    let inputs = GridSet::new(inputs);
    let mut out = GridSet::zeros(k.num_outputs(), n, n, n);
    apply_multigrid(k, &inputs, &mut out, Boundary::LeaveOutput);
    out.into_inner().remove(0)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Divergence is linear: div(aF + bG) = a·div F + b·div G.
    #[test]
    fn divergence_is_linear(a in -2.0f64..2.0, b in -2.0f64..2.0, seed in 0u64..100) {
        let n = 7;
        let f: Vec<Grid3<f64>> = (0..3).map(|c| random_grid(n, seed + c)).collect();
        let g: Vec<Grid3<f64>> = (0..3).map(|c| random_grid(n, seed + 10 + c)).collect();
        let combo: Vec<Grid3<f64>> = (0..3)
            .map(|c| {
                let mut h = Grid3::new(n, n, n);
                h.fill_with(|i, j, k| a * f[c].get(i, j, k) + b * g[c].get(i, j, k));
                h
            })
            .collect();
        let div = Divergence::default();
        let df = run_single_out(&div, f, n);
        let dg = run_single_out(&div, g, n);
        let dc = run_single_out(&div, combo, n);
        for kk in 1..n - 1 {
            for j in 1..n - 1 {
                for i in 1..n - 1 {
                    let expect = a * df.get(i, j, kk) + b * dg.get(i, j, kk);
                    prop_assert!((dc.get(i, j, kk) - expect).abs() < 1e-10);
                }
            }
        }
    }

    /// div(grad f) equals the 7-point Laplacian applied at double spacing
    /// — a discrete vector-calculus identity both operators must satisfy.
    #[test]
    fn div_grad_is_symmetric_in_its_stencil(seed in 0u64..100) {
        let n = 9;
        let f = random_grid(n, seed);
        let grad = Gradient::default();
        let inputs = GridSet::new(vec![f.clone()]);
        let mut gout = GridSet::zeros(3, n, n, n);
        apply_multigrid(&grad, &inputs, &mut gout, Boundary::LeaveOutput);
        let dg = run_single_out(&Divergence::default(), gout.into_inner(), n);
        // div grad f at p = (f(p+2e) + f(p-2e) - 2f(p)) / 4 summed over axes.
        for kk in 2..n - 2 {
            for j in 2..n - 2 {
                for i in 2..n - 2 {
                    let expect = (f.get(i + 2, j, kk) + f.get(i - 2, j, kk)
                        + f.get(i, j + 2, kk)
                        + f.get(i, j - 2, kk)
                        + f.get(i, j, kk + 2)
                        + f.get(i, j, kk - 2)
                        - 6.0 * f.get(i, j, kk))
                        / 4.0;
                    prop_assert!((dg.get(i, j, kk) - expect).abs() < 1e-10);
                }
            }
        }
    }

    /// The Laplacian annihilates affine fields for any spacing.
    #[test]
    fn laplacian_annihilates_affine(h in 0.1f64..4.0, a in -3.0f64..3.0, b in -3.0f64..3.0) {
        let n = 6;
        let mut f = Grid3::new(n, n, n);
        f.fill_with(|i, j, k| a * i as f64 + b * j as f64 - k as f64 + 2.0);
        let out = run_single_out(&Laplacian3d { h }, vec![f], n);
        for kk in 1..n - 1 {
            prop_assert!(out.get(2, 2, kk).abs() < 1e-9);
        }
    }

    /// Upwind advection with |cx|+|cy|+|cz| <= 1 is a convex combination:
    /// output bounded by input range.
    #[test]
    fn upstream_is_monotone_for_stable_courant(
        cx in -0.4f64..0.4,
        cy in -0.3f64..0.3,
        cz in -0.3f64..0.3,
        seed in 0u64..100,
    ) {
        let n = 7;
        let f: Grid3<f64> = FillPattern::Random { lo: 0.0, hi: 1.0, seed }.build(n, n, n);
        let out = run_single_out(&Upstream { cx, cy, cz }, vec![f], n);
        for kk in 1..n - 1 {
            for j in 1..n - 1 {
                for i in 1..n - 1 {
                    let v = out.get(i, j, kk);
                    prop_assert!((-1e-12..=1.0 + 1e-12).contains(&v), "({i},{j},{kk}) = {v}");
                }
            }
        }
    }

    /// One Poisson relaxation step from the exact solution of ∇²u = f
    /// is a fixed point, for arbitrary quadratic coefficients.
    #[test]
    fn poisson_fixed_point(ax in -2.0f64..2.0, ay in -2.0f64..2.0, az in -2.0f64..2.0) {
        let n = 7;
        let mut u = Grid3::new(n, n, n);
        u.fill_with(|i, j, k| {
            ax * (i * i) as f64 + ay * (j * j) as f64 + az * (k * k) as f64
        });
        let rhs_val = 2.0 * (ax + ay + az);
        let f: Grid3<f64> = FillPattern::Constant(rhs_val).build(n, n, n);
        let out = run_single_out(&Poisson::default(), vec![u.clone(), f], n);
        for kk in 1..n - 1 {
            for j in 1..n - 1 {
                for i in 1..n - 1 {
                    prop_assert!((out.get(i, j, kk) - u.get(i, j, kk)).abs() < 1e-9);
                }
            }
        }
    }
}
