//! In-plane functional execution for multi-grid application kernels.
//!
//! The star-kernel in-plane pipeline (Eqns (3)–(5)) generalises to any
//! kernel whose output separates into a part computable from planes
//! `≤ k` and additive contributions from the forward planes
//! `k+1 .. k+r`:
//!
//! ```text
//! out[o](i,j,k) = partial(inputs | planes ≤ k)
//!               + Σ_{p=1..r} forward_term(p, plane k+p)
//! ```
//!
//! Every Table V kernel is z-separable in this sense (their z-neighbour
//! terms enter additively, with any per-point coefficients living on the
//! output plane, which the pipeline has already seen). The executor
//! queues `r` pending output planes per grid and folds each arriving
//! plane's forward terms in — the 6-step §III-C procedure, applied to
//! real application kernels.

use stencil_grid::{Boundary, Grid3, GridSet, MultiGridKernel, Real, RegisterPipeline};

/// A multi-grid kernel whose z-dependence is separable as above, making
/// it executable with the in-plane pipeline.
pub trait ZSeparable<T: Real>: MultiGridKernel<T> {
    /// The Eqn-(3)-style partial for output `o` at `(i, j, k)`: the full
    /// result *minus* every term that reads a plane beyond `k`.
    fn eval_partial(&self, inputs: &[Grid3<T>], o: usize, i: usize, j: usize, k: usize) -> T;

    /// The additive contribution to output `o` at `(i, j, k)` from plane
    /// `k + p` (`1 ≤ p ≤ radius`). May also read per-point coefficients
    /// at plane `k` (already available when the term is folded in).
    fn forward_term(
        &self,
        inputs: &[Grid3<T>],
        o: usize,
        i: usize,
        j: usize,
        k: usize,
        p: usize,
    ) -> T;
}

/// Execute one application-kernel step with the in-plane pipeline.
/// Numerically equal (to rounding) to [`stencil_grid::apply_multigrid`];
/// the summation order matches the star executor's: partial first, then
/// forward terms in increasing plane order.
pub fn apply_multigrid_inplane<T: Real>(
    kernel: &dyn ZSeparable<T>,
    inputs: &GridSet<T>,
    outputs: &mut GridSet<T>,
    boundary: Boundary,
) {
    assert_eq!(
        inputs.count(),
        kernel.num_inputs(),
        "{}: input count",
        kernel.name()
    );
    assert_eq!(
        outputs.count(),
        kernel.num_outputs(),
        "{}: output count",
        kernel.name()
    );
    let r = kernel.radius();
    let (nx, ny, nz) = inputs.dims();
    assert!(
        nx > 2 * r && ny > 2 * r && nz > 2 * r,
        "grid too small for radius {r}"
    );

    let plane_elems = (nx - 2 * r) * (ny - 2 * r);
    let lin = |i: usize, j: usize| (j - r) * (nx - 2 * r) + (i - r);

    for o in 0..kernel.num_outputs() {
        // Queue depth d holds the pending plane (k - d) at the top of
        // each iteration, exactly as in the star reference.
        let mut queue: RegisterPipeline<T> = RegisterPipeline::new(r + 1, plane_elems);
        for k in r..nz {
            if k < nz - r {
                let slot = queue.slot_mut(0);
                for j in r..ny - r {
                    for i in r..nx - r {
                        slot[lin(i, j)] = kernel.eval_partial(inputs.as_slice(), o, i, j, k);
                    }
                }
            }
            for d in 1..=r {
                let in_range = matches!(k.checked_sub(d), Some(kd) if kd >= r && kd < nz - r);
                if !in_range {
                    continue;
                }
                let slot = queue.slot_mut(d);
                for j in r..ny - r {
                    for i in r..nx - r {
                        slot[lin(i, j)] +=
                            kernel.forward_term(inputs.as_slice(), o, i, j, k - d, d);
                    }
                }
            }
            if let Some(done_k) = k.checked_sub(r) {
                if done_k >= r && done_k < nz - r {
                    let slot = queue.slot(r);
                    for j in r..ny - r {
                        for i in r..nx - r {
                            outputs.grid_mut(o).set(i, j, done_k, slot[lin(i, j)]);
                        }
                    }
                }
            }
            queue.rotate_back();
        }
        let paired_input = o.min(kernel.num_inputs() - 1);
        boundary.apply(inputs.grid(paired_input), outputs.grid_mut(o), r);
    }
}

// --- Z-separable decompositions for the Table V kernels -----------------

impl<T: Real> ZSeparable<T> for crate::Laplacian3d {
    fn eval_partial(&self, inputs: &[Grid3<T>], _o: usize, i: usize, j: usize, k: usize) -> T {
        let f = &inputs[0];
        let inv_h2 = T::from_f64(1.0 / (self.h * self.h));
        let six = T::from_f64(6.0);
        let sum = f.get(i - 1, j, k)
            + f.get(i + 1, j, k)
            + f.get(i, j - 1, k)
            + f.get(i, j + 1, k)
            + f.get(i, j, k - 1);
        inv_h2 * (sum - six * f.get(i, j, k))
    }
    fn forward_term(
        &self,
        inputs: &[Grid3<T>],
        _o: usize,
        i: usize,
        j: usize,
        k: usize,
        p: usize,
    ) -> T {
        debug_assert_eq!(p, 1);
        T::from_f64(1.0 / (self.h * self.h)) * inputs[0].get(i, j, k + p)
    }
}

impl<T: Real> ZSeparable<T> for crate::Poisson {
    fn eval_partial(&self, inputs: &[Grid3<T>], _o: usize, i: usize, j: usize, k: usize) -> T {
        let (u, f) = (&inputs[0], &inputs[1]);
        let h2 = T::from_f64(self.h * self.h);
        let sixth = T::from_f64(1.0 / 6.0);
        let sum = u.get(i - 1, j, k)
            + u.get(i + 1, j, k)
            + u.get(i, j - 1, k)
            + u.get(i, j + 1, k)
            + u.get(i, j, k - 1);
        sixth * (sum - h2 * f.get(i, j, k))
    }
    fn forward_term(
        &self,
        inputs: &[Grid3<T>],
        _o: usize,
        i: usize,
        j: usize,
        k: usize,
        p: usize,
    ) -> T {
        debug_assert_eq!(p, 1);
        T::from_f64(1.0 / 6.0) * inputs[0].get(i, j, k + p)
    }
}

impl<T: Real> ZSeparable<T> for crate::Divergence {
    fn eval_partial(&self, inputs: &[Grid3<T>], _o: usize, i: usize, j: usize, k: usize) -> T {
        let inv2h = T::from_f64(0.5 / self.h);
        let dx = inputs[0].get(i + 1, j, k) - inputs[0].get(i - 1, j, k);
        let dy = inputs[1].get(i, j + 1, k) - inputs[1].get(i, j - 1, k);
        // The z-difference's backward half only.
        inv2h * (dx + dy) - inv2h * inputs[2].get(i, j, k - 1)
    }
    fn forward_term(
        &self,
        inputs: &[Grid3<T>],
        _o: usize,
        i: usize,
        j: usize,
        k: usize,
        p: usize,
    ) -> T {
        debug_assert_eq!(p, 1);
        T::from_f64(0.5 / self.h) * inputs[2].get(i, j, k + p)
    }
}

impl<T: Real> ZSeparable<T> for crate::Gradient {
    fn eval_partial(&self, inputs: &[Grid3<T>], o: usize, i: usize, j: usize, k: usize) -> T {
        let inv2h = T::from_f64(0.5 / self.h);
        let f = &inputs[0];
        match o {
            0 => inv2h * (f.get(i + 1, j, k) - f.get(i - 1, j, k)),
            1 => inv2h * (f.get(i, j + 1, k) - f.get(i, j - 1, k)),
            2 => -inv2h * f.get(i, j, k - 1),
            _ => unreachable!(),
        }
    }
    fn forward_term(
        &self,
        inputs: &[Grid3<T>],
        o: usize,
        i: usize,
        j: usize,
        k: usize,
        p: usize,
    ) -> T {
        debug_assert_eq!(p, 1);
        if o == 2 {
            T::from_f64(0.5 / self.h) * inputs[0].get(i, j, k + p)
        } else {
            T::ZERO
        }
    }
}

impl<T: Real> ZSeparable<T> for crate::Hyperthermia {
    fn eval_partial(&self, inputs: &[Grid3<T>], _o: usize, i: usize, j: usize, k: usize) -> T {
        let t = &inputs[0];
        let (ca, cb) = (&inputs[1], &inputs[2]);
        let (cxl, cxr) = (&inputs[3], &inputs[4]);
        let (cyl, cyr) = (&inputs[5], &inputs[6]);
        let czl = &inputs[7];
        let q = &inputs[9];
        ca.get(i, j, k) * t.get(i, j, k)
            + cb.get(i, j, k)
            + cxl.get(i, j, k) * t.get(i - 1, j, k)
            + cxr.get(i, j, k) * t.get(i + 1, j, k)
            + cyl.get(i, j, k) * t.get(i, j - 1, k)
            + cyr.get(i, j, k) * t.get(i, j + 1, k)
            + czl.get(i, j, k) * t.get(i, j, k - 1)
            + q.get(i, j, k)
    }
    fn forward_term(
        &self,
        inputs: &[Grid3<T>],
        _o: usize,
        i: usize,
        j: usize,
        k: usize,
        p: usize,
    ) -> T {
        debug_assert_eq!(p, 1);
        // The coefficient lives on the output plane k (already seen).
        inputs[8].get(i, j, k) * inputs[0].get(i, j, k + p)
    }
}

impl<T: Real> ZSeparable<T> for crate::Upstream {
    fn eval_partial(&self, inputs: &[Grid3<T>], _o: usize, i: usize, j: usize, k: usize) -> T {
        let f = &inputs[0];
        let c = f.get(i, j, k);
        let mut acc = c
            + Self::upwind(self.cx, c, f.get(i - 1, j, k), f.get(i + 1, j, k))
            + Self::upwind(self.cy, c, f.get(i, j - 1, k), f.get(i, j + 1, k));
        // z-axis: the backward-looking half (the whole term when the wind
        // blows from below; just the centre part otherwise).
        if self.cz >= 0.0 {
            acc += T::from_f64(self.cz) * (f.get(i, j, k - 1) - c);
        } else {
            acc += T::from_f64(-self.cz) * (-c);
        }
        acc
    }
    fn forward_term(
        &self,
        inputs: &[Grid3<T>],
        _o: usize,
        i: usize,
        j: usize,
        k: usize,
        p: usize,
    ) -> T {
        debug_assert_eq!(p, 1);
        if self.cz >= 0.0 {
            T::ZERO
        } else {
            T::from_f64(-self.cz) * inputs[0].get(i, j, k + p)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{
        all_apps, hyperthermia, Divergence, Gradient, Hyperthermia, Laplacian3d, Poisson, Upstream,
    };
    use stencil_grid::{apply_multigrid, max_abs_diff, FillPattern};

    fn random_inputs(n: usize, count: usize, seed: u64) -> GridSet<f64> {
        GridSet::new(
            (0..count)
                .map(|c| {
                    FillPattern::Random {
                        lo: -1.0,
                        hi: 1.0,
                        seed: seed + c as u64,
                    }
                    .build(n, n, n)
                })
                .collect(),
        )
    }

    fn check<K: ZSeparable<f64>>(kernel: &K, inputs: &GridSet<f64>, n: usize) {
        let mut fwd = GridSet::zeros(kernel.num_outputs(), n, n, n);
        apply_multigrid(kernel, inputs, &mut fwd, Boundary::CopyInput);
        let mut inp = GridSet::zeros(kernel.num_outputs(), n, n, n);
        apply_multigrid_inplane(kernel, inputs, &mut inp, Boundary::CopyInput);
        for o in 0..kernel.num_outputs() {
            let d = max_abs_diff(fwd.grid(o), inp.grid(o));
            assert!(d < 1e-12, "{} output {o}: diverged by {d}", kernel.name());
        }
    }

    #[test]
    fn laplacian_inplane_matches_forward() {
        let inputs = random_inputs(9, 1, 1);
        check(&Laplacian3d::default(), &inputs, 9);
    }

    #[test]
    fn poisson_inplane_matches_forward() {
        let inputs = random_inputs(9, 2, 2);
        check(&Poisson { h: 0.5 }, &inputs, 9);
    }

    #[test]
    fn divergence_inplane_matches_forward() {
        let inputs = random_inputs(9, 3, 3);
        check(&Divergence { h: 2.0 }, &inputs, 9);
    }

    #[test]
    fn gradient_inplane_matches_forward() {
        let inputs = random_inputs(9, 1, 4);
        check(&Gradient::default(), &inputs, 9);
    }

    #[test]
    fn hyperthermia_inplane_matches_forward() {
        let n = 9;
        let inputs = GridSet::new(hyperthermia::default_inputs::<f64>(n, n, n, 5));
        check(&Hyperthermia, &inputs, n);
        // Also with fully random (spatially varying) coefficients.
        let inputs = random_inputs(n, 10, 6);
        check(&Hyperthermia, &inputs, n);
    }

    #[test]
    fn upstream_inplane_matches_forward_both_wind_signs() {
        let inputs = random_inputs(9, 1, 7);
        check(
            &Upstream {
                cx: 0.3,
                cy: -0.2,
                cz: 0.25,
            },
            &inputs,
            9,
        );
        check(
            &Upstream {
                cx: -0.1,
                cy: 0.2,
                cz: -0.35,
            },
            &inputs,
            9,
        );
    }

    #[test]
    fn every_table5_kernel_is_covered() {
        // Compile-time-ish completeness: the count of ZSeparable impls
        // tested above matches the Table V suite.
        assert_eq!(all_apps::<f64>().len(), 6);
    }
}
