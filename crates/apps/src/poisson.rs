//! A Jacobi relaxation step for the 3-D Poisson equation `∇²u = f`
//! (Table V: *Poisson*, 2 in / 1 out).
//!
//! `u' = (Σ neighbours − h²·f) / 6` — the solution field `u` streams
//! through the z-pipeline; the right-hand side `f` is a time-invariant
//! second input grid, which dilutes the in-plane gain relative to the
//! pure Laplacian.

use stencil_grid::{Grid3, MultiGridKernel, Real};

/// Jacobi–Poisson relaxation, radius 1, inputs `[u, f]`.
#[derive(Clone, Debug)]
pub struct Poisson {
    /// Grid spacing.
    pub h: f64,
}

impl Default for Poisson {
    fn default() -> Self {
        Poisson { h: 1.0 }
    }
}

impl<T: Real> MultiGridKernel<T> for Poisson {
    fn name(&self) -> &str {
        "Poisson"
    }
    fn radius(&self) -> usize {
        1
    }
    fn num_inputs(&self) -> usize {
        2
    }
    fn num_outputs(&self) -> usize {
        1
    }
    fn num_streamed_inputs(&self) -> usize {
        1 // the RHS grid is time-invariant
    }
    fn flops_per_point(&self) -> usize {
        9 // 5 adds + h² mul + sub + scale by 1/6
    }
    fn eval(&self, inputs: &[Grid3<T>], _o: usize, i: usize, j: usize, k: usize) -> T {
        let u = &inputs[0];
        let f = &inputs[1];
        let h2 = T::from_f64(self.h * self.h);
        let sixth = T::from_f64(1.0 / 6.0);
        let sum = u.get(i - 1, j, k)
            + u.get(i + 1, j, k)
            + u.get(i, j - 1, k)
            + u.get(i, j + 1, k)
            + u.get(i, j, k - 1)
            + u.get(i, j, k + 1);
        sixth * (sum - h2 * f.get(i, j, k))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stencil_grid::{apply_multigrid, Boundary, FillPattern, GridSet};

    #[test]
    fn zero_rhs_is_plain_averaging() {
        let u: Grid3<f64> = FillPattern::Constant(3.0).build(5, 5, 5);
        let f: Grid3<f64> = FillPattern::Constant(0.0).build(5, 5, 5);
        let inputs = GridSet::new(vec![u, f]);
        let mut out = GridSet::zeros(1, 5, 5, 5);
        apply_multigrid(
            &Poisson::default(),
            &inputs,
            &mut out,
            Boundary::LeaveOutput,
        );
        assert!((out.grid(0).get(2, 2, 2) - 3.0).abs() < 1e-12);
    }

    #[test]
    fn exact_solution_is_fixed_point() {
        // u = x² + y² + z² satisfies ∇²u = 6: with f ≡ 6, one Jacobi
        // step must leave the interior of u unchanged.
        let u: Grid3<f64> = {
            let mut g = Grid3::new(7, 7, 7);
            g.fill_with(|i, j, k| (i * i + j * j + k * k) as f64);
            g
        };
        let f: Grid3<f64> = FillPattern::Constant(6.0).build(7, 7, 7);
        let inputs = GridSet::new(vec![u.clone(), f]);
        let mut out = GridSet::zeros(1, 7, 7, 7);
        apply_multigrid(
            &Poisson::default(),
            &inputs,
            &mut out,
            Boundary::LeaveOutput,
        );
        for k in 1..6 {
            for j in 1..6 {
                for i in 1..6 {
                    assert!(
                        (out.grid(0).get(i, j, k) - u.get(i, j, k)).abs() < 1e-12,
                        "({i},{j},{k})"
                    );
                }
            }
        }
    }

    #[test]
    fn jacobi_iteration_reduces_residual() {
        // Relax ∇²u = 0 with fixed boundary: the interior residual
        // shrinks monotonically from a rough start.
        let mut u: Grid3<f64> = FillPattern::Random {
            lo: 0.0,
            hi: 1.0,
            seed: 2,
        }
        .build(8, 8, 8);
        let f: Grid3<f64> = FillPattern::Constant(0.0).build(8, 8, 8);
        let p = Poisson::default();
        let residual = |g: &Grid3<f64>| {
            let mut r = 0.0f64;
            for k in 1..7 {
                for j in 1..7 {
                    for i in 1..7 {
                        let lap = g.get(i - 1, j, k)
                            + g.get(i + 1, j, k)
                            + g.get(i, j - 1, k)
                            + g.get(i, j + 1, k)
                            + g.get(i, j, k - 1)
                            + g.get(i, j, k + 1)
                            - 6.0 * g.get(i, j, k);
                        r += lap * lap;
                    }
                }
            }
            r
        };
        let r0 = residual(&u);
        for _ in 0..10 {
            let inputs = GridSet::new(vec![u.clone(), f.clone()]);
            let mut out = GridSet::zeros(1, 8, 8, 8);
            apply_multigrid(&p, &inputs, &mut out, Boundary::CopyInput);
            u = out.into_inner().remove(0);
        }
        assert!(residual(&u) < 0.2 * r0);
    }

    #[test]
    fn table5_grid_counts() {
        let p = Poisson::default();
        assert_eq!(MultiGridKernel::<f32>::num_inputs(&p), 2);
        assert_eq!(MultiGridKernel::<f32>::num_streamed_inputs(&p), 1);
        assert_eq!(MultiGridKernel::<f32>::num_outputs(&p), 1);
    }
}
