#![forbid(unsafe_code)]
#![warn(missing_docs)]

//! # stencil-apps
//!
//! The six real-world application stencils of the paper's Table V /
//! Fig 11, with functional (CPU-verifiable) implementations and the
//! grid-count metadata that drives their performance behaviour:
//!
//! | Stencil      | In | Out | Streamed | Coefficient grids |
//! |--------------|----|-----|----------|-------------------|
//! | Div          | 3  | 1   | 3        | 0                 |
//! | Grad         | 1  | 3   | 1        | 0                 |
//! | Hyperthermia | 10 | 1   | 1        | 9                 |
//! | Upstream     | 1  | 1   | 1        | 0                 |
//! | Laplacian    | 1  | 1   | 1        | 0                 |
//! | Poisson      | 2  | 1   | 1        | 1                 |
//!
//! The in-plane method only improves the halo loading of *streamed*
//! field grids, which is why Laplacian (all of its traffic is one
//! streamed grid) gains the most (~1.8×) and Hyperthermia (9 of 11 grids
//! are spatially varying coefficients) gains the least — §V-A's central
//! observation.

pub mod div;
pub mod grad;
pub mod hyperthermia;
pub mod inplane_exec;
pub mod laplacian;
pub mod poisson;
pub mod suite;
pub mod upstream;

pub use div::Divergence;
pub use grad::Gradient;
pub use hyperthermia::Hyperthermia;
pub use inplane_exec::{apply_multigrid_inplane, ZSeparable};
pub use laplacian::Laplacian3d;
pub use poisson::Poisson;
pub use suite::{all_apps, benchmark_app, benchmark_app_with, AppBenchResult};
pub use upstream::Upstream;
