//! The 3-D discrete Laplacian (Table V: *Laplacian*, 1 in / 1 out) —
//! the classic 7-point stencil of image processing and diffusion codes,
//! and the kernel with the paper's largest in-plane speedup (~1.8×,
//! §V-A) because every byte it moves belongs to the one streamed grid.

use stencil_grid::{Grid3, MultiGridKernel, Real};

/// 7-point Laplacian, radius 1: `∇²f ≈ (Σ neighbours − 6f) / h²`.
#[derive(Clone, Debug)]
pub struct Laplacian3d {
    /// Grid spacing.
    pub h: f64,
}

impl Default for Laplacian3d {
    fn default() -> Self {
        Laplacian3d { h: 1.0 }
    }
}

impl<T: Real> MultiGridKernel<T> for Laplacian3d {
    fn name(&self) -> &str {
        "Laplacian"
    }
    fn radius(&self) -> usize {
        1
    }
    fn num_inputs(&self) -> usize {
        1
    }
    fn num_outputs(&self) -> usize {
        1
    }
    fn flops_per_point(&self) -> usize {
        8 // 6 adds + 1 fused centre multiply-sub + 1 scale
    }
    fn eval(&self, inputs: &[Grid3<T>], _o: usize, i: usize, j: usize, k: usize) -> T {
        let f = &inputs[0];
        let inv_h2 = T::from_f64(1.0 / (self.h * self.h));
        let six = T::from_f64(6.0);
        let sum = f.get(i - 1, j, k)
            + f.get(i + 1, j, k)
            + f.get(i, j - 1, k)
            + f.get(i, j + 1, k)
            + f.get(i, j, k - 1)
            + f.get(i, j, k + 1);
        inv_h2 * (sum - six * f.get(i, j, k))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stencil_grid::{apply_multigrid, Boundary, FillPattern, GridSet, StarStencil};

    #[test]
    fn matches_star_stencil_laplacian7() {
        let f: Grid3<f64> = FillPattern::Random {
            lo: -1.0,
            hi: 1.0,
            seed: 3,
        }
        .build(7, 7, 7);
        let star: StarStencil<f64> = StarStencil::laplacian7();
        let inputs = GridSet::new(vec![f.clone()]);
        let mut out = GridSet::zeros(1, 7, 7, 7);
        apply_multigrid(
            &Laplacian3d::default(),
            &inputs,
            &mut out,
            Boundary::LeaveOutput,
        );
        for k in 1..6 {
            for j in 1..6 {
                for i in 1..6 {
                    let expect = star.eval(&f, i, j, k);
                    assert!((out.grid(0).get(i, j, k) - expect).abs() < 1e-12);
                }
            }
        }
    }

    #[test]
    fn laplacian_of_quadratic_is_six() {
        // f = x² + y² + z² → ∇²f = 6.
        let f: Grid3<f64> = {
            let mut g = Grid3::new(6, 6, 6);
            g.fill_with(|i, j, k| (i * i + j * j + k * k) as f64);
            g
        };
        let inputs = GridSet::new(vec![f]);
        let mut out = GridSet::zeros(1, 6, 6, 6);
        apply_multigrid(
            &Laplacian3d::default(),
            &inputs,
            &mut out,
            Boundary::LeaveOutput,
        );
        assert!((out.grid(0).get(2, 3, 2) - 6.0).abs() < 1e-12);
    }

    #[test]
    fn spacing_scales_inverse_square() {
        let f: Grid3<f64> = {
            let mut g = Grid3::new(5, 5, 5);
            g.fill_with(|i, _, _| (i * i) as f64);
            g
        };
        let inputs = GridSet::new(vec![f]);
        let mut out = GridSet::zeros(1, 5, 5, 5);
        apply_multigrid(
            &Laplacian3d { h: 2.0 },
            &inputs,
            &mut out,
            Boundary::LeaveOutput,
        );
        assert!((out.grid(0).get(2, 2, 2) - 0.5).abs() < 1e-12);
    }
}
