//! The upstream (upwind-biased advection) stencil from weather-forecast
//! code (Table V: *Upstream*, 1 in / 1 out), after the Patus kernel the
//! paper takes it from \[17\].
//!
//! A first-order upwind advection update with a constant wind vector
//! `(ux, uy, uz)`: each axis takes its difference against the upstream
//! neighbour, making the stencil *asymmetric* — unlike the symmetric
//! star kernels, the used neighbourhood depends on the wind signs, but
//! the loaded halo footprint is the full radius-1 frame either way.

use stencil_grid::{Grid3, MultiGridKernel, Real};

/// Upwind advection step, radius 1.
#[derive(Clone, Debug)]
pub struct Upstream {
    /// Courant numbers `u·Δt/h` per axis; magnitudes should be < 1 for
    /// stability.
    pub cx: f64,
    /// See `cx`.
    pub cy: f64,
    /// See `cx`.
    pub cz: f64,
}

impl Default for Upstream {
    fn default() -> Self {
        Upstream {
            cx: 0.3,
            cy: 0.2,
            cz: 0.1,
        }
    }
}

impl Upstream {
    /// Upwind difference along one axis: `c·(f_up − f_c)` with the
    /// upstream side selected by the sign of `c`.
    #[inline]
    pub(crate) fn upwind<T: Real>(c: f64, centre: T, minus: T, plus: T) -> T {
        if c >= 0.0 {
            T::from_f64(c) * (minus - centre)
        } else {
            T::from_f64(-c) * (plus - centre)
        }
    }
}

impl<T: Real> MultiGridKernel<T> for Upstream {
    fn name(&self) -> &str {
        "Upstream"
    }
    fn radius(&self) -> usize {
        1
    }
    fn num_inputs(&self) -> usize {
        1
    }
    fn num_outputs(&self) -> usize {
        1
    }
    fn flops_per_point(&self) -> usize {
        // 3 axes × (1 sub + 1 mul) + 3 adds + centre add.
        13
    }
    fn eval(&self, inputs: &[Grid3<T>], _o: usize, i: usize, j: usize, k: usize) -> T {
        let f = &inputs[0];
        let c = f.get(i, j, k);
        c + Self::upwind(self.cx, c, f.get(i - 1, j, k), f.get(i + 1, j, k))
            + Self::upwind(self.cy, c, f.get(i, j - 1, k), f.get(i, j + 1, k))
            + Self::upwind(self.cz, c, f.get(i, j, k - 1), f.get(i, j, k + 1))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stencil_grid::{apply_multigrid, Boundary, FillPattern, GridSet};

    #[test]
    fn constant_field_is_invariant() {
        let f: Grid3<f64> = FillPattern::Constant(4.0).build(5, 5, 5);
        let inputs = GridSet::new(vec![f]);
        let mut out = GridSet::zeros(1, 5, 5, 5);
        apply_multigrid(
            &Upstream::default(),
            &inputs,
            &mut out,
            Boundary::LeaveOutput,
        );
        assert!((out.grid(0).get(2, 2, 2) - 4.0).abs() < 1e-12);
    }

    #[test]
    fn positive_wind_advects_from_minus_side() {
        let mut f: Grid3<f64> = FillPattern::Constant(0.0).build(5, 5, 5);
        f.set(1, 2, 2, 1.0); // mass upstream (x-minus side)
        let u = Upstream {
            cx: 0.5,
            cy: 0.0,
            cz: 0.0,
        };
        let inputs = GridSet::new(vec![f]);
        let mut out = GridSet::zeros(1, 5, 5, 5);
        apply_multigrid(&u, &inputs, &mut out, Boundary::LeaveOutput);
        assert!((out.grid(0).get(2, 2, 2) - 0.5).abs() < 1e-12);
        // The plus-side neighbour is not consulted for positive wind.
        assert!((out.grid(0).get(1, 2, 2) - (1.0 - 0.5)).abs() < 1e-12);
    }

    #[test]
    fn negative_wind_advects_from_plus_side() {
        let mut f: Grid3<f64> = FillPattern::Constant(0.0).build(5, 5, 5);
        f.set(3, 2, 2, 1.0);
        let u = Upstream {
            cx: -0.5,
            cy: 0.0,
            cz: 0.0,
        };
        let inputs = GridSet::new(vec![f]);
        let mut out = GridSet::zeros(1, 5, 5, 5);
        apply_multigrid(&u, &inputs, &mut out, Boundary::LeaveOutput);
        assert!((out.grid(0).get(2, 2, 2) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn stable_step_preserves_bounds() {
        // With Courant magnitudes summing below 1, the update is a convex
        // combination: outputs stay within input bounds.
        let f: Grid3<f64> = FillPattern::Random {
            lo: 0.0,
            hi: 1.0,
            seed: 4,
        }
        .build(6, 6, 6);
        let inputs = GridSet::new(vec![f]);
        let mut out = GridSet::zeros(1, 6, 6, 6);
        apply_multigrid(
            &Upstream::default(),
            &inputs,
            &mut out,
            Boundary::LeaveOutput,
        );
        for k in 1..5 {
            for j in 1..5 {
                for i in 1..5 {
                    let v = out.grid(0).get(i, j, k);
                    assert!((-1e-12..=1.0 + 1e-12).contains(&v), "({i},{j},{k}): {v}");
                }
            }
        }
    }
}
