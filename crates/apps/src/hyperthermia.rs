//! The hyperthermia cancer-treatment stencil (Table V: *Hyperthermia*,
//! 10 in / 1 out), after the Pennes bioheat kernel used in the Patus
//! framework the paper takes it from \[17\].
//!
//! The temperature update at each point combines the six neighbours and
//! the centre with **spatially varying** coefficients — tissue
//! conductivity, perfusion and metabolic heat differ per voxel — so the
//! kernel reads one streamed temperature grid plus nine coefficient
//! grids:
//!
//! ```text
//! T'[p] = ca[p]·T[p] + cb[p]
//!       + cxl[p]·T[x−1] + cxr[p]·T[x+1]
//!       + cyl[p]·T[y−1] + cyr[p]·T[y+1]
//!       + czl[p]·T[z−1] + czr[p]·T[z+1]
//!       + q[p]
//! ```
//!
//! Nine of the eleven grids being coefficient data is exactly why §V-A
//! reports only marginal in-plane gains here: the method can only
//! improve the halo traffic of the single streamed grid.

use stencil_grid::{Grid3, MultiGridKernel, Real};

/// Pennes-style bioheat update, radius 1, inputs
/// `[T, ca, cb, cxl, cxr, cyl, cyr, czl, czr, q]`.
#[derive(Clone, Debug, Default)]
pub struct Hyperthermia;

impl<T: Real> MultiGridKernel<T> for Hyperthermia {
    fn name(&self) -> &str {
        "Hyperthermia"
    }
    fn radius(&self) -> usize {
        1
    }
    fn num_inputs(&self) -> usize {
        10
    }
    fn num_outputs(&self) -> usize {
        1
    }
    fn num_streamed_inputs(&self) -> usize {
        1 // only the temperature field streams; 9 coefficient grids
    }
    fn flops_per_point(&self) -> usize {
        // 7 multiplies + 8 adds.
        15
    }
    fn eval(&self, inputs: &[Grid3<T>], _o: usize, i: usize, j: usize, k: usize) -> T {
        let t = &inputs[0];
        let (ca, cb) = (&inputs[1], &inputs[2]);
        let (cxl, cxr) = (&inputs[3], &inputs[4]);
        let (cyl, cyr) = (&inputs[5], &inputs[6]);
        let (czl, czr) = (&inputs[7], &inputs[8]);
        let q = &inputs[9];
        ca.get(i, j, k) * t.get(i, j, k)
            + cb.get(i, j, k)
            + cxl.get(i, j, k) * t.get(i - 1, j, k)
            + cxr.get(i, j, k) * t.get(i + 1, j, k)
            + cyl.get(i, j, k) * t.get(i, j - 1, k)
            + cyr.get(i, j, k) * t.get(i, j + 1, k)
            + czl.get(i, j, k) * t.get(i, j, k - 1)
            + czr.get(i, j, k) * t.get(i, j, k + 1)
            + q.get(i, j, k)
    }
}

/// Build a physically plausible coefficient set for tests/benchmarks:
/// diffusion-like weights that sum to 1 plus a small source term.
pub fn default_inputs<T: Real>(nx: usize, ny: usize, nz: usize, seed: u64) -> Vec<Grid3<T>> {
    use stencil_grid::FillPattern;
    let t: Grid3<T> = FillPattern::Random {
        lo: 36.5,
        hi: 37.5,
        seed,
    }
    .build(nx, ny, nz);
    let ca: Grid3<T> = FillPattern::Constant(0.4).build(nx, ny, nz);
    let cb: Grid3<T> = FillPattern::Constant(0.0).build(nx, ny, nz);
    let side: Grid3<T> = FillPattern::Constant(0.1).build(nx, ny, nz);
    let q: Grid3<T> = FillPattern::Constant(0.0).build(nx, ny, nz);
    let mut v = vec![t, ca, cb];
    for _ in 0..6 {
        v.push(side.clone());
    }
    v.push(q);
    v
}

#[cfg(test)]
mod tests {
    use super::*;
    use stencil_grid::{apply_multigrid, Boundary, FillPattern, GridSet};

    #[test]
    fn uniform_temperature_is_steady_state() {
        // Weights sum to 1 with zero sources: T' = T.
        let mut inputs = default_inputs::<f64>(5, 5, 5, 1);
        inputs[0] = FillPattern::Constant(37.0).build(5, 5, 5);
        let inputs = GridSet::new(inputs);
        let mut out = GridSet::zeros(1, 5, 5, 5);
        apply_multigrid(&Hyperthermia, &inputs, &mut out, Boundary::LeaveOutput);
        assert!((out.grid(0).get(2, 2, 2) - 37.0).abs() < 1e-12);
    }

    #[test]
    fn source_term_adds_heat() {
        let mut inputs = default_inputs::<f64>(5, 5, 5, 1);
        inputs[0] = FillPattern::Constant(37.0).build(5, 5, 5);
        inputs[9] = FillPattern::Constant(0.5).build(5, 5, 5);
        let inputs = GridSet::new(inputs);
        let mut out = GridSet::zeros(1, 5, 5, 5);
        apply_multigrid(&Hyperthermia, &inputs, &mut out, Boundary::LeaveOutput);
        assert!((out.grid(0).get(2, 2, 2) - 37.5).abs() < 1e-12);
    }

    #[test]
    fn spatially_varying_coefficients_are_honoured() {
        let mut inputs = default_inputs::<f64>(5, 5, 5, 1);
        inputs[0] = FillPattern::Constant(0.0).build(5, 5, 5);
        inputs[0].set(1, 2, 2, 10.0); // hot spot at x-neighbour
                                      // Zero all side coefficients except cxl at the probe point.
        for g in inputs.iter_mut().skip(3) {
            g.fill(0.0);
        }
        inputs[3].set(2, 2, 2, 0.25);
        let inputs = GridSet::new(inputs);
        let mut out = GridSet::zeros(1, 5, 5, 5);
        apply_multigrid(&Hyperthermia, &inputs, &mut out, Boundary::LeaveOutput);
        assert!((out.grid(0).get(2, 2, 2) - 2.5).abs() < 1e-12);
        assert!(out.grid(0).get(3, 2, 2).abs() < 1e-12);
    }

    #[test]
    fn table5_grid_counts() {
        assert_eq!(MultiGridKernel::<f32>::num_inputs(&Hyperthermia), 10);
        assert_eq!(MultiGridKernel::<f32>::num_outputs(&Hyperthermia), 1);
        assert_eq!(
            MultiGridKernel::<f32>::num_streamed_inputs(&Hyperthermia),
            1
        );
    }
}
