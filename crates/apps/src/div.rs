//! The 3-D discrete divergence operator (Table V: *Div*, 3 in / 1 out).
//!
//! Maps a vector field `F = (Fx, Fy, Fz)` to the scalar
//! `div F = ∂Fx/∂x + ∂Fy/∂y + ∂Fz/∂z` with second-order central
//! differences on a uniform grid of spacing `h`.

use stencil_grid::{Grid3, MultiGridKernel, Real};

/// Central-difference divergence, radius 1.
#[derive(Clone, Debug)]
pub struct Divergence {
    /// Grid spacing.
    pub h: f64,
}

impl Default for Divergence {
    fn default() -> Self {
        Divergence { h: 1.0 }
    }
}

impl<T: Real> MultiGridKernel<T> for Divergence {
    fn name(&self) -> &str {
        "Div"
    }
    fn radius(&self) -> usize {
        1
    }
    fn num_inputs(&self) -> usize {
        3
    }
    fn num_outputs(&self) -> usize {
        1
    }
    fn num_streamed_inputs(&self) -> usize {
        3
    }
    fn flops_per_point(&self) -> usize {
        // 3 central differences (1 sub + 1 mul each) + 2 adds.
        11
    }
    fn eval(&self, inputs: &[Grid3<T>], _o: usize, i: usize, j: usize, k: usize) -> T {
        let inv2h = T::from_f64(0.5 / self.h);
        let dx = inputs[0].get(i + 1, j, k) - inputs[0].get(i - 1, j, k);
        let dy = inputs[1].get(i, j + 1, k) - inputs[1].get(i, j - 1, k);
        let dz = inputs[2].get(i, j, k + 1) - inputs[2].get(i, j, k - 1);
        inv2h * (dx + dy + dz)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stencil_grid::{apply_multigrid, Boundary, FillPattern, GridSet};

    #[test]
    fn divergence_of_linear_field_is_constant() {
        // F = (2x, 3y, -z): div F = 2 + 3 - 1 = 4.
        let fx: Grid3<f64> = FillPattern::Linear {
            a: 2.0,
            b: 0.0,
            c: 0.0,
        }
        .build(6, 6, 6);
        let fy: Grid3<f64> = FillPattern::Linear {
            a: 0.0,
            b: 3.0,
            c: 0.0,
        }
        .build(6, 6, 6);
        let fz: Grid3<f64> = FillPattern::Linear {
            a: 0.0,
            b: 0.0,
            c: -1.0,
        }
        .build(6, 6, 6);
        let inputs = GridSet::new(vec![fx, fy, fz]);
        let mut out = GridSet::zeros(1, 6, 6, 6);
        apply_multigrid(
            &Divergence::default(),
            &inputs,
            &mut out,
            Boundary::LeaveOutput,
        );
        for k in 1..5 {
            for j in 1..5 {
                for i in 1..5 {
                    assert!((out.grid(0).get(i, j, k) - 4.0).abs() < 1e-12);
                }
            }
        }
    }

    #[test]
    fn divergence_of_constant_field_is_zero() {
        let c: Grid3<f64> = FillPattern::Constant(5.0).build(5, 5, 5);
        let inputs = GridSet::new(vec![c.clone(), c.clone(), c]);
        let mut out = GridSet::zeros(1, 5, 5, 5);
        apply_multigrid(
            &Divergence::default(),
            &inputs,
            &mut out,
            Boundary::LeaveOutput,
        );
        assert!(out.grid(0).get(2, 2, 2).abs() < 1e-12);
    }

    #[test]
    fn spacing_scales_result() {
        let fx: Grid3<f64> = FillPattern::Linear {
            a: 1.0,
            b: 0.0,
            c: 0.0,
        }
        .build(5, 5, 5);
        let zero: Grid3<f64> = FillPattern::Constant(0.0).build(5, 5, 5);
        let inputs = GridSet::new(vec![fx, zero.clone(), zero]);
        let mut out = GridSet::zeros(1, 5, 5, 5);
        apply_multigrid(
            &Divergence { h: 0.5 },
            &inputs,
            &mut out,
            Boundary::LeaveOutput,
        );
        assert!((out.grid(0).get(2, 2, 2) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn table5_grid_counts() {
        let d = Divergence::default();
        assert_eq!(MultiGridKernel::<f32>::num_inputs(&d), 3);
        assert_eq!(MultiGridKernel::<f32>::num_outputs(&d), 1);
        assert_eq!(MultiGridKernel::<f32>::num_streamed_inputs(&d), 3);
    }
}
