//! The application-stencil benchmark suite (Fig 11): tune both the
//! forward-plane baseline and the in-plane full-slice method for each
//! application kernel and report the speedup.

use crate::{Divergence, Gradient, Hyperthermia, Laplacian3d, Poisson, Upstream};
use gpu_sim::{DeviceSpec, GridDims};
use inplane_core::{EvalContext, KernelSpec, LaunchConfig, Method, Variant};
use stencil_autotune::{exhaustive_tune_with, ParameterSpace};
use stencil_grid::{MultiGridKernel, Real};

/// All six Table V application kernels, in table order.
pub fn all_apps<T: Real>() -> Vec<Box<dyn MultiGridKernel<T>>> {
    vec![
        Box::new(Divergence::default()),
        Box::new(Gradient::default()),
        Box::new(Hyperthermia),
        Box::new(Upstream::default()),
        Box::new(Laplacian3d::default()),
        Box::new(Poisson::default()),
    ]
}

/// Result of benchmarking one application stencil on one device.
#[derive(Clone, Debug, PartialEq)]
pub struct AppBenchResult {
    /// Application name (Table V column).
    pub name: String,
    /// Input grids (Table V "In").
    pub inputs: usize,
    /// Output grids (Table V "Out").
    pub outputs: usize,
    /// Tuned forward-plane (nvstencil) throughput, MPoint/s.
    pub forward_mpoints: f64,
    /// Its best configuration.
    pub forward_config: LaunchConfig,
    /// Tuned in-plane full-slice throughput, MPoint/s.
    pub inplane_mpoints: f64,
    /// Its best configuration.
    pub inplane_config: LaunchConfig,
}

impl AppBenchResult {
    /// In-plane speedup over the forward baseline (Fig 11's bars).
    pub fn speedup(&self) -> f64 {
        self.inplane_mpoints / self.forward_mpoints
    }
}

/// Tune and compare both methods for `app` on `device` (Fig 11's
/// measurement for one bar group). `quick` restricts the search space to
/// power-of-two blocks.
pub fn benchmark_app<T: Real>(
    device: &DeviceSpec,
    app: &dyn MultiGridKernel<T>,
    dims: GridDims,
    quick: bool,
    seed: u64,
) -> AppBenchResult {
    benchmark_app_with(EvalContext::global(), device, app, dims, quick, seed)
}

/// [`benchmark_app`] against an explicit evaluation context: both
/// methods' tuning sweeps share (and warm) `ctx`'s cache.
pub fn benchmark_app_with<T: Real>(
    ctx: &EvalContext,
    device: &DeviceSpec,
    app: &dyn MultiGridKernel<T>,
    dims: GridDims,
    quick: bool,
    seed: u64,
) -> AppBenchResult {
    let tune = |method: Method| {
        let spec = KernelSpec::from_app(method, app);
        let space = if quick {
            ParameterSpace::quick_space(device, &spec, &dims)
        } else {
            ParameterSpace::paper_space(device, &spec, &dims)
        };
        exhaustive_tune_with(ctx, device, &spec, dims, &space, seed).best
    };
    let fwd = tune(Method::ForwardPlane);
    let inp = tune(Method::InPlane(Variant::FullSlice));
    AppBenchResult {
        name: app.name().to_string(),
        inputs: app.num_inputs(),
        outputs: app.num_outputs(),
        forward_mpoints: fwd.mpoints,
        forward_config: fwd.config,
        inplane_mpoints: inp.mpoints,
        inplane_config: inp.config,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table5_grid_counts_in_order() {
        // Paper Table V: In = 3,1,10,1,1,2 and Out = 1,3,1,1,1,1.
        let apps = all_apps::<f32>();
        let names: Vec<&str> = apps.iter().map(|a| a.name()).collect();
        assert_eq!(
            names,
            [
                "Div",
                "Grad",
                "Hyperthermia",
                "Upstream",
                "Laplacian",
                "Poisson"
            ]
        );
        let ins: Vec<usize> = apps.iter().map(|a| a.num_inputs()).collect();
        let outs: Vec<usize> = apps.iter().map(|a| a.num_outputs()).collect();
        assert_eq!(ins, [3, 1, 10, 1, 1, 2]);
        assert_eq!(outs, [1, 3, 1, 1, 1, 1]);
    }

    #[test]
    fn laplacian_speedup_exceeds_hyperthermia() {
        // §V-A: Laplacian gains the most, Hyperthermia the least.
        let dev = DeviceSpec::gtx580();
        let dims = GridDims::new(256, 256, 64);
        let lap = benchmark_app::<f32>(&dev, &Laplacian3d::default(), dims, true, 1);
        let hyp = benchmark_app::<f32>(&dev, &Hyperthermia, dims, true, 1);
        assert!(
            lap.speedup() > hyp.speedup(),
            "Laplacian {:.2}x must beat Hyperthermia {:.2}x",
            lap.speedup(),
            hyp.speedup()
        );
        assert!(
            lap.speedup() > 1.2,
            "Laplacian speedup {:.2}",
            lap.speedup()
        );
    }

    #[test]
    fn all_apps_show_sane_results() {
        let dev = DeviceSpec::c2070();
        let dims = GridDims::new(256, 256, 32);
        for app in all_apps::<f32>() {
            let r = benchmark_app::<f32>(&dev, app.as_ref(), dims, true, 2);
            assert!(r.forward_mpoints > 0.0, "{}: forward must run", r.name);
            assert!(r.inplane_mpoints > 0.0, "{}: in-plane must run", r.name);
            assert!(
                (0.5..3.0).contains(&r.speedup()),
                "{}: speedup {:.2} out of plausible range",
                r.name,
                r.speedup()
            );
        }
    }
}
