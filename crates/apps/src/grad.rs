//! The 3-D discrete gradient operator (Table V: *Grad*, 1 in / 3 out).
//!
//! Maps a scalar function `f` to the vector field
//! `∇f = (∂f/∂x, ∂f/∂y, ∂f/∂z)` with second-order central differences.

use stencil_grid::{Grid3, MultiGridKernel, Real};

/// Central-difference gradient, radius 1.
#[derive(Clone, Debug)]
pub struct Gradient {
    /// Grid spacing.
    pub h: f64,
}

impl Default for Gradient {
    fn default() -> Self {
        Gradient { h: 1.0 }
    }
}

impl<T: Real> MultiGridKernel<T> for Gradient {
    fn name(&self) -> &str {
        "Grad"
    }
    fn radius(&self) -> usize {
        1
    }
    fn num_inputs(&self) -> usize {
        1
    }
    fn num_outputs(&self) -> usize {
        3
    }
    fn flops_per_point(&self) -> usize {
        // Per output point: 1 sub + 1 mul, three output grids per input
        // point amortised in the harness; counted per written point.
        2
    }
    fn eval(&self, inputs: &[Grid3<T>], o: usize, i: usize, j: usize, k: usize) -> T {
        let inv2h = T::from_f64(0.5 / self.h);
        let f = &inputs[0];
        let d = match o {
            0 => f.get(i + 1, j, k) - f.get(i - 1, j, k),
            1 => f.get(i, j + 1, k) - f.get(i, j - 1, k),
            2 => f.get(i, j, k + 1) - f.get(i, j, k - 1),
            _ => unreachable!("gradient has exactly three outputs"),
        };
        inv2h * d
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stencil_grid::{apply_multigrid, Boundary, FillPattern, GridSet};

    #[test]
    fn gradient_of_linear_field() {
        // f = x + 2y - 3z: grad = (1, 2, -3).
        let f: Grid3<f64> = FillPattern::Linear {
            a: 1.0,
            b: 2.0,
            c: -3.0,
        }
        .build(6, 6, 6);
        let inputs = GridSet::new(vec![f]);
        let mut out = GridSet::zeros(3, 6, 6, 6);
        apply_multigrid(
            &Gradient::default(),
            &inputs,
            &mut out,
            Boundary::LeaveOutput,
        );
        let expect = [1.0, 2.0, -3.0];
        for (o, e) in expect.iter().enumerate() {
            for k in 1..5 {
                assert!(
                    (out.grid(o).get(2, 3, k) - e).abs() < 1e-12,
                    "component {o}"
                );
            }
        }
    }

    #[test]
    fn gradient_of_constant_vanishes() {
        let f: Grid3<f32> = FillPattern::Constant(9.0).build(4, 4, 4);
        let inputs = GridSet::new(vec![f]);
        let mut out = GridSet::zeros(3, 4, 4, 4);
        apply_multigrid(
            &Gradient::default(),
            &inputs,
            &mut out,
            Boundary::LeaveOutput,
        );
        for o in 0..3 {
            assert_eq!(out.grid(o).get(1, 1, 1), 0.0);
        }
    }

    #[test]
    fn grad_then_div_is_laplacian_like() {
        // div(grad f) of f = x² is 2 (the 1-D second difference).
        let f: Grid3<f64> = {
            let mut g = Grid3::new(8, 8, 8);
            g.fill_with(|i, _, _| (i * i) as f64);
            g
        };
        let inputs = GridSet::new(vec![f]);
        let mut grad_out = GridSet::zeros(3, 8, 8, 8);
        apply_multigrid(
            &Gradient::default(),
            &inputs,
            &mut grad_out,
            Boundary::LeaveOutput,
        );
        let mut div_out = GridSet::zeros(1, 8, 8, 8);
        apply_multigrid(
            &crate::Divergence::default(),
            &GridSet::new(grad_out.into_inner()),
            &mut div_out,
            Boundary::LeaveOutput,
        );
        // Interior away from the (unset) boundary ring of the gradient.
        for i in 2..6 {
            assert!((div_out.grid(0).get(i, 3, 3) - 2.0).abs() < 1e-12);
        }
    }

    #[test]
    fn table5_grid_counts() {
        let g = Gradient::default();
        assert_eq!(MultiGridKernel::<f64>::num_inputs(&g), 1);
        assert_eq!(MultiGridKernel::<f64>::num_outputs(&g), 3);
        assert_eq!(MultiGridKernel::<f64>::num_streamed_inputs(&g), 1);
    }
}
