//! Weather-style advection with the *Upstream* application stencil
//! (Table V): transport a tracer pulse with an upwind scheme, verify the
//! physics (mass moves downwind, stays bounded), then benchmark the
//! forward-plane vs in-plane methods for the kernel on all three GPUs —
//! one bar group of the paper's Fig 11.
//!
//! ```sh
//! cargo run --release --example weather_advection
//! ```

use inplane_isl::apps::{benchmark_app, Upstream};
use inplane_isl::prelude::*;
use inplane_isl::sim::DeviceSpec;
use stencil_grid::{apply_multigrid, GridSet, MultiGridKernel};

/// Tracer centre of mass along x.
fn centre_of_mass_x(g: &Grid3<f64>) -> f64 {
    let (mut num, mut den) = (0.0, 0.0);
    for ((i, _, _), v) in g.iter_logical() {
        num += i as f64 * v;
        den += v;
    }
    num / den
}

fn main() {
    let n = 32;
    let wind = Upstream {
        cx: 0.4,
        cy: 0.0,
        cz: 0.0,
    };
    println!(
        "upwind advection on a {n}^3 grid, Courant numbers ({}, {}, {})",
        wind.cx, wind.cy, wind.cz
    );

    // A tracer pulse left of centre.
    let mut tracer: Grid3<f64> = Grid3::new(n, n, n);
    tracer.fill_with(|i, j, k| {
        let d2 = (i as f64 - 8.0).powi(2) + (j as f64 - 16.0).powi(2) + (k as f64 - 16.0).powi(2);
        (-d2 / 18.0).exp()
    });

    let x0 = centre_of_mass_x(&tracer);
    let steps = 20;
    for _ in 0..steps {
        let inputs = GridSet::new(vec![tracer.clone()]);
        let mut out = GridSet::zeros(1, n, n, n);
        apply_multigrid(&wind, &inputs, &mut out, Boundary::CopyInput);
        tracer = out.into_inner().remove(0);
    }
    let x1 = centre_of_mass_x(&tracer);
    println!("tracer centre of mass: x = {x0:.2} -> {x1:.2} after {steps} steps");
    assert!(x1 > x0 + 2.0, "tracer must advect downwind");
    let max = tracer
        .iter_logical()
        .map(|(_, v)| v)
        .fold(f64::MIN, f64::max);
    assert!(max <= 1.0 + 1e-9, "upwind scheme must not overshoot");
    println!("peak after transport: {max:.3} (bounded, as upwind guarantees)");

    // The Fig 11 measurement for this kernel.
    println!("\nFig 11 bar group for Upstream (SP, tuned):");
    let dims = GridDims::paper();
    for dev in DeviceSpec::paper_devices() {
        let app: &dyn MultiGridKernel<f32> = &Upstream::default();
        let r = benchmark_app::<f32>(&dev, app, dims, true, 1);
        println!(
            "  {:16} nvstencil {:7.0} MP/s @ {} | in-plane {:7.0} MP/s @ {} | speedup {:.2}x",
            dev.name,
            r.forward_mpoints,
            r.forward_config,
            r.inplane_mpoints,
            r.inplane_config,
            r.speedup()
        );
    }
}
