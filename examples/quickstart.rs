//! Quickstart: the whole pipeline on one page.
//!
//! 1. Build a 4th-order star stencil and a small grid.
//! 2. Run one Jacobi step with the emulated in-plane full-slice kernel
//!    and verify it against the CPU golden model — the paper's own
//!    correctness check.
//! 3. Price the same kernel on the three simulated GPUs of Table III.
//! 4. Auto-tune it on the GTX580 and report the optimum.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use inplane_isl::core::{execute_step, simulate_star_kernel};
use inplane_isl::prelude::*;

fn main() {
    // --- 1. problem setup -------------------------------------------------
    let stencil = StarStencil::<f32>::from_order(4);
    let n = 48;
    let input: Grid3<f32> = FillPattern::Random {
        lo: -1.0,
        hi: 1.0,
        seed: 42,
    }
    .build(n, n, n);
    println!("4th-order SP star stencil on a {n}x{n}x{n} grid");

    // --- 2. functional run + verification --------------------------------
    let config = LaunchConfig::new(16, 8, 1, 2);
    let mut emulated = Grid3::new(n, n, n);
    let stats = execute_step(
        Method::InPlane(Variant::FullSlice),
        &stencil,
        &config,
        &input,
        &mut emulated,
        Boundary::CopyInput,
    );
    let mut golden = Grid3::new(n, n, n);
    stencil_grid::apply_reference_inplane_order(&stencil, &input, &mut golden, Boundary::CopyInput);
    let report = stencil_grid::verify_close(&emulated, &golden, 1e-6);
    println!(
        "emulated {} blocks, staged {} cells -> max |err| vs CPU reference: {:.2e} ({})",
        stats.blocks,
        stats.cells_staged,
        report.max_abs,
        if report.passed() { "PASS" } else { "FAIL" },
    );
    assert!(report.passed());

    // --- 3. price it on the paper's three GPUs ---------------------------
    let dims = GridDims::paper();
    let kernel = KernelSpec::inplane(Variant::FullSlice, &stencil);
    println!("\nsimulated performance at {config} on the paper grid (512x512x256):");
    for dev in gpu_sim::DeviceSpec::paper_devices() {
        let rep = simulate_star_kernel(&dev, &kernel, &config, dims);
        println!(
            "  {:16} {:8.0} MPoint/s  ({:.0} GB/s, occupancy {:.0}%)",
            dev.name,
            rep.mpoints_per_s(),
            rep.achieved_bandwidth_gbs(),
            rep.occupancy.occupancy * 100.0
        );
    }

    // --- 4. auto-tune on the GTX580 ---------------------------------------
    let dev = gpu_sim::DeviceSpec::gtx580();
    let space = ParameterSpace::quick_space(&dev, &kernel, &dims);
    let tuned = exhaustive_tune(&dev, &kernel, dims, &space, 1);
    println!(
        "\nauto-tuned on {}: {} -> {:.0} MPoint/s ({} configurations searched)",
        dev.name,
        tuned.best.config,
        tuned.best.mpoints,
        tuned.evaluated()
    );

    // Steps 3 and 4 both measured through the global EvalContext: each
    // (device, kernel, config, dims) point was planned and priced once,
    // and the tuner's noisy "measurements" reused the cached clean price.
    let stats = EvalContext::global().stats();
    println!(
        "evaluation cache: {} hits, {} misses ({:.0}% hit rate)",
        stats.hits,
        stats.misses,
        100.0 * stats.hit_rate()
    );
}
