//! Multi-GPU stencil run: split a heat-diffusion simulation over
//! emulated devices with z-slab decomposition and halo exchange, verify
//! the result is bit-identical to the single-device run, and show the
//! projected strong-scaling curve.
//!
//! ```sh
//! cargo run --release --example multi_gpu
//! ```

use inplane_isl::core::{execute_step, Method};
use inplane_isl::multigpu::{execute_multi_gpu, simulate_scaling, Interconnect};
use inplane_isl::prelude::*;
use inplane_isl::sim::DeviceSpec;
use stencil_grid::Precision;

fn main() {
    let stencil = StarStencil::<f64>::diffusion(1);
    let config = LaunchConfig::new(8, 8, 1, 1);
    let initial: Grid3<f64> = FillPattern::GaussianPulse {
        amplitude: 100.0,
        sigma: 0.1,
    }
    .build(32, 32, 24);
    let steps = 6;

    // Single-device reference run.
    let (single, _) = iterate_stencil_loop(initial.clone(), 1, steps, |inp, out| {
        execute_step(
            Method::InPlane(Variant::FullSlice),
            &stencil,
            &config,
            inp,
            out,
            Boundary::CopyInput,
        );
    });

    println!("heat diffusion, 32x32x24 grid, {steps} steps, z-slab decomposition:");
    for devices in [1usize, 2, 3, 4] {
        let (multi, stats) = execute_multi_gpu(
            Method::InPlane(Variant::FullSlice),
            &stencil,
            &config,
            &initial,
            devices,
            steps,
        );
        let err = stencil_grid::max_abs_diff(&multi, &single);
        println!(
            "  {devices} device(s): {:3} halo planes exchanged ({:6} B), max |err| vs single = {err:.1e}",
            stats.planes_exchanged, stats.bytes_exchanged
        );
        assert_eq!(err, 0.0, "multi-device run must be bit-identical");
    }

    // Projected strong scaling at paper scale.
    let dev = DeviceSpec::gtx580();
    let kernel = KernelSpec::star_order(Method::InPlane(Variant::FullSlice), 2, Precision::Single);
    let tuned = LaunchConfig::new(128, 4, 1, 2);
    println!("\nprojected strong scaling at 512x512x256 SP on GTX580s over PCIe 2.0:");
    for p in simulate_scaling(
        &dev,
        &kernel,
        &tuned,
        GridDims::paper(),
        &Interconnect::pcie2(),
        8,
    ) {
        println!(
            "  {} GPU(s): {:6.0} MPoint/s, efficiency {:.2}, exchange {:4.1}% of the step",
            p.devices,
            p.mpoints_per_s,
            p.efficiency,
            p.exchange_fraction * 100.0
        );
    }
}
