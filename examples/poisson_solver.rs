//! Iterative Poisson solver — solve `∇²u = f` by Jacobi relaxation with
//! the Table V *Poisson* application stencil, run to a residual
//! tolerance, checkpoint the solution in the library's binary format,
//! and project the time-to-solution on the simulated GPUs for both
//! methods.
//!
//! ```sh
//! cargo run --release --example poisson_solver
//! ```

use inplane_isl::apps::Poisson;
use inplane_isl::core::Method;
use inplane_isl::prelude::*;
use inplane_isl::sim::DeviceSpec;
use stencil_grid::{apply_multigrid, stats, GridSet, MultiGridKernel};

/// L2 residual of ∇²u − f over the interior.
fn residual(u: &Grid3<f64>, f: &Grid3<f64>) -> f64 {
    let (nx, ny, nz) = u.dims();
    let mut r2 = 0.0;
    for k in 1..nz - 1 {
        for j in 1..ny - 1 {
            for i in 1..nx - 1 {
                let lap = u.get(i - 1, j, k)
                    + u.get(i + 1, j, k)
                    + u.get(i, j - 1, k)
                    + u.get(i, j + 1, k)
                    + u.get(i, j, k - 1)
                    + u.get(i, j, k + 1)
                    - 6.0 * u.get(i, j, k);
                let r = lap - f.get(i, j, k);
                r2 += r * r;
            }
        }
    }
    r2.sqrt()
}

fn main() -> std::io::Result<()> {
    let n = 24;
    // A dipole source: +1 and -1 point charges.
    let mut f: Grid3<f64> = Grid3::new(n, n, n);
    f.set(n / 4, n / 2, n / 2, 1.0);
    f.set(3 * n / 4, n / 2, n / 2, -1.0);
    let mut u: Grid3<f64> = Grid3::new(n, n, n);

    let poisson = Poisson::default();
    let r0 = residual(&u, &f);
    println!("Poisson dipole on a {n}^3 grid; initial residual {r0:.3e}");

    let mut iterations = 0usize;
    let target = 0.05 * r0;
    while residual(&u, &f) > target && iterations < 2000 {
        let inputs = GridSet::new(vec![u.clone(), f.clone()]);
        let mut out = GridSet::zeros(1, n, n, n);
        apply_multigrid(&poisson, &inputs, &mut out, Boundary::CopyInput);
        u = out.into_inner().remove(0);
        iterations += 1;
        if iterations.is_multiple_of(200) {
            println!("  step {iterations}: residual {:.3e}", residual(&u, &f));
        }
    }
    println!("converged to 5% of the initial residual in {iterations} Jacobi steps");
    let s = stats(&u);
    println!(
        "solution range [{:.4}, {:.4}], L2 {:.4}",
        s.min, s.max, s.l2
    );
    assert!(
        s.min < 0.0 && s.max > 0.0,
        "dipole potential must have both signs"
    );

    // Checkpoint and re-load.
    let mut buf = Vec::new();
    stencil_grid::write_grid(&u, &mut buf)?;
    let reloaded: Grid3<f64> = stencil_grid::read_grid(&mut buf.as_slice())?;
    assert_eq!(u, reloaded);
    println!("checkpoint round-trip: {} bytes", buf.len());

    // Project the cost of those iterations on the GTX580 at paper scale.
    let dev = DeviceSpec::gtx580();
    let dims = GridDims::paper();
    println!(
        "\nprojected {iterations} DP iterations at 512x512x256 on {}:",
        dev.name
    );
    for method in [Method::ForwardPlane, Method::InPlane(Variant::FullSlice)] {
        let app: &dyn MultiGridKernel<f64> = &poisson;
        let spec = KernelSpec::from_app(method, app);
        let space = ParameterSpace::quick_space(&dev, &spec, &dims);
        let best = exhaustive_tune(&dev, &spec, dims, &space, 1).best;
        let sweep_s = dims.points() as f64 / (best.mpoints * 1e6);
        println!(
            "  {:24} {:7.0} MPoint/s -> {:6.1} s total (config {})",
            spec.name,
            best.mpoints,
            sweep_s * iterations as f64,
            best.config
        );
    }
    Ok(())
}
