//! Heat diffusion — the canonical iterative stencil loop (the paper's
//! Fig 1) on a Gaussian temperature pulse.
//!
//! Runs the same simulation three ways — CPU reference, emulated
//! forward-plane (nvstencil) kernel, emulated in-plane full-slice
//! kernel — checks they agree, and reports how the pulse decays. Then
//! asks the simulator what each method's time-to-solution would be on a
//! GTX580, the end-to-end number a simulation user actually cares about.
//!
//! ```sh
//! cargo run --release --example heat_diffusion
//! ```

use inplane_isl::core::{execute_step, simulate_star_kernel};
use inplane_isl::prelude::*;

fn peak(g: &Grid3<f64>) -> f64 {
    g.iter_logical().map(|(_, v)| v).fold(f64::MIN, f64::max)
}

fn main() {
    let n = 40;
    let steps = 25;
    let stencil = StarStencil::<f64>::diffusion(1);
    let initial: Grid3<f64> = FillPattern::GaussianPulse {
        amplitude: 100.0,
        sigma: 0.08,
    }
    .build(n, n, n);
    println!(
        "heat diffusion: {n}^3 grid, {steps} Jacobi steps, initial peak {:.1}",
        peak(&initial)
    );

    // CPU reference run.
    let (cpu, _) = iterate_stencil_loop(initial.clone(), 1, steps, |inp, out| {
        apply_reference(&stencil, inp, out, Boundary::CopyInput);
    });

    // Emulated GPU runs, both methods.
    let config = LaunchConfig::new(16, 4, 1, 2);
    let run = |method: Method| {
        let (grid, _) = iterate_stencil_loop(initial.clone(), 1, steps, |inp, out| {
            execute_step(method, &stencil, &config, inp, out, Boundary::CopyInput);
        });
        grid
    };
    let fwd = run(Method::ForwardPlane);
    let inp = run(Method::InPlane(Variant::FullSlice));

    for (name, grid) in [("forward-plane", &fwd), ("in-plane", &inp)] {
        let err = stencil_grid::max_abs_diff(grid, &cpu);
        println!(
            "  {name:14} peak {:8.3}  max |err| vs CPU {err:.2e}",
            peak(grid)
        );
        assert!(err < 1e-10, "{name} diverged from the reference");
    }
    println!("  pulse decayed {:.1}x", peak(&initial) / peak(&cpu));

    // What would this cost on real-sized grids on a GTX580?
    let dev = gpu_sim::DeviceSpec::gtx580();
    let dims = GridDims::paper();
    println!(
        "\nprojected time for {steps} steps on {} at 512x512x256 (DP):",
        dev.name
    );
    for (label, method, cfg) in [
        (
            "nvstencil",
            Method::ForwardPlane,
            LaunchConfig::new(128, 8, 1, 1),
        ),
        (
            "in-plane full-slice",
            Method::InPlane(Variant::FullSlice),
            LaunchConfig::new(128, 1, 1, 4),
        ),
    ] {
        let spec = KernelSpec::star_order(method, 2, stencil_grid::Precision::Double);
        let rep = simulate_star_kernel(&dev, &spec, &cfg, dims);
        println!(
            "  {label:20} {:7.2} ms/step -> {:6.1} ms total ({:.0} MPoint/s)",
            rep.time_s * 1e3,
            rep.time_s * 1e3 * steps as f64,
            rep.mpoints_per_s()
        );
    }
}
