//! Auto-tuning walkthrough: exhaustive search, the Section VI analytic
//! model, and model-based tuning with a β cutoff — for one kernel on all
//! three simulated GPUs.
//!
//! ```sh
//! cargo run --release --example autotune_explore [order]
//! ```

use inplane_isl::autotune::predict_mpoints;
use inplane_isl::prelude::*;
use inplane_isl::sim::DeviceSpec;
use stencil_grid::Precision;

fn main() {
    let order: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(8);
    let dims = GridDims::paper();
    let kernel = KernelSpec::star_order(
        inplane_isl::core::Method::InPlane(Variant::FullSlice),
        order,
        Precision::Single,
    );
    println!("auto-tuning the order-{order} SP full-slice kernel on 512x512x256\n");

    for dev in DeviceSpec::paper_devices() {
        let space = ParameterSpace::paper_space(&dev, &kernel, &dims);
        let ex = exhaustive_tune(&dev, &kernel, dims, &space, 1);
        let mb = model_based_tune(&dev, &kernel, dims, &space, 5.0, 1);
        println!("{} — {} feasible configurations", dev.name, space.len());
        println!(
            "  exhaustive : {} -> {:8.0} MPoint/s",
            ex.best.config, ex.best.mpoints
        );
        println!(
            "  model-based: {} -> {:8.0} MPoint/s (executed {} = {:.1}% of the space)",
            mb.best.config,
            mb.best.mpoints,
            mb.executed,
            100.0 * mb.executed_fraction()
        );
        println!(
            "  gap: {:.1}%  (paper reports ~2% typical, ~6% worst)",
            100.0 * (1.0 - mb.best.mpoints / ex.best.mpoints)
        );
        // Show how the model ranks the exhaustive top-3.
        println!("  exhaustive top 3 with model predictions:");
        for s in ex.top(3) {
            println!(
                "    {}: measured {:8.0}, model {:8.0} MPoint/s",
                s.config,
                s.mpoints,
                predict_mpoints(&dev, &kernel, &s.config, &dims)
            );
        }
        println!();
    }
}
