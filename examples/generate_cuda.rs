//! Generate real CUDA sources for a tuned kernel — the bridge from this
//! reproduction back to actual hardware.
//!
//! Tunes the order-4 SP full-slice kernel on the simulated GTX580, then
//! emits `generated/kernel.cu` (the `__global__` kernel specialised to
//! the tuned blocking factors) and `generated/main.cu` (a host harness
//! with padded allocation, constant-coefficient upload and the Fig-1
//! double-buffered timing loop). On a machine with `nvcc`:
//!
//! ```sh
//! cargo run --release --example generate_cuda
//! nvcc -O3 -arch=sm_20 generated/main.cu -o stencil && ./stencil
//! ```

use inplane_isl::codegen::{generate_host_harness, generate_kernel};
use inplane_isl::prelude::*;
use inplane_isl::sim::DeviceSpec;
use stencil_grid::Precision;

fn main() -> std::io::Result<()> {
    let device = DeviceSpec::gtx580();
    let dims = GridDims::paper();
    let kernel = KernelSpec::star_order(
        inplane_isl::core::Method::InPlane(Variant::FullSlice),
        4,
        Precision::Single,
    );

    // Tune first — the generated source bakes in the blocking factors.
    let space = ParameterSpace::quick_space(&device, &kernel, &dims);
    let best = exhaustive_tune(&device, &kernel, dims, &space, 1).best;
    println!(
        "tuned {} on {}: {} -> {:.0} MPoint/s (simulated)",
        kernel.name, device.name, best.config, best.mpoints
    );

    let gen = generate_kernel(&kernel, &best.config);
    let host = generate_host_harness(&kernel, &best.config, dims.lx, dims.ly, dims.lz, 100);

    std::fs::create_dir_all("generated")?;
    std::fs::write("generated/kernel.cu", &gen.source)?;
    std::fs::write("generated/main.cu", &host)?;
    println!(
        "wrote generated/kernel.cu ({} lines, {} B static shared memory, block {}x{})",
        gen.source.lines().count(),
        gen.smem_bytes,
        gen.block.0,
        gen.block.1
    );
    println!("wrote generated/main.cu ({} lines)", host.lines().count());
    println!("\nbuild on a CUDA machine with:");
    println!("  nvcc -O3 generated/main.cu -o stencil && ./stencil");
    Ok(())
}
